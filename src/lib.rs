//! # hierdrl — Hierarchical DRL for Cloud Resource Allocation & Power Management
//!
//! Facade crate re-exporting the full public API of the workspace. See the
//! individual crates for details:
//!
//! - [`neural`] — neural-network substrate (MLP, LSTM, autoencoder, Adam),
//! - [`sim`] — continuous-time, event-driven cluster simulator,
//! - [`trace`] — Google-cluster-style workload traces,
//! - [`rl`] — SMDP Q-learning primitives,
//! - [`core`] — the hierarchical framework itself (global DRL allocation
//!   tier + local power-management tier) and all baselines,
//! - [`exp`] — experiment orchestration: Topology/Scenario/Suite grids and
//!   the parallel, deterministic sweep runner.

#![forbid(unsafe_code)]

pub use hierdrl_core as core;
pub use hierdrl_exp as exp;
pub use hierdrl_neural as neural;
pub use hierdrl_rl as rl;
pub use hierdrl_sim as sim;
pub use hierdrl_trace as trace;
