//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice of the API the experiment suite uses — `par_iter`
//! / `into_par_iter`, `map`, `collect`, plus `ThreadPoolBuilder::build` and
//! `ThreadPool::install` for pinning the worker count — on top of
//! `std::thread::scope`. Work is distributed by an atomic index counter
//! (index stealing), results are written back by index, so output order is
//! always the input order regardless of scheduling.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Builder for a fixed-size [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count (`0` means the machine default, as in rayon).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Infallible in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error type mirroring rayon's `ThreadPoolBuildError` (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical pool: parallel iterators run inside [`ThreadPool::install`]
/// use exactly this pool's worker count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's worker count installed for any parallel
    /// iterators it creates.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = op();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }
}

fn par_map_vec<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let len = items.len();
    let budget = current_num_threads();
    let workers = budget.min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each worker inherits its *share* of the caller's thread budget, so
    // parallel iterators nested inside `f` (e.g. per-shard parallelism
    // within one suite cell) cannot oversubscribe: total live threads stay
    // bounded by the installed pool size through every nesting level, and
    // a 1-thread pool stays fully serial all the way down.
    let nested = Some((budget / workers).max(1));
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                POOL_THREADS.with(|c| c.set(nested));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("input slot lock")
                        .take()
                        .expect("each index is claimed once");
                    let out = f(item);
                    *results[i].lock().expect("output slot lock") = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot lock")
                .expect("every index produced a value")
        })
        .collect()
}

/// An eager parallel iterator over owned items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` (executed in parallel at `collect`).
    pub fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items (no-op map).
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// The result of [`ParIter::map`], executed on `collect`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(I) -> O + Sync,
        C: FromIterator<O>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;

    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The rayon prelude: the traits needed for `par_iter().map().collect()`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            assert_eq!(super::current_num_threads(), 1);
            (0..10)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x)
                .collect()
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn into_par_iter_owned() {
        let v = vec![String::from("a"), String::from("b")];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1]);
    }
}
