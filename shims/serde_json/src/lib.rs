//! Offline stand-in for `serde_json`: renders the vendored `serde::Value`
//! data model to JSON text and parses it back.
//!
//! Output is fully deterministic — struct fields serialize in declaration
//! order and the shim's `HashMap` impl sorts its keys — which the
//! experiment suite relies on for byte-identical parallel/serial reports.
//! Floats print through Rust's shortest-round-trip `Display` (`f32` widened
//! exactly to `f64`), so numeric round trips are bit-exact; non-finite
//! floats render as `null` like real serde_json.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to indented JSON text.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a trailing ".0" so floats stay floats, as serde_json does.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )));
                }
            }
        }
    }
}
