//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization framework under the `serde`
//! name. It intentionally implements only what this codebase uses:
//!
//! - `#[derive(Serialize, Deserialize)]` (re-exported from `serde_derive`)
//!   for named/tuple/unit structs and for enums with unit, newtype, tuple,
//!   and struct variants, including generic types with `where` clauses and
//!   the `#[serde(skip)]` field attribute;
//! - impls for the primitives, `String`, `Option`, `Box`, `Vec`, tuples,
//!   `HashMap` and `BTreeMap` (map keys serialized through strings; hash-map
//!   entries are sorted so output is deterministic, tree-map entries are
//!   already in key order).
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! values serialize into a self-describing [`Value`] tree which
//! `serde_json` renders to/parses from JSON text. Enum representation
//! matches serde's externally-tagged default (`"Variant"` or
//! `{"Variant": ...}`), and numbers deserialize leniently across
//! integer/float variants, so JSON written by this shim round-trips through
//! the same types exactly.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved verbatim.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Looks up a field in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses an instance out of the shim's data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializes a named field out of a map's entries (derive-macro helper).
///
/// # Errors
///
/// Returns an error if the field is missing or fails to deserialize.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::new(format!("missing field `{name}` in {context}"))),
    }
}

/// Like [`field`], but a missing entry yields `default()` instead of an
/// error — the runtime half of the derive shim's `#[serde(default)]` /
/// `#[serde(default = "path")]` support, so artifacts written before a
/// field existed keep deserializing.
pub fn field_or<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(default()),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    Value::F64(x) if x >= 0.0 && x.fract() == 0.0 => x as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| Error::new(format!("{x} out of range for i64")))?,
                    Value::I64(x) => x,
                    Value::F64(x) if x.fract() == 0.0 => x as i64,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            // NaN serializes as null (like serde_json with arbitrary
            // precision off); accept it back.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Widen exactly; narrowing on deserialize recovers the same f32.
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(Error::new(format!(
                        "tuple length mismatch: expected {expected}, got {}",
                        s.len()
                    )));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    // Try the natural string form first, then numeric reinterpretations —
    // integer map keys round-trip through strings, as in serde_json.
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if s == "true" || s == "false" {
        if let Ok(k) = K::from_value(&Value::Bool(s == "true")) {
            return Ok(k);
        }
    }
    Err(Error::new(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        // Hash maps have no intrinsic order; sort so output is deterministic.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "HashMap"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Iteration follows `Ord` on the key; re-sort by the *stringified*
        // key so BTreeMap output matches the HashMap impl byte for byte
        // (e.g. integer keys 2 and 10 order differently as strings).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}
