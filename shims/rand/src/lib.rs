//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the rand 0.8 API this codebase uses:
//!
//! - [`rngs::StdRng`]: a deterministic xoshiro256++ generator seeded through
//!   SplitMix64 (`seed_from_u64`). Stream values differ from upstream
//!   `StdRng` (which is ChaCha12) — determinism within this workspace is
//!   what matters, not cross-crate stream equality.
//! - [`rngs::OsRng`]: a non-deterministic generator mixed from the system
//!   clock and a process-global counter.
//! - [`Rng`] with `gen`, `gen_range` (half-open and inclusive integer/float
//!   ranges), and `gen_bool`; [`SeedableRng`] with `seed_from_u64`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG's raw bit stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. The sampled type `T` is a
/// direct parameter (as in rand 0.8) so literals infer from call context.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + x) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + x) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let x = self.start + u * (self.end - self.start);
                if x < self.end { x } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (floats land in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A non-deterministic generator mixed from the system clock and a
    /// process-global counter (stand-in for rand's OsRng).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u64(&mut self) -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let mut state = nanos
                ^ COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed)
                ^ (std::process::id() as u64) << 32;
            splitmix64(&mut state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&y));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
