//! Offline stand-in for the `criterion` crate.
//!
//! Provides `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, and `Bencher::iter` with a plain wall-clock
//! measurement loop (short warm-up, then a timed batch) instead of
//! criterion's statistical machinery. Each benchmark prints one
//! `name ... time per iter` line.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

/// Runs one benchmark closure through a warm-up and a timed batch.
fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up: find an iteration count that takes a measurable slice.
    let mut iters: u64 = 1;
    loop {
        bencher.iters = iters;
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let per_iter_estimate = bencher.elapsed.as_secs_f64() / iters as f64;
    // Timed batch sized to roughly 100ms or `sample_size` iterations,
    // whichever is larger.
    let target = (0.1 / per_iter_estimate.max(1e-9)) as u64;
    bencher.iters = target.clamp(sample_size as u64, 10_000_000).max(1);
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    println!(
        "bench {name:<40} {:>12.3} ns/iter ({} iters)",
        per_iter * 1e9,
        bencher.iters
    );
}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the minimum iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
