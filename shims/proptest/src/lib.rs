//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` line),
//! range and tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Cases are generated from a
//! deterministic per-test seed (hash of the test name mixed with the case
//! index), so failures reproduce exactly. There is **no shrinking** — a
//! failing case panics with its case index instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG for `(test name, case index)`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            seed ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

/// Test-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Sizes accepted by [`prop::collection::vec`].
pub trait VecSize {
    /// Draws a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl VecSize for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl VecSize for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

impl VecSize for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

/// Strategy combinators under their proptest paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng, VecSize};

        /// A strategy producing vectors of `size` elements drawn from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: impl VecSize) -> VecStrategy<S, impl VecSize> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: VecSize> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs its body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let run = || $body;
                run();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The proptest prelude: strategies, config, and assertion macros.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0.0f32..1.0, 1usize..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let s = 0u64..1_000_000;
        let a = Strategy::generate(&s, &mut TestRng::deterministic("t", 3));
        let b = Strategy::generate(&s, &mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }
}
