//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment has no crates.io access). The supported grammar covers
//! everything this workspace derives:
//!
//! - named, tuple, and unit structs;
//! - enums with unit, newtype, tuple, and struct variants;
//! - generic parameters with inline bounds and `where` clauses (each type
//!   parameter additionally gets a `Serialize`/`Deserialize` bound);
//! - the `#[serde(skip)]` field attribute (field omitted on serialize,
//!   `Default::default()` on deserialize);
//! - the `#[serde(default)]` and `#[serde(default = "path")]` field
//!   attributes (a missing entry deserializes to `Default::default()` or
//!   `path()` instead of erroring, so older artifacts without the field
//!   keep parsing).
//!
//! Serialized form matches serde's externally-tagged defaults: named
//! structs become maps, newtype structs unwrap to their inner value, tuple
//! structs become arrays, unit variants become strings, and data-carrying
//! variants become single-entry maps keyed by the variant name.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    /// Expression yielding the field's value when the serialized map has
    /// no entry for it (`#[serde(default)]` / `#[serde(default = "path")]`);
    /// `None` makes a missing entry an error, like serde without the
    /// attribute.
    default: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Raw generic parameter list, e.g. `S: Clone` (without the `<>`).
    generics: String,
    /// Bare parameter names, e.g. `["S"]`.
    params: Vec<String>,
    /// Raw `where` clause predicates (without the `where` keyword).
    where_clause: String,
    kind: Kind,
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility.
    let keyword = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    i += 1;
                    break kw;
                }
                panic!("derive: unexpected token `{kw}`");
            }
            other => panic!("derive: unexpected token `{other}`"),
        }
    };

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found `{other}`"),
    };
    i += 1;

    // Generic parameter list.
    let mut generics = String::new();
    let mut params = Vec::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expecting_param = true;
        while depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
                TokenTree::Ident(id) if expecting_param => {
                    params.push(id.to_string());
                    expecting_param = false;
                }
                _ => {}
            }
            generics.push_str(&tokens[i].to_string());
            generics.push(' ');
            i += 1;
        }
    }

    // Optional where clause (runs until the body group or `;`).
    let mut where_clause = String::new();
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        i += 1;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                t => {
                    where_clause.push_str(&t.to_string());
                    where_clause.push(' ');
                    i += 1;
                }
            }
        }
        let trimmed = where_clause.trim().trim_end_matches(',').to_string();
        where_clause = trimmed;
    }

    let kind = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Shape::Unit),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: expected enum body, found `{other:?}`"),
        }
    };

    Input {
        name,
        generics: generics.trim().trim_end_matches(',').to_string(),
        params,
        where_clause,
        kind,
    }
}

/// The field-level `#[serde(...)]` attributes this shim understands.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    /// See [`Field::default`].
    default: Option<String>,
}

/// Consumes attributes at `*i`, returning the recognized `#[serde(...)]`
/// field attributes.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for piece in args.stream().to_string().split(',') {
                        let piece = piece.trim();
                        if piece == "skip" {
                            attrs.skip = true;
                        } else if piece == "default" {
                            attrs.default = Some("::std::default::Default::default()".to_string());
                        } else if let Some(rest) = piece.strip_prefix("default") {
                            // `default = "path"`: the quoted token is a
                            // function path, called with no arguments.
                            let path = rest.trim_start_matches(['=', ' ']).trim_matches('"').trim();
                            assert!(
                                !path.is_empty(),
                                "derive: malformed serde default attribute `{piece}`"
                            );
                            attrs.default = Some(format!("{path}()"));
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    attrs
}

fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Skips a type (or any token run) up to a top-level `,`, tracking `<>` depth.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = eat_attrs(&tokens, &mut i);
        eat_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected field name, found `{other}`"),
        };
        i += 1; // name
        i += 1; // ':'
        skip_past_comma(&tokens, &mut i);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        eat_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_past_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

impl Input {
    /// `impl<G> Trait for Name<P> where ...` header pieces.
    fn impl_header(&self, trait_bound: &str) -> (String, String, String) {
        let generics = if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics)
        };
        let ty_params = if self.params.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.params.join(", "))
        };
        let mut predicates: Vec<String> = Vec::new();
        if !self.where_clause.is_empty() {
            predicates.push(self.where_clause.clone());
        }
        for p in &self.params {
            predicates.push(format!("{p}: {trait_bound}"));
        }
        let where_clause = if predicates.is_empty() {
            String::new()
        } else {
            format!("where {}", predicates.join(", "))
        };
        (generics, ty_params, where_clause)
    }
}

fn gen_serialize(input: &Input) -> String {
    let (generics, ty_params, where_clause) = input.impl_header("serde::Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut entries: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Map(entries)"
            )
        }
        Kind::Struct(Shape::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Unit) => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Seq(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(String, serde::Value)> = Vec::new();\n\
                             {pushes}\
                             serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(inner))])\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} serde::Serialize for {name}{ty_params} {where_clause} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (generics, ty_params, where_clause) = input.impl_header("serde::Deserialize");
    let name = &input.name;
    let named_ctor = |fields: &[Field], path: &str, map_expr: &str| -> String {
        let mut inits = String::new();
        for f in fields {
            if f.skip {
                inits.push_str(&format!(
                    "{n}: ::std::default::Default::default(),\n",
                    n = f.name
                ));
            } else if let Some(default) = &f.default {
                inits.push_str(&format!(
                    "{n}: serde::field_or({map_expr}, \"{n}\", || {default})?,\n",
                    n = f.name
                ));
            } else {
                inits.push_str(&format!(
                    "{n}: serde::field({map_expr}, \"{n}\", \"{path}\")?,\n",
                    n = f.name
                ));
            }
        }
        format!("{path} {{\n{inits}}}")
    };
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let ctor = named_ctor(fields, name, "entries");
            format!(
                "let entries = v.as_map().ok_or_else(|| serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 Ok({ctor})"
            )
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&s[{k}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| serde::Error::expected(\"array\", \"{name}\"))?;\n\
                 if s.len() != {n} {{\n\
                 return Err(serde::Error::new(format!(\"{name}: expected {n} elements, got {{}}\", s.len())));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&s[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let s = inner.as_seq().ok_or_else(|| serde::Error::expected(\"array\", \"{name}::{vn}\"))?;\n\
                             if s.len() != {n} {{\n\
                             return Err(serde::Error::new(format!(\"{name}::{vn}: expected {n} elements, got {{}}\", s.len())));\n\
                             }}\n\
                             Ok({name}::{vn}({items}))\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = named_ctor(fields, &format!("{name}::{vn}"), "entries");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let entries = inner.as_map().ok_or_else(|| serde::Error::expected(\"map\", \"{name}::{vn}\"))?;\n\
                             Ok({ctor})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::Error::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(serde::Error::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(serde::Error::expected(\"string or single-entry map\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} serde::Deserialize for {name}{ty_params} {where_clause} {{\n\
         fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("derived Deserialize impl parses")
}
