//! Fixture-based rule tests: every rule must fire on its violating fixture
//! and stay quiet — including the allow bookkeeping — on its clean one.
//!
//! The fixtures live under `tests/fixtures/<rule>/` and are excluded from
//! the workspace walk (`Workspace::load` skips `/tests/fixtures/`), so the
//! violating ones never trip the real lint run.

use hierdrl_lint::findings::Report;
use hierdrl_lint::rules::{self, Rule};
use hierdrl_lint::source::{TargetKind, Workspace};
use std::path::Path;

/// Lints `content` as a lib file of `crate_name` with a single rule.
fn lint_one(rule: Box<dyn Rule>, crate_name: &str, content: &str) -> Report {
    let ws = Workspace::from_sources(
        Path::new("/fixture-root-does-not-exist"),
        vec![(
            "crates/demo/src/lib.rs".to_string(),
            crate_name.to_string(),
            TargetKind::Lib,
            content.to_string(),
        )],
    );
    hierdrl_lint::lint(&ws, &[rule])
}

fn count(report: &Report, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn nondet_iteration_fires_on_violating_fixture_only() {
    let bad = lint_one(
        Box::new(rules::NondetIteration),
        "hierdrl-core",
        include_str!("fixtures/nondet_iteration/violating.rs"),
    );
    assert_eq!(count(&bad, "nondet-iteration"), 2, "{}", bad.table());

    let good = lint_one(
        Box::new(rules::NondetIteration),
        "hierdrl-core",
        include_str!("fixtures/nondet_iteration/clean.rs"),
    );
    assert!(good.is_clean(), "{}", good.table());
}

#[test]
fn nondet_iteration_is_scoped_to_report_feeding_crates() {
    // The same violating source in an out-of-scope crate is not flagged.
    let report = lint_one(
        Box::new(rules::NondetIteration),
        "some-unrelated-tool",
        include_str!("fixtures/nondet_iteration/violating.rs"),
    );
    assert!(report.is_clean(), "{}", report.table());
}

#[test]
fn wall_clock_fires_on_violating_fixture_only() {
    let bad = lint_one(
        Box::new(rules::WallClock),
        "hierdrl-core",
        include_str!("fixtures/wall_clock/violating.rs"),
    );
    assert_eq!(count(&bad, "wall-clock"), 2, "{}", bad.table());

    // The clean fixture includes one *justified* read: the finding must be
    // suppressed and the allow counted as used (no unused-allow either).
    let good = lint_one(
        Box::new(rules::WallClock),
        "hierdrl-core",
        include_str!("fixtures/wall_clock/clean.rs"),
    );
    assert!(good.is_clean(), "{}", good.table());
    assert_eq!(good.allows_used.len(), 1);
    assert_eq!(good.allows_used[0].rule, "wall-clock");
}

#[test]
fn ambient_entropy_fires_on_violating_fixture_only() {
    let bad = lint_one(
        Box::new(rules::AmbientEntropy),
        "hierdrl-core",
        include_str!("fixtures/ambient_entropy/violating.rs"),
    );
    assert_eq!(count(&bad, "ambient-entropy"), 2, "{}", bad.table());

    let good = lint_one(
        Box::new(rules::AmbientEntropy),
        "hierdrl-core",
        include_str!("fixtures/ambient_entropy/clean.rs"),
    );
    assert!(good.is_clean(), "{}", good.table());
}

#[test]
fn ambient_entropy_permits_bin_targets() {
    let ws = Workspace::from_sources(
        Path::new("/fixture-root-does-not-exist"),
        vec![(
            "crates/demo/src/main.rs".to_string(),
            "hierdrl-core".to_string(),
            TargetKind::Bin,
            include_str!("fixtures/ambient_entropy/violating.rs").to_string(),
        )],
    );
    let report = hierdrl_lint::lint(&ws, &[Box::new(rules::AmbientEntropy) as Box<dyn Rule>]);
    assert!(report.is_clean(), "{}", report.table());
}

#[test]
fn float_reduction_fires_on_violating_fixture_only() {
    let bad = lint_one(
        Box::new(rules::FloatReduction),
        "hierdrl-core",
        include_str!("fixtures/float_reduction/violating.rs"),
    );
    assert_eq!(count(&bad, "float-reduction"), 2, "{}", bad.table());

    // The clean fixture still ends in a `.sum()` — but a *serial* one, on
    // the collected per-item vector, which must not be flagged.
    let good = lint_one(
        Box::new(rules::FloatReduction),
        "hierdrl-core",
        include_str!("fixtures/float_reduction/clean.rs"),
    );
    assert!(good.is_clean(), "{}", good.table());
}

#[test]
fn unsafe_safety_fires_on_violating_fixture_only() {
    let bad = lint_one(
        Box::new(rules::UnsafeSafetyComment),
        "demo-unsafe",
        include_str!("fixtures/unsafe_safety/violating.rs"),
    );
    assert_eq!(count(&bad, "unsafe-safety-comment"), 1, "{}", bad.table());

    let good = lint_one(
        Box::new(rules::UnsafeSafetyComment),
        "demo-unsafe",
        include_str!("fixtures/unsafe_safety/clean.rs"),
    );
    assert!(good.is_clean(), "{}", good.table());
}

#[test]
fn unsafe_free_crates_must_forbid_unsafe() {
    let src = "pub fn f() -> u32 {\n    7\n}\n";
    let report = lint_one(Box::new(rules::UnsafeSafetyComment), "demo-safe", src);
    assert_eq!(
        count(&report, "unsafe-safety-comment"),
        1,
        "{}",
        report.table()
    );

    let src = "#![forbid(unsafe_code)]\n\npub fn f() -> u32 {\n    7\n}\n";
    let report = lint_one(Box::new(rules::UnsafeSafetyComment), "demo-safe", src);
    assert!(report.is_clean(), "{}", report.table());
}

fn test_presence_ws(sources: Vec<(String, String, TargetKind, String)>) -> Report {
    // This fixture root really exists on disk: it holds the manifest the
    // rule reads (`crates/lint/expected_tests.toml` relative to the root).
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/test_presence/ws");
    let ws = Workspace::from_sources(&root, sources);
    hierdrl_lint::lint(&ws, &[Box::new(rules::TestPresence) as Box<dyn Rule>])
}

#[test]
fn test_presence_passes_when_the_pinned_test_exists() {
    let report = test_presence_ws(vec![(
        "crates/demo/tests/equivalence.rs".to_string(),
        "demo".to_string(),
        TargetKind::Test,
        "#[test]\nfn sharded_matches_serial() {}\n".to_string(),
    )]);
    assert!(report.is_clean(), "{}", report.table());
}

#[test]
fn test_presence_fails_on_renamed_test_and_missing_file() {
    // Renamed away: the file exists but the pinned `fn` is gone.
    let report = test_presence_ws(vec![(
        "crates/demo/tests/equivalence.rs".to_string(),
        "demo".to_string(),
        TargetKind::Test,
        "#[test]\nfn renamed_to_something_else() {}\n".to_string(),
    )]);
    assert_eq!(count(&report, "test-presence"), 1, "{}", report.table());

    // Deleted: the expected file is missing from the workspace entirely.
    let report = test_presence_ws(vec![]);
    assert_eq!(count(&report, "test-presence"), 1, "{}", report.table());
}

#[test]
fn allow_meta_findings_catch_stale_and_unjustified_allows() {
    let src = "\
pub fn f(start_s: f64) -> f64 {
    // lint:allow(wall-clock)
    let a = start_s + 1.0;
    let b = a; // lint:allow(no-such-rule): typo'd rule id
    b // lint:allow(ambient-entropy): suppresses nothing on this line
}
";
    // Two known rules so `ambient-entropy` resolves but suppresses nothing.
    let ws = Workspace::from_sources(
        Path::new("/fixture-root-does-not-exist"),
        vec![(
            "crates/demo/src/lib.rs".to_string(),
            "hierdrl-core".to_string(),
            TargetKind::Lib,
            src.to_string(),
        )],
    );
    let report = hierdrl_lint::lint(
        &ws,
        &[
            Box::new(rules::WallClock) as Box<dyn Rule>,
            Box::new(rules::AmbientEntropy) as Box<dyn Rule>,
        ],
    );
    let rules_hit: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules_hit.contains(&"allow-missing-reason"),
        "{}",
        report.table()
    );
    assert!(
        rules_hit.contains(&"unknown-rule-allow"),
        "{}",
        report.table()
    );
    assert!(rules_hit.contains(&"unused-allow"), "{}", report.table());
}
