//! Self-hosting: the repository must pass its own determinism/safety lint.
//!
//! This is the acceptance bar the CI lint step enforces; keeping it as a
//! test too means a plain `cargo test` catches regressions (a new unordered
//! iteration, a reasonless allow, a renamed pinned test) without the
//! workflow having to run.

use std::path::Path;

#[test]
fn repo_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = hierdrl_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.is_clean(),
        "the workspace has lint findings:\n{}{}",
        report.table(),
        report.summary()
    );
    // Guard against the walk silently scanning nothing (wrong root, over-
    // aggressive exclusions): the workspace has far more sources than this.
    assert!(
        report.files_scanned > 50,
        "workspace walk looks truncated: only {} files scanned",
        report.files_scanned
    );
    // Every surviving allow carries a written justification.
    for allow in &report.allows_used {
        assert!(
            !allow.reason.is_empty(),
            "allow without a reason at {}:{}",
            allow.file,
            allow.line
        );
    }
}
