// Fixture: every unsafe block carries a SAFETY justification.

pub fn first_byte(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees `bytes` is non-empty, so reading
    // one byte at the start pointer stays in bounds.
    unsafe { *bytes.as_ptr() }
}
