// Fixture: an unsafe block with no SAFETY comment anywhere near it.

pub fn first_byte(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    unsafe { *bytes.as_ptr() }
}
