// Fixture: parallel map, serial order-preserving merge on one thread.
use rayon::prelude::*;

pub fn total_power(samples: &[f64]) -> f64 {
    let per_item: Vec<f64> = samples.par_iter().map(|s| s * 0.5).collect();
    per_item.iter().sum()
}
