// Fixture: parallel float reductions whose result depends on scheduling.
use rayon::prelude::*;

pub fn total_power(samples: &[f64]) -> f64 {
    samples.par_iter().sum()
}

pub fn weighted(samples: &[f64]) -> f64 {
    samples
        .par_iter()
        .map(|s| s * 0.5)
        .reduce(|| 0.0, |a, b| a + b)
}
