// Fixture: iterates hash collections whose order is per-process random.
use std::collections::{HashMap, HashSet};

pub fn dump(metrics: &HashMap<String, u64>) -> Vec<String> {
    let mut rows = Vec::new();
    for (name, value) in metrics.iter() {
        rows.push(format!("{name}={value}"));
    }
    rows
}

pub fn first_label(labels: HashSet<String>) -> Option<String> {
    for label in labels {
        return Some(label);
    }
    None
}
