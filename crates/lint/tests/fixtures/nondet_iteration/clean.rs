// Fixture: key-ordered iteration; point lookups into a HashMap are fine.
use std::collections::{BTreeMap, HashMap};

pub fn dump(metrics: &BTreeMap<String, u64>) -> Vec<String> {
    metrics
        .iter()
        .map(|(name, value)| format!("{name}={value}"))
        .collect()
}

pub fn lookup(by_name: &HashMap<String, u64>, name: &str) -> u64 {
    by_name.get(name).copied().unwrap_or(0)
}
