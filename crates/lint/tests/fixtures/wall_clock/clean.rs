// Fixture: simulated time only, plus one justified wall-clock read.
use std::time::Instant;

pub fn sim_elapsed(start_s: f64, end_s: f64) -> f64 {
    end_s - start_s
}

pub fn bench_stamp() -> Instant {
    Instant::now() // lint:allow(wall-clock): bench timing metadata, never in reports
}
