// Fixture: reads the wall clock in deterministic library code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
