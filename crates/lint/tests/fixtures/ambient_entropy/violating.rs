// Fixture: seeds state from the ambient environment in library code.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn seed_override() -> Option<u64> {
    std::env::var("HIERDRL_SEED").ok()?.parse().ok()
}

pub fn fresh_rng() -> SmallRng {
    SmallRng::from_entropy()
}
