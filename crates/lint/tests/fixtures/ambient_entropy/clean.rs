// Fixture: every seed flows in through configuration.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn rng_from_config(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
