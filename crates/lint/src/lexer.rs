//! A minimal, hand-rolled Rust lexer: just enough to tell code from
//! comments and string literals, which is what every rule needs.
//!
//! The lexer is deliberately *not* a full Rust grammar — no keywords, no
//! operator fusing, no macro awareness. It guarantees exactly two things:
//!
//! 1. identifiers and punctuation inside string/char literals and comments
//!    never appear in the code-token stream (so `"Instant::now"` in a log
//!    message is not a wall-clock read), and
//! 2. every comment is captured with its line span and whether it trails
//!    code on the same line (so `lint:allow` and `// SAFETY:` scanning is
//!    exact).
//!
//! Handled literal forms: `//`/`///`/`//!` line comments, nested
//! `/* .. */` block comments, `"…"` with escapes, raw strings
//! `r"…"`/`r#"…"#` (any `#` depth, with optional `b` prefix), byte strings
//! `b"…"`, char literals (`'a'`, `'\n'`), and lifetimes (`'a`, `'_`).

/// What a code token is. Comments are reported separately (see
/// [`Comment`]) and never appear in the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (the lexer does not distinguish).
    Ident(String),
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// A string literal (regular, raw, or byte); contents discarded.
    Str,
    /// A char literal; contents discarded.
    Char,
    /// A numeric literal (integer or float, any base); text discarded.
    Num,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One code token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and text, for identifiers).
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment (line or block) with its line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// Whether code tokens precede the comment on its starting line.
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (no comments, no literal contents).
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into code tokens and comments. Never fails: unterminated
/// literals simply consume to end of input (the compiler rejects such
/// files long before the linter matters).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
        line_has_code: false,
        current_line: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
    /// Whether a code token has been emitted on `current_line`.
    line_has_code: bool,
    current_line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn note_code(&mut self) {
        if self.line != self.current_line {
            self.current_line = self.line;
            self.line_has_code = false;
        }
        self.line_has_code = true;
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.note_code();
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if self.line != self.current_line {
                self.current_line = self.line;
                self.line_has_code = false;
            }
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphanumeric() => self.ident(),
                c => {
                    let line = self.line;
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code && self.current_line == line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code && self.current_line == line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            trailing,
        });
    }

    /// Consumes a `"…"` literal (cursor on the opening quote).
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, line);
    }

    /// Tries to consume a raw/byte string starting at the current `r`/`b`.
    /// Returns false (consuming nothing) if the prefix isn't one.
    fn raw_or_byte_string(&mut self) -> bool {
        let line = self.line;
        let mut ahead = 1; // past the `r` or `b`
        let first = self.peek(0).expect("caller saw r/b");
        if first == 'b' && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let raw = first == 'r' || ahead == 2;
        // Count `#`s after the prefix (raw strings only).
        let mut hashes = 0;
        if raw {
            while self.peek(ahead + hashes) == Some('#') {
                hashes += 1;
            }
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false; // plain identifier starting with r/b
        }
        if !raw && hashes == 0 && first == 'b' {
            // b"…" — plain byte string with escapes.
            self.bump(); // b
            self.string();
            return true;
        }
        // r…" or br…" — raw: no escapes, ends at `"` + `hashes` `#`s.
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, line);
        true
    }

    /// Disambiguates char literals from lifetimes (cursor on the `'`).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // '\…' is always a char literal.
        if self.peek(1) == Some('\\') {
            self.bump(); // '
            self.bump(); // backslash
            self.bump(); // escaped char
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Char, line);
            return;
        }
        // 'x' — any single character followed by a closing quote — is a
        // char literal (including '"', '.', ' '); 'ident without a closing
        // quote is a lifetime.
        if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            self.bump();
            self.bump();
            self.bump();
            self.push(TokenKind::Char, line);
            return;
        }
        let mut len = 0;
        while let Some(c) = self.peek(1 + len) {
            if c == '_' || c.is_alphanumeric() {
                len += 1;
            } else {
                break;
            }
        }
        self.bump(); // '
        for _ in 0..len {
            self.bump();
        }
        self.push(TokenKind::Lifetime, line);
    }

    fn number(&mut self) {
        let line = self.line;
        // Integer part (also consumes hex/suffix alphanumerics: 0xFF, 1u64).
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        // Fraction only if `.` is followed by a digit (so `0..n` stays a
        // range and `x.0` stays field access).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent sign (`1e-3`): the `e` was consumed above, the sign and
        // digits were not.
        if (self.peek(0) == Some('-') || self.peek(0) == Some('+'))
            && self
                .chars
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|&c| c == 'e' || c == 'E')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        self.push(TokenKind::Num, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(text), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r#"
            // Instant::now in a comment
            let x = "Instant::now in a string";
            /* HashMap in a block
               comment */
            let y = 1;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r##"let s = r#"thread_rng() "quoted" inside"#; call();"##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"call".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn punctuation_char_literals_are_not_lifetimes() {
        // A quote inside a char literal must not open a phantom string.
        let src = "if c == '\"' { x(); }\nlet after = thread_rng;";
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.line == 1));
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn escaped_char_literal_does_not_eat_the_file() {
        let src = "let a = '\\n'; let b = after;";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn trailing_comments_are_marked() {
        let src = "let x = 1; // trailing\n// leading\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn numbers_cover_floats_ranges_and_exponents() {
        let src = "let a = 1e-3 + 0.5; for i in 0..10 { x.0; }";
        let lexed = lex(src);
        let nums = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .count();
        // 1e-3, 0.5, 0, 10, 0 (tuple index)
        assert_eq!(nums, 5);
        assert!(idents(src).contains(&"i".to_string()));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ let real = 1;";
        assert_eq!(idents(src), vec!["let", "real"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let src = "let a = 1;\n\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].line, 1);
        let b_tok = lexed.tokens.iter().find(|t| t.ident() == Some("b"));
        assert_eq!(b_tok.unwrap().line, 3);
    }
}
