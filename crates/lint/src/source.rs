//! The linted view of one source file and of the whole workspace.

use crate::lexer::{lex, Comment, Lexed, Token};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which compilation target a file belongs to. Several rules scope by
/// this: bin targets may read `std::env`, test code may read wall clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code (`src/` outside `src/bin/`).
    Lib,
    /// A binary target (`src/bin/*.rs`, `src/main.rs`).
    Bin,
    /// Integration tests and benches (`tests/`, `benches/`).
    Test,
    /// Example programs (`examples/`).
    Example,
}

/// An inline suppression: `// lint:allow(rule): reason`.
///
/// An allow written on its own line covers the next line that holds code;
/// written trailing after code, it covers its own line. Both placements
/// survive `cargo fmt`, which preserves standalone and trailing comments.
#[derive(Debug)]
pub struct Allow {
    /// The rule id being suppressed.
    pub rule: String,
    /// The written justification (may be empty — itself a finding).
    pub reason: String,
    /// 1-based line of the allow comment.
    pub line: u32,
    /// First line the allow covers.
    pub covers_from: u32,
    /// Last line the allow covers.
    pub covers_to: u32,
    /// Set when a rule finding was suppressed by this allow.
    pub used: Cell<bool>,
}

/// One lexed source file plus everything rules need to scope themselves.
#[derive(Debug)]
pub struct LintedFile {
    /// Workspace-relative path with `/` separators (stable across OSes).
    pub rel: String,
    /// Cargo package name of the owning crate (e.g. `hierdrl-rl`).
    pub crate_name: String,
    /// Which target the file compiles into.
    pub kind: TargetKind,
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Parsed `lint:allow` suppressions.
    pub allows: Vec<Allow>,
    /// 1-based line count.
    pub line_count: u32,
    /// `in_cfg_test[line]` (1-based) — line sits inside a `#[cfg(test)]`
    /// item, i.e. unit-test code embedded in a lib file.
    in_cfg_test: Vec<bool>,
    /// Lines that contain at least one code token.
    has_code: Vec<bool>,
}

impl LintedFile {
    /// Lexes `content` into a linted file.
    pub fn new(rel: &str, crate_name: &str, kind: TargetKind, content: &str) -> Self {
        let Lexed { tokens, comments } = lex(content);
        let line_count = content.lines().count().max(1) as u32;
        let mut has_code = vec![false; line_count as usize + 2];
        for t in &tokens {
            if let Some(slot) = has_code.get_mut(t.line as usize) {
                *slot = true;
            }
        }
        let in_cfg_test = cfg_test_lines(&tokens, line_count);
        let allows = parse_allows(&comments, &has_code, line_count);
        Self {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            tokens,
            comments,
            allows,
            line_count,
            in_cfg_test,
            has_code,
        }
    }

    /// Whether `line` is test code: the whole file is a test/bench target,
    /// or the line sits inside a `#[cfg(test)]` item.
    pub fn is_test_code(&self, line: u32) -> bool {
        self.kind == TargetKind::Test || *self.in_cfg_test.get(line as usize).unwrap_or(&false)
    }

    /// Whether any comment containing `needle` touches lines
    /// `[from, to]` (inclusive, by the comment's start line).
    pub fn has_comment_containing(&self, needle: &str, from: u32, to: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line >= from && c.line <= to && c.text.contains(needle))
    }

    /// Whether `line` holds at least one code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        *self.has_code.get(line as usize).unwrap_or(&false)
    }

    /// Tries to suppress a finding of `rule` at `line`; marks the matching
    /// allow as used.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.rule == rule && line >= a.covers_from && line <= a.covers_to {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// Marks lines covered by `#[cfg(test)]` items (in practice: the unit-test
/// `mod tests` blocks every crate in this workspace uses).
fn cfg_test_lines(tokens: &[Token], line_count: u32) -> Vec<bool> {
    let mut flags = vec![false; line_count as usize + 2];
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].ident() == Some("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].ident() == Some("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the body `{ … }` of the annotated item; a `;` first means a
        // braceless item (e.g. `#[cfg(test)] use …;`) covering one line.
        let mut j = i + 7;
        let mut open = None;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if tokens[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let (from, to) = match open {
            Some(open_idx) => {
                let mut depth = 0i32;
                let mut end = open_idx;
                for (k, t) in tokens.iter().enumerate().skip(open_idx) {
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            end = k;
                            break;
                        }
                    }
                }
                (tokens[i].line, tokens[end].line)
            }
            None => (tokens[i].line, tokens[j.min(tokens.len() - 1)].line),
        };
        for line in from..=to {
            if let Some(slot) = flags.get_mut(line as usize) {
                *slot = true;
            }
        }
        i = j;
    }
    flags
}

/// Parses `lint:allow(rule): reason` comments into [`Allow`] records.
fn parse_allows(comments: &[Comment], has_code: &[bool], line_count: u32) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // Doc comments never carry live allows — prose about the allow
        // syntax (like this crate's own rule docs) must not parse as one.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[start + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim())
            .unwrap_or("")
            .to_string();
        let (covers_from, covers_to) = if c.trailing {
            (c.line, c.line)
        } else {
            // Standalone comment: cover through the next line holding code.
            let mut to = c.end_line + 1;
            while to <= line_count && !has_code.get(to as usize).copied().unwrap_or(false) {
                to += 1;
            }
            (c.line, to.min(line_count))
        };
        allows.push(Allow {
            rule,
            reason,
            line: c.line,
            covers_from,
            covers_to,
            used: Cell::new(false),
        });
    }
    allows
}

/// The linted view of the workspace: every Rust source file plus the
/// workspace root (for workspace-level rules such as `test-presence`).
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All linted files, sorted by relative path.
    pub files: Vec<LintedFile>,
}

impl Workspace {
    /// Builds a workspace directly from in-memory sources (used by the
    /// fixture tests; `root` need not exist on disk).
    pub fn from_sources(root: &Path, sources: Vec<(String, String, TargetKind, String)>) -> Self {
        let files = sources
            .into_iter()
            .map(|(rel, krate, kind, content)| LintedFile::new(&rel, &krate, kind, &content))
            .collect();
        Self {
            root: root.to_path_buf(),
            files,
        }
    }

    /// Loads every `.rs` file under the workspace's source roots
    /// (`crates/`, `shims/`, `src/`, `tests/`, `examples/`), excluding
    /// build output and the linter's own rule fixtures (which violate the
    /// rules on purpose).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory walks and file reads.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut crate_names: BTreeMap<String, String> = BTreeMap::new();
        let mut paths = Vec::new();
        for top in ["crates", "shims", "src", "tests", "examples"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(&dir, &mut paths)?;
            }
        }
        paths.sort();

        let mut files = Vec::new();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if rel.contains("/tests/fixtures/") || rel.starts_with("target/") {
                continue;
            }
            let crate_name = crate_name_for(root, &rel, &mut crate_names)?;
            let kind = target_kind_for(&rel);
            let content = fs::read_to_string(&path)?;
            files.push(LintedFile::new(&rel, &crate_name, kind, &content));
        }
        Ok(Self {
            root: root.to_path_buf(),
            files,
        })
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Resolves the Cargo package name owning `rel`, memoized per crate dir.
fn crate_name_for(
    root: &Path,
    rel: &str,
    cache: &mut BTreeMap<String, String>,
) -> io::Result<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_dir = match parts.as_slice() {
        ["crates" | "shims", name, ..] => format!("{}/{}", parts[0], name),
        _ => String::new(), // root package
    };
    if let Some(hit) = cache.get(&crate_dir) {
        return Ok(hit.clone());
    }
    let manifest = if crate_dir.is_empty() {
        root.join("Cargo.toml")
    } else {
        root.join(&crate_dir).join("Cargo.toml")
    };
    let name = fs::read_to_string(&manifest)
        .ok()
        .and_then(|text| {
            text.lines().find_map(|l| {
                let l = l.trim();
                l.strip_prefix("name")
                    .map(|r| r.trim_start())
                    .and_then(|r| r.strip_prefix('='))
                    .map(|r| r.trim().trim_matches('"').to_string())
            })
        })
        .unwrap_or_else(|| "unknown".to_string());
    cache.insert(crate_dir, name.clone());
    Ok(name)
}

fn target_kind_for(rel: &str) -> TargetKind {
    if rel.contains("/src/bin/") || rel.ends_with("src/main.rs") {
        TargetKind::Bin
    } else if rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.starts_with("benches/")
    {
        TargetKind::Test
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        TargetKind::Example
    } else {
        TargetKind::Lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_trailing_covers_its_own_line() {
        let f = LintedFile::new(
            "a.rs",
            "c",
            TargetKind::Lib,
            "let x = now(); // lint:allow(wall-clock): timing metadata only\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!((f.allows[0].covers_from, f.allows[0].covers_to), (1, 1));
        assert_eq!(f.allows[0].reason, "timing metadata only");
        assert!(f.suppresses("wall-clock", 1));
        assert!(!f.suppresses("ambient-entropy", 1));
    }

    #[test]
    fn allow_standalone_covers_next_code_line() {
        let src = "// lint:allow(wall-clock): reason here\n\nlet x = now();\n";
        let f = LintedFile::new("a.rs", "c", TargetKind::Lib, src);
        assert_eq!((f.allows[0].covers_from, f.allows[0].covers_to), (1, 3));
        assert!(f.suppresses("wall-clock", 3));
    }

    #[test]
    fn allow_without_reason_is_recorded_empty() {
        let f = LintedFile::new(
            "a.rs",
            "c",
            TargetKind::Lib,
            "// lint:allow(wall-clock)\nlet x = 1;\n",
        );
        assert_eq!(f.allows[0].reason, "");
    }

    #[test]
    fn cfg_test_region_is_detected() {
        let src = "\
pub fn real() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t() {}
}
";
        let f = LintedFile::new("a.rs", "c", TargetKind::Lib, src);
        assert!(!f.is_test_code(1));
        assert!(f.is_test_code(4));
        assert!(f.is_test_code(8));
    }

    #[test]
    fn test_target_files_are_all_test_code() {
        let f = LintedFile::new("crates/x/tests/t.rs", "c", TargetKind::Test, "fn a() {}\n");
        assert!(f.is_test_code(1));
    }
}
