//! `wall-clock`: no `Instant::now` / `SystemTime::now` in deterministic
//! crates.
//!
//! Simulated time is the only clock the deterministic core may read —
//! every run is a pure function of (scenario, seed), and a wall-clock
//! read is a hidden input that varies per run. Timing *metadata* (bench
//! wall-clock columns, which are documented as inherently nondeterministic
//! and kept out of `SuiteReport`) is legitimate; such sites carry
//! `// lint:allow(wall-clock): <why it never reaches deterministic bytes>`.
//! Test code and bin targets are exempt.

use super::Rule;
use crate::findings::Finding;
use crate::source::{LintedFile, TargetKind};

/// Crates that must stay wall-clock-free (the deterministic core plus the
/// orchestration layer, whose reports are byte-compared across schedules).
const SCOPED_CRATES: &[&str] = &[
    "hierdrl",
    "hierdrl-core",
    "hierdrl-exp",
    "hierdrl-neural",
    "hierdrl-rl",
    "hierdrl-sim",
    "hierdrl-trace",
];

/// See the module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn check_file(&self, file: &LintedFile, out: &mut Vec<Finding>) {
        if !SCOPED_CRATES.contains(&file.crate_name.as_str())
            || matches!(file.kind, TargetKind::Bin | TargetKind::Example)
        {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len().saturating_sub(3) {
            let Some(ty) = toks[i].ident() else {
                continue;
            };
            if (ty == "Instant" || ty == "SystemTime")
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
                && toks[i + 3].ident() == Some("now")
                && !file.is_test_code(toks[i].line)
            {
                out.push(Finding::new(
                    self.id(),
                    &file.rel,
                    toks[i].line,
                    format!(
                        "`{ty}::now()` reads the wall clock in a deterministic crate; \
                         derive from simulated time or justify with lint:allow"
                    ),
                ));
            }
        }
    }
}
