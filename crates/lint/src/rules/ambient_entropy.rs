//! `ambient-entropy`: no entropy or environment reads outside bin targets.
//!
//! Every RNG in the workspace must be seeded from the scenario's own
//! SplitMix64 seed tree; `thread_rng()` / `from_entropy()` smuggle OS
//! entropy into what must be a pure function of (scenario, seed), and
//! `std::env` reads make library behavior depend on who launched the
//! process. Bin targets (CLI flag parsing) and test code (e.g. the
//! `UPDATE_GOLDEN` regeneration switch) are exempt; library sites that
//! genuinely parse process arguments for the bins carry
//! `// lint:allow(ambient-entropy): <why>`.

use super::Rule;
use crate::findings::Finding;
use crate::source::{LintedFile, TargetKind};

/// `std::env` functions that read the ambient environment.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "args", "args_os"];

/// See the module docs.
pub struct AmbientEntropy;

impl Rule for AmbientEntropy {
    fn id(&self) -> &'static str {
        "ambient-entropy"
    }

    fn check_file(&self, file: &LintedFile, out: &mut Vec<Finding>) {
        if matches!(file.kind, TargetKind::Bin | TargetKind::Example) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else {
                continue;
            };
            let line = toks[i].line;
            if file.is_test_code(line) {
                continue;
            }
            if id == "thread_rng" || id == "from_entropy" {
                out.push(Finding::new(
                    self.id(),
                    &file.rel,
                    line,
                    format!(
                        "`{id}` draws ambient OS entropy; seed from the scenario's \
                         SplitMix64 tree instead or justify with lint:allow"
                    ),
                ));
            }
            // `env::var(…)` etc., qualified through the `env` module.
            if id == "env"
                && i + 3 < toks.len()
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
                && toks[i + 3].ident().is_some_and(|f| ENV_READS.contains(&f))
            {
                let f = toks[i + 3].ident().unwrap_or_default();
                out.push(Finding::new(
                    self.id(),
                    &file.rel,
                    line,
                    format!(
                        "`env::{f}` reads the process environment in library code; \
                         move to a bin target or justify with lint:allow"
                    ),
                ));
            }
        }
    }
}
