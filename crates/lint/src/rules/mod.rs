//! The rule registry.
//!
//! Each rule maps one hazard class for the workspace's standing
//! correctness bar — serial == sharded == batched, bit for bit — onto a
//! machine-checked source pattern. See `crates/lint/README.md` for the
//! rationale behind every rule.

mod ambient_entropy;
mod float_reduction;
mod nondet_iteration;
mod test_presence;
mod unsafe_safety;
mod wall_clock;

use crate::findings::Finding;
use crate::source::{LintedFile, Workspace};

pub use ambient_entropy::AmbientEntropy;
pub use float_reduction::FloatReduction;
pub use nondet_iteration::NondetIteration;
pub use test_presence::{TestPresence, EXPECTED_TESTS_MANIFEST};
pub use unsafe_safety::UnsafeSafetyComment;
pub use wall_clock::WallClock;

/// A lint rule. Rules see one file at a time plus, optionally, the whole
/// workspace (for cross-file obligations such as crate-level
/// `#![forbid(unsafe_code)]` or the test-inventory manifest).
pub trait Rule {
    /// Stable rule id, as written in `lint:allow(<id>)`.
    fn id(&self) -> &'static str;

    /// Checks one file, pushing findings (suppression is applied by the
    /// engine afterwards, so rules never look at allows).
    fn check_file(&self, _file: &LintedFile, _out: &mut Vec<Finding>) {}

    /// Checks workspace-level obligations. Findings from this hook are
    /// *not* suppressible with inline allows.
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Finding>) {}
}

/// The default registry, in the order rules run and report.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondet_iteration::NondetIteration),
        Box::new(wall_clock::WallClock),
        Box::new(ambient_entropy::AmbientEntropy),
        Box::new(float_reduction::FloatReduction),
        Box::new(unsafe_safety::UnsafeSafetyComment),
        Box::new(test_presence::TestPresence),
    ]
}
