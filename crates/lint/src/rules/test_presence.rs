//! `test-presence`: the determinism/equivalence test inventory.
//!
//! The suite's standing guarantees (serial==parallel, sharded==serial,
//! batched==unbatched, streamed==materialized, …) are only as durable as
//! the tests that pin them. This rule replaces the old 11-line grep block
//! in `.github/workflows/ci.yml`: `crates/lint/expected_tests.toml` lists
//! every load-bearing test by file and function name, and the rule fails
//! if a file disappears or a test function is renamed away. The manifest
//! is parsed with a tiny built-in TOML-subset reader (`[[check]]` tables
//! of string keys) so the linter stays dependency-free.

use super::Rule;
use crate::findings::Finding;
use crate::source::Workspace;
use std::fs;

/// Workspace-relative path of the manifest this rule reads.
pub const EXPECTED_TESTS_MANIFEST: &str = "crates/lint/expected_tests.toml";

/// One `[[check]]` entry of the manifest.
#[derive(Debug, Default, Clone)]
struct Check {
    file: String,
    test: String,
    reason: String,
}

/// See the module docs.
pub struct TestPresence;

impl Rule for TestPresence {
    fn id(&self) -> &'static str {
        "test-presence"
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let manifest_path = ws.root.join(EXPECTED_TESTS_MANIFEST);
        let text = match fs::read_to_string(&manifest_path) {
            Ok(t) => t,
            Err(e) => {
                out.push(Finding::new(
                    self.id(),
                    EXPECTED_TESTS_MANIFEST,
                    1,
                    format!("cannot read the expected-tests manifest: {e}"),
                ));
                return;
            }
        };
        let checks = match parse_checks(&text) {
            Ok(c) => c,
            Err((line, msg)) => {
                out.push(Finding::new(self.id(), EXPECTED_TESTS_MANIFEST, line, msg));
                return;
            }
        };
        if checks.is_empty() {
            out.push(Finding::new(
                self.id(),
                EXPECTED_TESTS_MANIFEST,
                1,
                "the expected-tests manifest lists no [[check]] entries",
            ));
            return;
        }
        for (idx, check) in checks.iter().enumerate() {
            if check.file.is_empty() || check.test.is_empty() {
                out.push(Finding::new(
                    self.id(),
                    EXPECTED_TESTS_MANIFEST,
                    1,
                    format!("[[check]] #{} must set both `file` and `test`", idx + 1),
                ));
                continue;
            }
            let Some(file) = ws.files.iter().find(|f| f.rel == check.file) else {
                out.push(Finding::new(
                    self.id(),
                    &check.file,
                    1,
                    format!(
                        "expected test file is missing from the workspace \
                         (pins: {})",
                        check.reason
                    ),
                ));
                continue;
            };
            let present = file
                .tokens
                .windows(2)
                .any(|w| w[0].ident() == Some("fn") && w[1].ident() == Some(check.test.as_str()));
            if !present {
                out.push(Finding::new(
                    self.id(),
                    &check.file,
                    1,
                    format!(
                        "expected test `fn {}` is missing (pins: {})",
                        check.test, check.reason
                    ),
                ));
            }
        }
    }
}

/// Parses the `[[check]]` TOML subset: table headers, `key = "value"`
/// string pairs, `#` comments, blank lines. Anything else is an error.
fn parse_checks(text: &str) -> Result<Vec<Check>, (u32, String)> {
    let mut checks: Vec<Check> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[check]]" {
            checks.push(Check::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err((line_no, format!("unparsable manifest line: {line:?}")));
        };
        let Some(entry) = checks.last_mut() else {
            return Err((line_no, "key before the first [[check]] table".to_string()));
        };
        let key = key.trim();
        let value = value.trim();
        if value.len() < 2 || !value.starts_with('"') || !value.ends_with('"') {
            return Err((line_no, format!("`{key}` must be a quoted string")));
        }
        let value = value[1..value.len() - 1].to_string();
        match key {
            "file" => entry.file = value,
            "test" => entry.test = value,
            "reason" => entry.reason = value,
            other => return Err((line_no, format!("unknown manifest key `{other}`"))),
        }
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_checks_with_comments_and_blanks() {
        let text = r#"
# comment
[[check]]
file = "a/b.rs"
test = "t1"
reason = "serial==parallel"

[[check]]
file = "c.rs"
test = "t2"
reason = "x"
"#;
        let checks = parse_checks(text).unwrap();
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].file, "a/b.rs");
        assert_eq!(checks[1].test, "t2");
    }

    #[test]
    fn rejects_unquoted_values_and_unknown_keys() {
        assert!(parse_checks("[[check]]\nfile = bare\n").is_err());
        assert!(parse_checks("[[check]]\nnope = \"x\"\n").is_err());
        assert!(parse_checks("file = \"orphan\"\n").is_err());
    }
}
