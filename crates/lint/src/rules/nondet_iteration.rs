//! `nondet-iteration`: iteration over `HashMap`/`HashSet` in the crates
//! that feed reports and snapshots.
//!
//! `std::collections::HashMap` iterates in a per-instance random order
//! (its hasher is seeded from process entropy), so any value that flows
//! from map iteration into a report row, a serialized snapshot, or a job
//! stream can differ between two runs of the *same* binary — exactly the
//! hazard class behind the one real bug this rule surfaced on landing:
//! `google.rs` pushed jobs in `tasks.values()` order and stable-sorted by
//! arrival, so equal-arrival jobs kept random relative order. Iterate a
//! `BTreeMap`/sorted keys instead, or justify the site with
//! `// lint:allow(nondet-iteration): <why order cannot matter>`.

use super::Rule;
use crate::findings::Finding;
use crate::source::LintedFile;
use std::collections::BTreeSet;

/// Crates whose values reach reports, snapshots, or golden files.
const SCOPED_CRATES: &[&str] = &[
    "hierdrl",
    "hierdrl-core",
    "hierdrl-exp",
    "hierdrl-rl",
    "hierdrl-sim",
    "hierdrl-trace",
];

/// Methods whose results expose map iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// See the module docs.
pub struct NondetIteration;

impl Rule for NondetIteration {
    fn id(&self) -> &'static str {
        "nondet-iteration"
    }

    fn check_file(&self, file: &LintedFile, out: &mut Vec<Finding>) {
        if !SCOPED_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let names = declared_hash_collections(file);
        if names.is_empty() {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test_code(toks[i].line) {
                continue;
            }
            // `name.method(` where `name` is a known hash collection.
            if i + 3 < toks.len()
                && toks[i + 1].is_punct('.')
                && toks[i + 3].is_punct('(')
                && toks[i].ident().is_some_and(|n| {
                    names.contains(n)
                        && toks[i + 2]
                            .ident()
                            .is_some_and(|m| ITER_METHODS.contains(&m))
                })
            {
                let name = toks[i].ident().unwrap_or_default();
                let method = toks[i + 2].ident().unwrap_or_default();
                out.push(Finding::new(
                    self.id(),
                    &file.rel,
                    toks[i + 2].line,
                    format!(
                        "`{name}.{method}()` iterates a HashMap/HashSet in random order; \
                         use a BTreeMap/sorted keys or justify with lint:allow"
                    ),
                ));
            }
            // `for pat in [&[mut]] name` where `name` is a known collection.
            if toks[i].ident() == Some("in") && i > 0 && i + 1 < toks.len() {
                let mut j = i + 1;
                while j < toks.len() && (toks[j].is_punct('&') || toks[j].ident() == Some("mut")) {
                    j += 1;
                }
                // Only a bare `name` (not `name.something` / `name(...)`):
                // the method-call arm above handles chained forms.
                let bare = j + 1 >= toks.len()
                    || !(toks[j + 1].is_punct('.') || toks[j + 1].is_punct('('));
                if bare {
                    if let Some(name) = toks[j].ident() {
                        if names.contains(name) && preceded_by_for(toks, i) {
                            out.push(Finding::new(
                                self.id(),
                                &file.rel,
                                toks[j].line,
                                format!(
                                    "`for … in {name}` iterates a HashMap/HashSet in random \
                                     order; use a BTreeMap/sorted keys or justify with lint:allow"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: let
/// bindings and struct fields with an explicit `: …HashMap<…>` type, and
/// `name = HashMap::new()`-style initializers.
fn declared_hash_collections(file: &LintedFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if name == "HashMap" || name == "HashSet" {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        // `name : …HashMap< …` — scan a short window of type tokens.
        if next.is_punct(':') && !toks.get(i + 2).is_some_and(|t| t.is_punct(':')) {
            for t in toks.iter().skip(i + 2).take(10) {
                if t.is_punct(';') || t.is_punct(',') || t.is_punct('=') || t.is_punct('{') {
                    break;
                }
                if matches!(t.ident(), Some("HashMap" | "HashSet")) {
                    names.insert(name.to_string());
                    break;
                }
            }
        }
        // `name = HashMap::new()` / struct-literal `name: HashMap::new()`.
        if next.is_punct('=') || next.is_punct(':') {
            if let (Some(a), Some(b)) = (toks.get(i + 2), toks.get(i + 3)) {
                if matches!(a.ident(), Some("HashMap" | "HashSet")) && b.is_punct(':') {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

/// Whether the `in` at token index `i` belongs to a `for` loop (rather
/// than e.g. a pattern guard) — looks back a few tokens for `for`.
fn preceded_by_for(toks: &[crate::lexer::Token], i: usize) -> bool {
    toks[..i]
        .iter()
        .rev()
        .take(8)
        .any(|t| t.ident() == Some("for"))
}
