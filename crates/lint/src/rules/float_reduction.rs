//! `float-reduction`: parallel reductions must be marked order-safe.
//!
//! Floating-point addition is not associative, so a rayon `fold`/`reduce`/
//! `sum` over floats produces schedule-dependent bytes — the exact failure
//! mode the serial==sharded bar exists to catch. The workspace convention
//! is that parallel stages return per-item results which are *merged in
//! input order* on one thread (see `aggregate_shards`); a parallel
//! reduction is only acceptable when its operation is genuinely
//! order-insensitive (integer counters, max of ints) and says so:
//! `// lint:allow(float-reduction): <why the reduction is order-safe>`.

use super::Rule;
use crate::findings::Finding;
use crate::source::LintedFile;

/// Identifiers that start a rayon-style parallel chain.
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_extend",
];

/// Reducing adapters whose result depends on evaluation order for
/// non-associative operations.
const REDUCERS: &[&str] = &[
    "sum",
    "product",
    "fold",
    "reduce",
    "fold_with",
    "reduce_with",
];

/// See the module docs.
pub struct FloatReduction;

impl Rule for FloatReduction {
    fn id(&self) -> &'static str {
        "float-reduction"
    }

    fn check_file(&self, file: &LintedFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        // Paren/bracket/brace depth per token, so a chain's window can end
        // at the statement's own `;` and not a closure-internal one.
        let mut depths = Vec::with_capacity(toks.len());
        let mut d = 0i32;
        for t in toks {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depths.push(d);
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
                depths.push(d);
            } else {
                depths.push(d);
            }
        }
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else {
                continue;
            };
            if !PAR_SOURCES.contains(&id) || file.is_test_code(toks[i].line) {
                continue;
            }
            let base = depths[i];
            // Scan the rest of the statement for a reducing adapter.
            for j in i + 1..toks.len().min(i + 600) {
                // Statement end, or the enclosing block closed (a tail
                // expression has no `;` — don't scan into the next item).
                if (toks[j].is_punct(';') && depths[j] <= base) || depths[j] < base {
                    break;
                }
                let Some(m) = toks[j].ident() else {
                    continue;
                };
                if REDUCERS.contains(&m) && j > 0 && toks[j - 1].is_punct('.') && depths[j] == base
                {
                    out.push(Finding::new(
                        self.id(),
                        &file.rel,
                        toks[j].line,
                        format!(
                            "`.{m}(…)` on a `{id}` chain: parallel reductions reassociate; \
                             merge per-item results in input order, or mark the reduction \
                             order-safe with lint:allow"
                        ),
                    ));
                }
            }
        }
    }
}
