//! `unsafe-safety-comment`: every `unsafe` needs a written safety
//! argument, and crates with no `unsafe` must say so with
//! `#![forbid(unsafe_code)]`.
//!
//! Two obligations:
//!
//! 1. **Per site** — an `unsafe { … }` block needs a `// SAFETY:` comment
//!    on the same line or within the three lines above it; an `unsafe fn`
//!    (or `unsafe impl`) needs a `# Safety` section in its doc comment or
//!    a `// SAFETY:` comment above the item.
//! 2. **Per crate** — a crate whose `src/` contains no `unsafe` at all
//!    must carry `#![forbid(unsafe_code)]` in its crate root, so unsafe
//!    cannot creep in silently later.

use super::Rule;
use crate::findings::Finding;
use crate::source::{LintedFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// How many lines above an `unsafe` site a `// SAFETY:` comment may sit.
const SAFETY_LOOKBACK: u32 = 3;

/// How many lines of contiguous docs/attributes above an `unsafe fn` are
/// searched for a `# Safety` section.
const DOC_LOOKBACK: u32 = 60;

/// See the module docs.
pub struct UnsafeSafetyComment;

impl Rule for UnsafeSafetyComment {
    fn id(&self) -> &'static str {
        "unsafe-safety-comment"
    }

    fn check_file(&self, file: &LintedFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].ident() != Some("unsafe") {
                continue;
            }
            let line = toks[i].line;
            let next = toks.get(i + 1);
            let is_block = next.is_some_and(|t| t.is_punct('{'));
            if is_block {
                let from = line.saturating_sub(SAFETY_LOOKBACK);
                if !file.has_comment_containing("SAFETY:", from, line) {
                    out.push(Finding::new(
                        self.id(),
                        &file.rel,
                        line,
                        "`unsafe` block without a `// SAFETY:` comment on or above it",
                    ));
                }
            } else {
                // `unsafe fn` / `unsafe impl` / `unsafe extern`: accept a
                // `# Safety` doc section in the attached doc block or a
                // `// SAFETY:` comment above the item.
                let from = line.saturating_sub(DOC_LOOKBACK);
                if !file.has_comment_containing("# Safety", from, line)
                    && !file.has_comment_containing("SAFETY:", from, line)
                {
                    out.push(Finding::new(
                        self.id(),
                        &file.rel,
                        line,
                        "`unsafe` item without a `# Safety` doc section or \
                         `// SAFETY:` comment",
                    ));
                }
            }
        }
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Which crates use `unsafe` anywhere in src/ (test code included:
        // forbid is crate-wide), and where each crate's root file is.
        let mut uses_unsafe: BTreeSet<&str> = BTreeSet::new();
        let mut roots: BTreeMap<&str, &LintedFile> = BTreeMap::new();
        for f in &ws.files {
            let in_src = f.rel.contains("/src/") || f.rel.starts_with("src/");
            if !in_src {
                continue;
            }
            if f.tokens.iter().any(|t| t.ident() == Some("unsafe")) {
                uses_unsafe.insert(&f.crate_name);
            }
            if f.rel.ends_with("src/lib.rs") {
                roots.insert(&f.crate_name, f);
            } else if f.rel.ends_with("src/main.rs") && !roots.contains_key(f.crate_name.as_str()) {
                roots.entry(&f.crate_name).or_insert(f);
            }
        }
        for (krate, root) in roots {
            if uses_unsafe.contains(krate) {
                continue;
            }
            if !has_forbid_unsafe(root) {
                out.push(Finding::new(
                    self.id(),
                    &root.rel,
                    1,
                    format!(
                        "crate `{krate}` contains no unsafe code but its root lacks \
                         `#![forbid(unsafe_code)]`"
                    ),
                ));
            }
        }
    }
}

/// Detects the token sequence `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(file: &LintedFile) -> bool {
    let toks = &file.tokens;
    (0..toks.len().saturating_sub(7)).any(|i| {
        toks[i].is_punct('#')
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('[')
            && toks[i + 3].ident() == Some("forbid")
            && toks[i + 4].is_punct('(')
            && toks[i + 5].ident() == Some("unsafe_code")
            && toks[i + 6].is_punct(')')
            && toks[i + 7].is_punct(']')
    })
}
