//! The `hierdrl-lint` CLI: `cargo run --release -p hierdrl-lint -- --workspace`.
//!
//! Exits nonzero on any finding, so the lint step gates CI. `--json PATH`
//! additionally writes the machine-readable findings artifact.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut json = None;
    let mut workspace = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                let v = iter.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = iter.next().ok_or("--json needs a path")?;
                json = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: hierdrl-lint --workspace [--root DIR] [--json OUT.json]",
                ))
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if !workspace {
        return Err(String::from(
            "pass --workspace to lint the whole workspace (the only mode)",
        ));
    }
    // Under `cargo run` the working directory is the workspace root.
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    Ok(Args { root, json })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match hierdrl_lint::lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hierdrl-lint: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("hierdrl-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !report.is_clean() {
        print!("{}", report.table());
    }
    println!("{}", report.summary());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
