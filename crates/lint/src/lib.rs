//! # hierdrl-lint
//!
//! The workspace determinism & safety linter ("detlint"). The repo's
//! headline guarantee — serial == sharded == batched, **bit for bit** —
//! is enforced at runtime by equivalence tests, but the hazard classes
//! that break it (unordered `HashMap` iteration, wall-clock reads,
//! ambient entropy, reassociated parallel float reductions, unaudited
//! `unsafe`) used to be caught by nothing until a golden file flipped.
//! This crate promotes those conventions into declarative, machine-checked
//! rules that run in CI *before* any simulation does.
//!
//! Run it over the workspace with:
//!
//! ```text
//! cargo run --release -p hierdrl-lint -- --workspace
//! ```
//!
//! Suppress an individual finding with an inline justification, which the
//! linter verifies is present, non-empty, and actually used:
//!
//! ```text
//! let started = Instant::now(); // lint:allow(wall-clock): bench metadata only
//! ```
//!
//! See `crates/lint/README.md` for every rule and its rationale.

#![forbid(unsafe_code)]

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;

use findings::{Finding, Report, UsedAllow};
use rules::Rule;
use source::Workspace;
use std::io;
use std::path::Path;

/// Known rule ids, used to validate `lint:allow(<id>)` references.
fn known_rule_ids(rules: &[Box<dyn Rule>]) -> Vec<String> {
    rules.iter().map(|r| r.id().to_string()).collect()
}

/// Lints a loaded [`Workspace`] with the given rules, applying inline
/// suppressions and reporting meta-findings (allows without a reason,
/// allows that suppress nothing, allows naming unknown rules).
pub fn lint(ws: &Workspace, rules: &[Box<dyn Rule>]) -> Report {
    let rule_ids = known_rule_ids(rules);
    let mut findings: Vec<Finding> = Vec::new();

    for rule in rules {
        for file in &ws.files {
            let mut raw = Vec::new();
            rule.check_file(file, &mut raw);
            for f in raw {
                if !file.suppresses(rule.id(), f.line) {
                    findings.push(f);
                }
            }
        }
        rule.check_workspace(ws, &mut findings);
    }

    // Meta-findings about the allow machinery itself. These are not
    // themselves suppressible: an unused or reasonless allow is dead
    // weight that misleads the next reader about what the code needs.
    let mut allows_used = Vec::new();
    for file in &ws.files {
        for a in &file.allows {
            if !rule_ids.iter().any(|id| id == &a.rule) {
                findings.push(Finding::new(
                    "unknown-rule-allow",
                    &file.rel,
                    a.line,
                    format!("lint:allow names unknown rule `{}`", a.rule),
                ));
                continue;
            }
            if a.reason.is_empty() {
                findings.push(Finding::new(
                    "allow-missing-reason",
                    &file.rel,
                    a.line,
                    format!(
                        "lint:allow({}) has no written reason; append `: <why>`",
                        a.rule
                    ),
                ));
            }
            if a.used.get() {
                allows_used.push(UsedAllow {
                    rule: a.rule.clone(),
                    file: file.rel.clone(),
                    line: a.line,
                    reason: a.reason.clone(),
                });
            } else {
                findings.push(Finding::new(
                    "unused-allow",
                    &file.rel,
                    a.line,
                    format!("lint:allow({}) suppresses nothing here; remove it", a.rule),
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Report {
        findings,
        allows_used,
        files_scanned: ws.files.len(),
        rules: rule_ids,
    }
}

/// Loads the workspace at `root` and lints it with the default rules.
///
/// # Errors
///
/// Propagates I/O errors from the workspace walk.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(lint(&ws, &rules::default_rules()))
}
