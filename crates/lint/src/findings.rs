//! Findings, the per-file report table, and the machine-readable JSON
//! artifact (hand-serialized — the linter depends on nothing it lints).

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule id (e.g. `wall-clock`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Self {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// One justified suppression that was actually exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsedAllow {
    /// The suppressed rule id.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the allow comment.
    pub line: u32,
    /// The written justification.
    pub reason: String,
}

/// The outcome of one linter run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Allows that suppressed at least one finding.
    pub allows_used: Vec<UsedAllow>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Rule ids that ran.
    pub rules: Vec<String>,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the per-file findings table (empty string when clean).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let mut current_file = "";
        for f in &self.findings {
            if f.file != current_file {
                if !current_file.is_empty() {
                    out.push('\n');
                }
                let _ = writeln!(out, "{}", f.file);
                current_file = &f.file;
            }
            let _ = writeln!(out, "  {:>5}  {:<24} {}", f.line, f.rule, f.message);
        }
        out
    }

    /// Renders the one-line summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "lint clean: {} files, {} rules, {} justified allow(s) in use",
                self.files_scanned,
                self.rules.len(),
                self.allows_used.len()
            )
        } else {
            format!(
                "{} finding(s) across {} files ({} rules ran)",
                self.findings.len(),
                self.files_scanned,
                self.rules.len()
            )
        }
    }

    /// Serializes the report as a stable JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"hierdrl-lint/1\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(
            out,
            "  \"rules\": [{}],",
            self.rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"allows_used\": [");
        for (i, a) in self.allows_used.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason)
            );
        }
        if !self.allows_used.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn clean_report_serializes_empty_arrays() {
        let r = Report {
            files_scanned: 3,
            rules: vec!["wall-clock".into()],
            ..Report::default()
        };
        let json = r.to_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"findings\": []"));
        assert!(r.table().is_empty());
    }

    #[test]
    fn table_groups_by_file() {
        let r = Report {
            findings: vec![
                Finding::new("wall-clock", "a.rs", 3, "x"),
                Finding::new("wall-clock", "a.rs", 9, "y"),
                Finding::new("ambient-entropy", "b.rs", 1, "z"),
            ],
            files_scanned: 2,
            ..Report::default()
        };
        let t = r.table();
        assert_eq!(t.matches("a.rs").count(), 1);
        assert!(t.contains("b.rs"));
    }
}
