//! Criterion micro-benchmarks for the performance-critical paths:
//!
//! - `dqn_inference`: one global-tier decision's DNN work (`q_values` over
//!   all servers) — the paper argues online complexity is low because it is
//!   proportional to the number of actions;
//! - `dqn_train_batch`: one minibatch DNN update;
//! - `lstm_predict` / `lstm_train_step`: the local tier's predictor;
//! - `simulator_throughput`: event-loop speed with non-learning policies;
//! - `matmul`: the neural substrate's kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hierdrl_core::dqn::{GroupedQNetwork, QNetworkConfig, QSample};
use hierdrl_core::predictor::{IatPredictor, LstmIatPredictor, PredictorConfig};
use hierdrl_core::state::{GlobalState, StateEncoder, StateEncoderConfig};
use hierdrl_neural::matrix::Matrix;
use hierdrl_sim::cluster::{Cluster, RunLimit};
use hierdrl_sim::config::ClusterConfig;
use hierdrl_sim::policies::{FixedTimeoutPower, RoundRobinAllocator};
use hierdrl_trace::generator::{TraceGenerator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn layout_m30() -> StateEncoder {
    StateEncoder::new(30, 3, StateEncoderConfig::default())
}

fn random_state(layout: &StateEncoder, rng: &mut StdRng) -> GlobalState {
    GlobalState {
        groups: (0..layout.num_groups())
            .map(|_| {
                (0..layout.group_width())
                    .map(|_| rng.gen::<f32>())
                    .collect()
            })
            .collect(),
        job: (0..layout.job_width()).map(|_| rng.gen::<f32>()).collect(),
    }
}

fn bench_dqn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let layout = layout_m30();
    let mut net = GroupedQNetwork::new(&layout, QNetworkConfig::default(), &mut rng);
    let state = random_state(&layout, &mut rng);

    c.bench_function("dqn_inference_m30", |b| {
        b.iter(|| black_box(net.q_values(black_box(&state))))
    });

    let samples: Vec<QSample> = (0..32)
        .map(|i| QSample {
            state: random_state(&layout, &mut rng),
            action: i % 30,
            target: -1.0,
        })
        .collect();
    let mut group = c.benchmark_group("dqn_train");
    group.sample_size(20);
    group.bench_function("dqn_train_batch_32", |b| {
        b.iter(|| black_box(net.train_batch(black_box(&samples))))
    });
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut predictor = LstmIatPredictor::new(PredictorConfig::default(), &mut rng);
    for i in 0..120 {
        predictor.observe(30.0 + (i % 7) as f64 * 40.0);
    }
    c.bench_function("lstm_predict_lookback35", |b| {
        b.iter(|| black_box(predictor.predict()))
    });

    let mut trainer = LstmIatPredictor::new(PredictorConfig::default(), &mut rng);
    for i in 0..40 {
        trainer.observe(30.0 + (i % 7) as f64 * 40.0);
    }
    let mut x = 0u64;
    c.bench_function("lstm_observe_and_train", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            trainer.observe(30.0 + (x % 7) as f64 * 40.0);
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let trace = TraceGenerator::new(WorkloadConfig::google_like(5, 95_000.0))
        .expect("workload")
        .generate_n(2_000);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("simulate_2k_jobs_m30", |b| {
        b.iter(|| {
            let mut cluster =
                Cluster::new(ClusterConfig::paper(30), trace.jobs().to_vec()).expect("cluster");
            let out = cluster.run(
                &mut RoundRobinAllocator::new(),
                &mut FixedTimeoutPower::new(60.0),
                RunLimit::unbounded(),
            );
            black_box(out.totals.jobs_completed)
        })
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::from_vec(32, 128, (0..32 * 128).map(|_| rng.gen::<f32>()).collect());
    let b = Matrix::from_vec(128, 64, (0..128 * 64).map(|_| rng.gen::<f32>()).collect());
    c.bench_function("matmul_32x128x64", |bch| {
        bch.iter(|| black_box(a.matmul(black_box(&b))))
    });
}

criterion_group!(
    benches,
    bench_dqn,
    bench_lstm,
    bench_simulator,
    bench_matmul
);
criterion_main!(benches);
