//! # hierdrl-bench
//!
//! Benchmark binaries that regenerate every table and figure of the
//! paper's evaluation (Section VII), plus ablations. Each binary is a thin
//! wrapper over a named suite preset in `hierdrl_exp::presets`, executed by
//! the parallel `SuiteRunner`:
//!
//! | Binary | Paper artifact | Preset |
//! |---|---|---|
//! | `fig8` | Fig. 8: accumulated latency & energy vs. jobs, M = 30 | `presets::fig8` |
//! | `fig9` | Fig. 9: same, M = 40 | `presets::fig9` |
//! | `table1` | Table I: energy/latency/power at job 95,000 | `presets::table1` |
//! | `fig10` | Fig. 10: latency-energy trade-off curves | `presets::fig10` |
//! | `ablation_dqn` | autoencoder/weight-sharing & group-count ablations | `presets::ablation_dqn` |
//! | `calibrate` | calibration probe (not a paper artifact) | `presets::calibrate` |
//! | `lstm_accuracy` | LSTM predictor vs. simpler baselines | (bespoke) |
//! | `qbench` | batched vs. unbatched DQN hot-path microbench | (bespoke) |
//! | `scale` | raw-scale regime: 10⁵ servers / 10⁶ streamed jobs, jobs/s + peak RSS | `hierdrl_exp::scale` |
//! | `perf_gate` | CI regression gate (jobs/s + peak RSS) over `BENCH_suite.json` | (bespoke) |
//!
//! All suite binaries accept `--jobs N`, `--m M`, `--quick` (smoke scale),
//! and `--threads T`; `table1` additionally writes its machine-readable
//! timing artifact to `--out PATH` (default `BENCH_suite.json`), which
//! doubles as the committed baseline the `perf_gate` bin diffs fresh runs
//! against in CI (see "Performance & CI gate" in `crates/exp/README.md`).
//! Criterion micro-benches (decision latency, LSTM step, simulator
//! throughput) live in `benches/`.

#![forbid(unsafe_code)]

pub mod harness;
