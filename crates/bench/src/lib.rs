//! # hierdrl-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the
//! paper's evaluation (Section VII), plus ablations. Each binary prints the
//! same rows/series the paper reports:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig8` | Fig. 8: accumulated latency & energy vs. jobs, M = 30 |
//! | `fig9` | Fig. 9: same, M = 40 |
//! | `table1` | Table I: energy/latency/power at job 95,000 |
//! | `fig10` | Fig. 10: latency-energy trade-off curves |
//! | `ablation_dqn` | autoencoder/weight-sharing & group-count ablations |
//! | `lstm_accuracy` | LSTM predictor vs. simpler baselines |
//!
//! All binaries accept `--jobs N` and `--m M` to scale down (e.g. for smoke
//! runs); defaults reproduce the paper's setup. Criterion micro-benches
//! (decision latency, LSTM step, simulator throughput) live in `benches/`.

pub mod harness;
