//! Arrival-rate sweep artifact: the policy × arrival-rate × cluster-size
//! cube behind `presets::load_sweep`, emitted as CSV for plotting the
//! load/latency/energy surfaces (the sweep shape the orchestration layer
//! exists for).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin load_sweep                 # default cube
//! cargo run --release -p hierdrl-bench --bin load_sweep -- --quick      # smoke scale
//! cargo run --release -p hierdrl-bench --bin load_sweep -- \
//!     --ms 10,20,30 --rates 0.6,1.0,1.4 --out load_sweep.csv
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};
use hierdrl_exp::scenario::PAPER_WEEKLY_JOBS_PER_SERVER;
use std::fmt::Write as _;

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::quick());
    let ms = args.cluster_sizes(&[scale.m, scale.m * 2]);
    let rates = args.rate_factors(&[0.6, 1.0, 1.4]);
    let jobs_per_server = (scale.jobs as f64 / scale.m as f64).max(1.0);
    let runner = args.runner();
    eprintln!(
        "load_sweep: ms = {:?}, rates = {:?}, jobs/server = {:.0}, threads = {}",
        ms,
        rates,
        jobs_per_server,
        runner.threads()
    );
    let suite = presets::load_sweep(&ms, &rates, jobs_per_server);
    let run = runner.run(&suite).expect("load_sweep suite");
    let report = run.report();

    let mut csv = String::from(
        "policy,m,rate_factor,jobs_completed,energy_kwh,latency_mega_s,\
         average_power_w,mean_latency_s,energy_per_job_j,sleep_fraction,span_hours\n",
    );
    for (cell_run, cell) in run.cells.iter().zip(&report.cells) {
        let rate =
            cell_run.scenario.workload.weekly_jobs_per_server() / PAPER_WEEKLY_JOBS_PER_SERVER;
        writeln!(
            csv,
            "{},{},{:.3},{},{:.6},{:.6},{:.3},{:.3},{:.1},{:.4},{:.3}",
            cell.policy,
            cell.servers,
            rate,
            cell.metrics.jobs_completed,
            cell.metrics.energy_kwh,
            cell.metrics.latency_mega_s,
            cell.metrics.average_power_w,
            cell.metrics.mean_latency_s,
            cell.metrics.energy_per_job_j,
            cell.metrics.sleep_fraction,
            cell.metrics.span_hours
        )
        .expect("write csv row");
    }
    print!("{csv}");

    let out = args.out.as_deref().unwrap_or("load_sweep.csv");
    std::fs::write(out, &csv).expect("write CSV artifact");
    eprintln!(
        "\nsweep: {} cells in {:.2}s wall; wrote {out}",
        run.cells.len(),
        run.total_wall_s
    );
}
