//! Online-learning / concept-drift sweep: {stationary, rate-step,
//! rate-ramp, pattern-flip} workloads × {round-robin, DRL-only,
//! hierarchical}, with evaluation and continued training interleaved
//! across each cell's workload segments under carried learners. Prints a
//! per-segment table (the post-drift columns are the headline: does online
//! learning track the shifted distribution?) and writes per-cell timing —
//! including per-segment rows — to `BENCH_drift.json` by default.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin drift            # paper scale
//! cargo run --release -p hierdrl-bench --bin drift -- --quick # smoke scale
//! cargo run --release -p hierdrl-bench --bin drift -- --drifts rate-step,pattern-flip
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale, DRIFT_NAMES};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let names = args.drift_names(&DRIFT_NAMES);
    let runner = args.runner();
    eprintln!(
        "drift: M = {}, jobs = {}, drifts = {}, threads = {}",
        scale.m,
        scale.jobs,
        names.join(","),
        runner.threads()
    );
    let suite = presets::drift(scale, &names);
    let run = runner.run(&suite).expect("drift suite");
    let report = run.report();

    println!(
        "{:<56} {:>3} {:<24} {:>6} {:>9} {:>9} {:>7} {:>7}",
        "cell", "seg", "shift", "jobs", "lat s/job", "J/job", "sleep%", "steps"
    );
    for cell in &report.cells {
        let segments = cell
            .segments
            .as_ref()
            .expect("every drift cell reports per-segment rows");
        for seg in segments {
            println!(
                "{:<56} {:>3} {:<24} {:>6} {:>9.2} {:>9.0} {:>6.1}% {:>7}",
                if seg.segment == 0 { &cell.id } else { "" },
                seg.segment,
                seg.shift,
                seg.metrics.jobs_completed,
                seg.metrics.mean_latency_s,
                seg.metrics.energy_per_job_j,
                100.0 * seg.metrics.sleep_fraction,
                seg.drl.map_or(0, |d| d.train_steps),
            );
        }
    }

    // The headline: on each drift shape, the post-drift (last) segment is
    // where continued online training has to pay off. Group by the
    // `workload@drift` component of the cell id — the `workload` column
    // alone is identical across every drift shape of the preset.
    let drift_axis = |id: &str| id.split('/').nth(1).unwrap_or("").to_string();
    for axis in report
        .cells
        .iter()
        .map(|c| drift_axis(&c.id))
        .collect::<std::collections::BTreeSet<_>>()
    {
        let find = |policy: &str| {
            report
                .cells
                .iter()
                .find(|c| drift_axis(&c.id) == axis && c.policy == policy)
        };
        if let (Some(rr), Some(drl)) = (find("round-robin"), find("drl-only")) {
            let last = |c: &hierdrl_exp::report::CellReport| {
                c.segments.as_ref().and_then(|s| s.last().cloned())
            };
            if let (Some(rr_last), Some(drl_last)) = (last(rr), last(drl)) {
                let rr_pl = rr_last.metrics.energy_per_job_j * rr_last.metrics.mean_latency_s;
                let drl_pl = drl_last.metrics.energy_per_job_j * drl_last.metrics.mean_latency_s;
                eprintln!(
                    "{axis}: post-drift power x latency (J·s/job²) round-robin \
                     {rr_pl:.0} vs drl-only {drl_pl:.0} ({})",
                    if drl_pl < rr_pl {
                        "DRL tracks the drift"
                    } else {
                        "round-robin wins"
                    }
                );
            }
        }
    }

    let bench = run.bench_report();
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate)",
        bench.cells_total, bench.total_wall_s, bench.jobs_per_s
    );
    // Not `BENCH_suite.json`: that name is the committed table1 baseline.
    let out = args.out.as_deref().unwrap_or("BENCH_drift.json");
    std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
    eprintln!("wrote {out}");
}
