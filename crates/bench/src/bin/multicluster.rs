//! Multi-cluster scaling sweep: the paper's fleet sharded across several
//! independent clusters behind a deterministic front-end router. The grid
//! holds total servers and per-server load constant while varying the
//! cluster count and the router policy (round-robin / least-loaded /
//! capacity-weighted), so the printed table answers "what does splitting
//! the fleet cost, and which router hides it best?". Per-cluster rows land
//! in the timing artifact (`BENCH_multicluster.json` by default).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin multicluster               # paper scale
//! cargo run --release -p hierdrl-bench --bin multicluster -- --quick    # smoke scale
//! cargo run --release -p hierdrl-bench --bin multicluster -- --clusters 2,4,8
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let counts = args.cluster_counts(&[2, 4]);
    let runner = args.runner();
    eprintln!(
        "multicluster: fleet M = {}, jobs = {}, cluster counts = {:?}, threads = {}",
        scale.m,
        scale.jobs,
        counts,
        runner.threads()
    );
    let suite = presets::multicluster(scale, &counts);
    let run = runner.run(&suite).expect("multicluster suite");
    let report = run.report();

    println!(
        "{:<44} {:>7} {:>9} {:>9} {:>10} {:>9}",
        "cell / cluster", "servers", "routed", "done", "energy kWh", "lat s/job"
    );
    for cell in &report.cells {
        println!(
            "{:<44} {:>7} {:>9} {:>9} {:>10.3} {:>9.2}",
            cell.id,
            cell.servers,
            "-",
            cell.metrics.jobs_completed,
            cell.metrics.energy_kwh,
            cell.metrics.mean_latency_s
        );
        for shard in cell.clusters.as_deref().unwrap_or_default() {
            println!(
                "{:<44} {:>7} {:>9} {:>9} {:>10.3} {:>9.2}",
                format!("  └ cluster {}", shard.cluster),
                shard.servers,
                shard.jobs_routed,
                shard.metrics.jobs_completed,
                shard.metrics.energy_kwh,
                shard.metrics.mean_latency_s
            );
        }
    }

    let bench = run.bench_report();
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate, {} traces materialized, {} cache hits)",
        bench.cells_total,
        bench.total_wall_s,
        bench.jobs_per_s,
        bench.traces_materialized,
        bench.trace_cache_hits
    );
    // Not `BENCH_suite.json`: that name is the committed table1 baseline,
    // which a flag-less local run must not clobber.
    let out = args.out.as_deref().unwrap_or("BENCH_multicluster.json");
    std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
    eprintln!("wrote {out}");
}
