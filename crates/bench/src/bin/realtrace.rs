//! Real-trace replay: each on-disk trace × {full trace, wall-clock-weekly
//! segments, weekly segments with frozen learners} × {round-robin,
//! DRL-only, hierarchical}. Prints the per-cell trace provenance (rows
//! kept/dropped/defaulted, with a warning when the demand gate fell back
//! to synthetic demands) and a per-segment table — one row per week of the
//! trace for segmented cells — then writes timing to
//! `BENCH_realtrace.json` by default.
//!
//! With no `--trace`, replays both committed fixtures (tiny, offline-safe;
//! see `crates/trace/tests/fixtures/`).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin realtrace                 # both fixtures
//! cargo run --release -p hierdrl-bench --bin realtrace -- --quick
//! cargo run --release -p hierdrl-bench --bin realtrace -- \
//!     --trace /data/batch_task.csv --format alibaba --m 30
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, REALTRACE_FIXTURES};
use hierdrl_exp::scenario::WorkloadSpec;
use hierdrl_trace::source::TraceFormat;

/// Resolves a repo-relative fixture path against the current directory
/// first, then against the source tree (so the bin works from any cwd).
fn resolve_fixture(path: &str) -> String {
    if std::path::Path::new(path).exists() {
        return path.to_string();
    }
    format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    let args = SweepArgs::from_env();
    let m = if args.quick { 6 } else { args.m.unwrap_or(10) };
    let workloads: Vec<WorkloadSpec> = match &args.trace {
        Some(path) => {
            let format = args.format.unwrap_or(TraceFormat::GoogleTaskEvents);
            vec![WorkloadSpec::real_trace(
                format!("real-{format}"),
                path.clone(),
                format,
            )]
        }
        None => REALTRACE_FIXTURES
            .iter()
            .map(|(name, path, format)| {
                WorkloadSpec::real_trace(*name, resolve_fixture(path), *format)
            })
            .collect(),
    };
    let runner = args.runner();
    eprintln!(
        "realtrace: M = {m}, workloads = {}, threads = {}",
        workloads
            .iter()
            .map(WorkloadSpec::name)
            .collect::<Vec<_>>()
            .join(","),
        runner.threads()
    );
    let suite = presets::realtrace(m, workloads);
    let run = runner.run(&suite).expect("realtrace suite");
    let report = run.report();

    // Provenance first: what each file contributed, one line per distinct
    // source (every cell of a workload shares the parse).
    let mut seen = std::collections::BTreeSet::new();
    for cell in &report.cells {
        if let Some(trace) = &cell.trace {
            if seen.insert(trace.source.clone()) {
                eprintln!(
                    "source {}: {} rows -> {} jobs kept, {} dropped, {} demand-defaulted{}",
                    trace.source,
                    trace.rows,
                    trace.jobs_kept,
                    trace.jobs_dropped,
                    trace.demand_defaulted,
                    if trace.synthetic_demand {
                        " [WARN: demand gate tripped; demands re-drawn synthetically]"
                    } else {
                        ""
                    }
                );
            }
        }
    }

    println!(
        "{:<64} {:>5} {:<8} {:>6} {:>9} {:>9} {:>7} {:>7}",
        "cell", "seg", "window", "jobs", "lat s/job", "J/job", "sleep%", "steps"
    );
    for cell in &report.cells {
        match &cell.segments {
            Some(segments) => {
                for seg in segments {
                    println!(
                        "{:<64} {:>5} {:<8} {:>6} {:>9.2} {:>9.0} {:>6.1}% {:>7}",
                        if seg.segment == 0 { &cell.id } else { "" },
                        seg.segment,
                        seg.shift,
                        seg.metrics.jobs_completed,
                        seg.metrics.mean_latency_s,
                        seg.metrics.energy_per_job_j,
                        100.0 * seg.metrics.sleep_fraction,
                        seg.drl.map_or(0, |d| d.train_steps),
                    );
                }
            }
            None => println!(
                "{:<64} {:>5} {:<8} {:>6} {:>9.2} {:>9.0} {:>6.1}% {:>7}",
                cell.id,
                "-",
                "full",
                cell.metrics.jobs_completed,
                cell.metrics.mean_latency_s,
                cell.metrics.energy_per_job_j,
                100.0 * cell.metrics.sleep_fraction,
                cell.drl.map_or(0, |d| d.train_steps),
            ),
        }
    }

    for row in &report.expectations {
        eprintln!(
            "expectation {}: {} ({})",
            row.name,
            if row.passed { "pass" } else { "FAIL" },
            row.detail
        );
    }

    let bench = run.bench_report();
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate)",
        bench.cells_total, bench.total_wall_s, bench.jobs_per_s
    );
    let out = args.out.as_deref().unwrap_or("BENCH_realtrace.json");
    std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
    eprintln!("wrote {out}");
    assert!(
        report.expectations.iter().all(|e| e.passed),
        "realtrace expectations failed"
    );
}
