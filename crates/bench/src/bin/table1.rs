//! Reproduces **Table I**: accumulated energy (kWh), accumulated latency
//! (1e6 s), and average power (W) for the round-robin baseline, DRL-based
//! allocation only, and the hierarchical framework, at M = 30 and M = 40 —
//! plus the paper's headline percentage savings (Sec. VII-B). The whole
//! grid runs through the parallel `SuiteRunner` as the `table1` preset, and
//! the per-cell timing lands in a machine-readable artifact
//! (`BENCH_suite.json` by default) for tracking runner throughput.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin table1            # paper scale
//! cargo run --release -p hierdrl-bench --bin table1 -- --quick # smoke scale
//! cargo run --release -p hierdrl-bench --bin table1 -- --out /tmp/bench.json
//! ```

use hierdrl_bench::harness::print_comparison;
use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let runner = args.runner();
    eprintln!(
        "table1: base M = {}, jobs = {}, threads = {}",
        scale.m,
        scale.jobs,
        runner.threads()
    );
    let suite = presets::table1(scale);
    let run = runner.run(&suite).expect("table1 suite");

    // The grid is 2 topologies x 3 systems, in suite order.
    let results = run.results();
    for (topo_idx, chunk) in results.chunks(3).enumerate() {
        let cell = &run.cells[topo_idx * 3].scenario;
        println!(
            "\n===== M = {} (jobs = {}) =====",
            cell.topology.servers(),
            cell.workload.jobs_for(cell.topology.servers())
        );
        print_comparison([chunk[0], chunk[1], chunk[2]]);
    }

    let bench = run.bench_report();
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate, {} traces materialized, {} cache hits)",
        bench.cells_total,
        bench.total_wall_s,
        bench.jobs_per_s,
        bench.traces_materialized,
        bench.trace_cache_hits
    );
    let out = args.out.as_deref().unwrap_or("BENCH_suite.json");
    std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
    eprintln!("wrote {out}");
}
