//! Reproduces **Table I**: accumulated energy (kWh), accumulated latency
//! (1e6 s), and average power (W) at job count 95,000 for the round-robin
//! baseline, DRL-based allocation only, and the hierarchical framework, at
//! M = 30 and M = 40 — plus the paper's headline percentage savings
//! (Sec. VII-B: 53.97% power/energy saving vs round-robin at M = 30, etc.).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin table1            # paper scale
//! cargo run --release -p hierdrl-bench --bin table1 -- --quick # smoke scale
//! ```

use hierdrl_bench::harness::{print_comparison, run_three_systems, scale_from_args, Scale};

fn main() {
    let base = scale_from_args(Scale::paper(30));
    for m in [30usize, 40] {
        // Hold per-server load constant across cluster sizes like the paper.
        let scale = Scale {
            m: if base.m == 30 { m } else { base.m * m / 30 },
            jobs: base.jobs * m as u64 / 30,
        };
        println!("\n===== M = {} (jobs = {}) =====", scale.m, scale.jobs);
        let results = run_three_systems(scale, 42 + m as u64);
        print_comparison(&results);
    }
}
