//! CI performance-regression gate over `BENCH_suite.json`.
//!
//! Diffs a freshly generated bench artifact against the committed baseline,
//! cell by cell (matched on scenario id), prints a per-cell comparison
//! table, and exits non-zero if:
//!
//! - any matched cell's `jobs_per_s` regressed by more than the allowed
//!   percentage;
//! - any baseline cell is **missing** from the fresh artifact (a silently
//!   shrunken grid would otherwise pass the gate while measuring less);
//! - any cell in either artifact carries a **non-finite** metric (NaN
//!   compares false against every threshold, so an unguarded NaN would
//!   sail through the regression check);
//! - any matched cell whose baseline carries a `peak_rss_bytes` reading
//!   (the sequential raw-scale cells of the `scale` bin) grew its peak RSS
//!   by more than the allowed percentage — or lost the reading entirely
//!   (a fresh run that stopped measuring memory must not pass the memory
//!   gate);
//! - any matched cell whose baseline carries `fleet_size` columns (every
//!   suite cell since the elastic axis landed) lost them in the fresh
//!   artifact — a run that silently dropped the membership accounting
//!   must not pass the gate.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin perf_gate -- \
//!     --baseline BENCH_suite.json --fresh /tmp/BENCH_suite.json \
//!     --max-regression-pct 40
//! ```
//!
//! Cells present only in the *fresh* artifact are reported as `new` and
//! never fail the gate (additions are reviewed through the baseline diff
//! itself). To refresh the committed baseline after an intentional change,
//! re-run the `table1` bin with the baseline's flags and commit the new
//! file (see `crates/exp/README.md`, "Performance & CI gate").

use hierdrl_exp::report::BenchReport;
use std::process::ExitCode;

struct GateArgs {
    baseline: String,
    fresh: String,
    max_regression_pct: f64,
}

impl GateArgs {
    fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = GateArgs {
            baseline: "BENCH_suite.json".to_string(),
            fresh: "/tmp/BENCH_suite.json".to_string(),
            max_regression_pct: 40.0,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut take = |what: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match arg.as_str() {
                "--baseline" => out.baseline = take("--baseline"),
                "--fresh" => out.fresh = take("--fresh"),
                "--max-regression-pct" => {
                    out.max_regression_pct = take("--max-regression-pct")
                        .parse()
                        .expect("--max-regression-pct expects a number");
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        assert!(
            out.max_regression_pct > 0.0 && out.max_regression_pct < 100.0,
            "--max-regression-pct must be in (0, 100)"
        );
        out
    }
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("perf_gate: cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args = GateArgs::parse(std::env::args().skip(1));
    let baseline = load(&args.baseline);
    let fresh = load(&args.fresh);
    let floor = 1.0 - args.max_regression_pct / 100.0;

    println!(
        "perf gate: fresh {} vs baseline {} (fail below {:.0}% of baseline jobs/s)",
        args.fresh,
        args.baseline,
        floor * 100.0
    );
    println!(
        "| {:<42} | {:>16} | {:>16} | {:>8} | {:<8} |",
        "cell", "baseline jobs/s", "fresh jobs/s", "ratio", "verdict"
    );
    println!(
        "|{:-<44}|{:-<18}|{:-<18}|{:-<10}|{:-<10}|",
        "", "", "", "", ""
    );

    let mut failures = 0usize;
    let mut matched = 0usize;
    let mut missing = 0usize;
    let mut non_finite = 0usize;
    for base_cell in &baseline.cells {
        let Some(fresh_cell) = fresh.cells.iter().find(|c| c.id == base_cell.id) else {
            missing += 1;
            println!(
                "| {:<42} | {:>16.0} | {:>16} | {:>8} | {:<8} |",
                base_cell.id, base_cell.jobs_per_s, "-", "-", "MISSING"
            );
            continue;
        };
        matched += 1;
        // Non-finite throughput in either artifact is a broken
        // measurement, not a regression: any comparison against it is
        // vacuous (NaN < floor is false), so fail it explicitly.
        if !(base_cell.jobs_per_s.is_finite()
            && fresh_cell.jobs_per_s.is_finite()
            && base_cell.wall_s.is_finite()
            && fresh_cell.wall_s.is_finite())
        {
            non_finite += 1;
            println!(
                "| {:<42} | {:>16} | {:>16} | {:>8} | {:<8} |",
                base_cell.id, base_cell.jobs_per_s, fresh_cell.jobs_per_s, "-", "NON-FIN"
            );
            continue;
        }
        let ratio = if base_cell.jobs_per_s > 0.0 {
            fresh_cell.jobs_per_s / base_cell.jobs_per_s
        } else {
            1.0
        };
        let verdict = if ratio < floor {
            failures += 1;
            "FAIL"
        } else if ratio >= 1.0 {
            "faster"
        } else {
            "ok"
        };
        println!(
            "| {:<42} | {:>16.0} | {:>16.0} | {:>7.2}x | {:<8} |",
            base_cell.id, base_cell.jobs_per_s, fresh_cell.jobs_per_s, ratio, verdict
        );
    }
    for fresh_cell in &fresh.cells {
        if !baseline.cells.iter().any(|c| c.id == fresh_cell.id) {
            if !(fresh_cell.jobs_per_s.is_finite() && fresh_cell.wall_s.is_finite()) {
                non_finite += 1;
                println!(
                    "| {:<42} | {:>16} | {:>16} | {:>8} | {:<8} |",
                    fresh_cell.id, "-", fresh_cell.jobs_per_s, "-", "NON-FIN"
                );
                continue;
            }
            println!(
                "| {:<42} | {:>16} | {:>16.0} | {:>8} | {:<8} |",
                fresh_cell.id, "-", fresh_cell.jobs_per_s, "-", "new"
            );
        }
    }

    // Memory gate: baseline cells carrying a peak-RSS reading (the
    // sequential raw-scale cells) must keep reporting one, within budget.
    // The ceiling mirrors the throughput floor: at 40% allowed regression,
    // fresh RSS may grow to at most 1.4x the baseline.
    let mut rss_failures = 0usize;
    let mut rss_matched = 0usize;
    let ceiling = 1.0 + args.max_regression_pct / 100.0;
    let rss_pairs: Vec<(&str, u64, Option<u64>)> = baseline
        .cells
        .iter()
        .filter_map(|b| {
            let base_rss = b.peak_rss_bytes?;
            let fresh_cell = fresh.cells.iter().find(|c| c.id == b.id)?;
            Some((b.id.as_str(), base_rss, fresh_cell.peak_rss_bytes))
        })
        .collect();
    if !rss_pairs.is_empty() {
        println!(
            "\nmemory gate (fail above {:.0}% of baseline peak RSS):",
            ceiling * 100.0
        );
        println!(
            "| {:<42} | {:>14} | {:>14} | {:>8} | {:<8} |",
            "cell", "baseline MiB", "fresh MiB", "ratio", "verdict"
        );
        println!(
            "|{:-<44}|{:-<16}|{:-<16}|{:-<10}|{:-<10}|",
            "", "", "", "", ""
        );
        let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
        for (id, base_rss, fresh_rss) in rss_pairs {
            rss_matched += 1;
            let Some(fresh_rss) = fresh_rss else {
                rss_failures += 1;
                println!(
                    "| {:<42} | {:>14.0} | {:>14} | {:>8} | {:<8} |",
                    id,
                    mib(base_rss),
                    "-",
                    "-",
                    "NO-RSS"
                );
                continue;
            };
            let ratio = fresh_rss as f64 / base_rss.max(1) as f64;
            let verdict = if ratio > ceiling {
                rss_failures += 1;
                "FAIL"
            } else if ratio <= 1.0 {
                "leaner"
            } else {
                "ok"
            };
            println!(
                "| {:<42} | {:>14.0} | {:>14.0} | {:>7.2}x | {:<8} |",
                id,
                mib(base_rss),
                mib(fresh_rss),
                ratio,
                verdict
            );
        }
    }

    // Fleet-size gate: baseline cells carrying the membership columns must
    // keep reporting them. There is no numeric threshold here — the
    // columns are bookkeeping, not a performance metric — but losing them
    // silently would blind the elastic axis, so their absence fails hard.
    let mut fleet_failures = 0usize;
    for base_cell in &baseline.cells {
        if base_cell.fleet_size.is_none() {
            continue;
        }
        let Some(fresh_cell) = fresh.cells.iter().find(|c| c.id == base_cell.id) else {
            continue; // already counted under `missing`
        };
        if fresh_cell.fleet_size.is_none() {
            fleet_failures += 1;
            println!(
                "fleet-size gate: {} lost its fleet_size columns",
                base_cell.id
            );
        }
    }

    assert!(
        matched > 0,
        "perf_gate: no cell ids in common between {} and {} — wrong artifacts?",
        args.baseline,
        args.fresh
    );
    let mut verdicts: Vec<String> = Vec::new();
    if failures > 0 {
        verdicts.push(format!(
            "{failures}/{matched} matched cells regressed more than {:.0}%",
            args.max_regression_pct
        ));
    }
    if missing > 0 {
        verdicts.push(format!(
            "{missing} baseline cell(s) missing from the fresh artifact"
        ));
    }
    if non_finite > 0 {
        verdicts.push(format!("{non_finite} cell(s) with non-finite metrics"));
    }
    if rss_failures > 0 {
        verdicts.push(format!(
            "{rss_failures}/{rss_matched} memory-gated cell(s) regressed peak RSS more than {:.0}% (or lost the reading)",
            args.max_regression_pct
        ));
    }
    if fleet_failures > 0 {
        verdicts.push(format!(
            "{fleet_failures} cell(s) lost their fleet_size columns"
        ));
    }
    if verdicts.is_empty() {
        println!("\nperf gate passed: {matched} matched cells within budget");
        ExitCode::SUCCESS
    } else {
        println!("\nperf gate FAILED: {}", verdicts.join("; "));
        ExitCode::FAILURE
    }
}
