//! Chaos sweep: {no-fault, crash-storm, straggler-wave, cap-window} ×
//! {round-robin, DRL-only, hierarchical}, every fault cell next to its
//! fault-free twin, with the suite's declarative expectations — job
//! conservation through crash-requeue churn, determinism pins, and the
//! graceful-degradation headline (does the hierarchical framework lose
//! less of its Eqn.-4 objective under faults than round-robin?) —
//! evaluated and printed as pass/fail rows. Exits nonzero if any
//! expectation fails, so CI can gate on the run directly.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin chaos            # paper scale
//! cargo run --release -p hierdrl-bench --bin chaos -- --quick # smoke scale
//! cargo run --release -p hierdrl-bench --bin chaos -- --faults no-fault,crash-storm
//! cargo run --release -p hierdrl-bench --bin chaos -- --merge /tmp/BENCH_suite.json
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale, FAULT_NAMES};
use hierdrl_exp::report::BenchReport;

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let names = args.fault_names(&FAULT_NAMES);
    let runner = args.runner();
    eprintln!(
        "chaos: M = {}, jobs = {}, faults = {}, threads = {}",
        scale.m,
        scale.jobs,
        names.join(","),
        runner.threads()
    );
    let suite = presets::chaos(scale, &names);
    let run = runner.run(&suite).expect("chaos suite");
    let report = run.report();

    println!(
        "{:<56} {:<16} {:>6} {:>7} {:>9} {:>9} {:>7}",
        "cell", "fault", "jobs", "requeue", "lat s/job", "J/job", "sleep%"
    );
    for cell in &report.cells {
        println!(
            "{:<56} {:<16} {:>6} {:>7} {:>9.2} {:>9.0} {:>6.1}%",
            cell.id,
            cell.fault.as_deref().unwrap_or("-"),
            cell.metrics.jobs_completed,
            cell.jobs_requeued,
            cell.metrics.mean_latency_s,
            cell.metrics.energy_per_job_j,
            100.0 * cell.metrics.sleep_fraction,
        );
    }

    println!();
    let mut failed = 0usize;
    for row in &report.expectations {
        println!(
            "[{}] {}: {}",
            if row.passed { "PASS" } else { "FAIL" },
            row.name,
            row.detail
        );
        failed += usize::from(!row.passed);
    }

    let bench = run.bench_report();
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate)",
        bench.cells_total, bench.total_wall_s, bench.jobs_per_s
    );
    match args.merge.as_deref() {
        Some(path) => {
            // Fold the chaos rows (and expectation verdicts) into an
            // existing `BENCH_suite.json`-shaped artifact in place — the
            // path CI uses to put fault cells in front of `perf_gate`
            // without disturbing the suite rows already there.
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("chaos: cannot read merge target {path}: {e}"));
            let mut merged: BenchReport = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("chaos: cannot parse merge target {path}: {e}"));
            for cell in bench.cells {
                match merged.cells.iter_mut().find(|c| c.id == cell.id) {
                    Some(existing) => *existing = cell,
                    None => merged.cells.push(cell),
                }
            }
            merged.cells_total = merged.cells.len();
            merged.expectations.extend(bench.expectations);
            std::fs::write(path, merged.to_json_pretty() + "\n").expect("write merged artifact");
            eprintln!("merged chaos cells + expectations into {path}");
        }
        None => {
            // Not `BENCH_suite.json`: that name is the committed baseline.
            let out = args.out.as_deref().unwrap_or("BENCH_chaos.json");
            std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
            eprintln!("wrote {out}");
        }
    }

    assert!(
        failed == 0,
        "{failed} suite expectation(s) failed — see the FAIL rows above"
    );
}
