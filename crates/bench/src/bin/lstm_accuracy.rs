//! Evaluates the local tier's LSTM workload predictor against the simpler
//! predictors the paper argues against (Section VI-A motivates the LSTM by
//! the failure of linear combinations of previous inter-arrival times, and
//! of schemes that one long gap can derail).
//!
//! Streams are the *per-server* arrival sequences produced by a first-fit
//! consolidation run — the same distribution the predictor sees inside the
//! hierarchical framework. Errors are one-step-ahead, log-space (inter-
//! arrival times span orders of magnitude), and also reported as the
//! fraction of predictions landing in the correct discretized RL category.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin lstm_accuracy -- --jobs 20000
//! ```

use hierdrl_core::predictor::{
    EwmaPredictor, IatPredictor, LastValuePredictor, LstmIatPredictor, MovingAveragePredictor,
    PredictorConfig,
};
use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::Scale;
use hierdrl_exp::scenario::{Topology, WorkloadSpec};
use hierdrl_rl::discretize::Discretizer;
use hierdrl_sim::cluster::{Cluster, ClusterView, PowerManager, RunLimit, TimeoutDecision};
use hierdrl_sim::job::ServerId;
use hierdrl_sim::policies::FirstFitAllocator;
use hierdrl_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Records per-server arrival times while sleeping servers immediately.
struct ArrivalRecorder {
    arrivals: Vec<Vec<f64>>,
}

impl PowerManager for ArrivalRecorder {
    fn on_idle(
        &mut self,
        _server: ServerId,
        _view: &ClusterView<'_>,
        _now: SimTime,
    ) -> TimeoutDecision {
        TimeoutDecision::SleepNow
    }

    fn on_job_arrival(&mut self, server: ServerId, _view: &ClusterView<'_>, now: SimTime) {
        self.arrivals[server.0].push(now.as_secs());
    }
}

fn score(mut p: impl IatPredictor, streams: &[Vec<f64>], bins: &Discretizer) -> (f64, f64, usize) {
    let mut log_err = 0.0;
    let mut bin_hits = 0usize;
    let mut scored = 0usize;
    for stream in streams {
        for w in stream.windows(2) {
            let iat = (w[1] - w[0]).max(1e-3);
            if let Some(pred) = p.predict() {
                log_err += (pred.max(1.0).ln() - iat.max(1.0).ln()).abs();
                if bins.bin(pred) == bins.bin(iat) {
                    bin_hits += 1;
                }
                scored += 1;
            }
            p.observe(iat);
        }
    }
    (
        log_err / scored.max(1) as f64,
        bin_hits as f64 / scored.max(1) as f64,
        scored,
    )
}

fn main() {
    let scale = SweepArgs::from_env().scale(Scale {
        m: 30,
        jobs: 20_000,
    });
    eprintln!("lstm_accuracy: M = {}, jobs = {}", scale.m, scale.jobs);

    // Produce per-server arrival streams with a consolidating allocator.
    let topology = Topology::paper(scale.m);
    let trace = WorkloadSpec::paper()
        .with_total_jobs(scale.jobs)
        .trace_spec(&topology, 70)
        .materialize()
        .expect("trace materializes");
    let mut cluster =
        Cluster::new(topology.clusters()[0].clone(), trace.into_jobs()).expect("cluster");
    let mut recorder = ArrivalRecorder {
        arrivals: vec![Vec::new(); scale.m],
    };
    cluster.run(&mut FirstFitAllocator, &mut recorder, RunLimit::unbounded());
    let streams: Vec<Vec<f64>> = recorder
        .arrivals
        .into_iter()
        .filter(|s| s.len() > 50)
        .collect();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    eprintln!("streams: {} servers, {} arrivals", streams.len(), total);

    // The RL state categories the predictions feed (paper: n predefined
    // categories).
    let bins = Discretizer::log_spaced(10.0, 3600.0, 5);

    println!(
        "{:<22} {:>16} {:>14} {:>10}",
        "predictor", "log-space MAE", "bin accuracy", "scored"
    );
    let mut rng = StdRng::seed_from_u64(3);
    let lstm = LstmIatPredictor::new(PredictorConfig::default(), &mut rng);
    let (mae, acc, n) = score(lstm, &streams, &bins);
    println!(
        "{:<22} {:>16.4} {:>14.3} {:>10}",
        "lstm (paper)", mae, acc, n
    );

    let (mae, acc, n) = score(LastValuePredictor::default(), &streams, &bins);
    println!("{:<22} {:>16.4} {:>14.3} {:>10}", "last-value", mae, acc, n);

    let (mae, acc, n) = score(MovingAveragePredictor::new(35), &streams, &bins);
    println!(
        "{:<22} {:>16.4} {:>14.3} {:>10}",
        "moving-average(35)", mae, acc, n
    );

    let (mae, acc, n) = score(EwmaPredictor::new(0.3), &streams, &bins);
    println!("{:<22} {:>16.4} {:>14.3} {:>10}", "ewma(0.3)", mae, acc, n);
}
