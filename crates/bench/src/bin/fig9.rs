//! Reproduces **Fig. 9**: accumulated job latency (a) and energy usage (b)
//! versus the number of jobs for M = 40 servers (same comparison as Fig. 8
//! at the larger cluster size; arrival volume scales with M so per-server
//! load matches the paper's setup).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin fig9            # paper scale
//! cargo run --release -p hierdrl-bench --bin fig9 -- --quick # smoke scale
//! ```

use hierdrl_bench::harness::{
    print_comparison, print_figure_series, run_three_systems, scale_from_args, Scale,
};

fn main() {
    let scale = scale_from_args(Scale::paper(40));
    eprintln!("fig9: M = {}, jobs = {}", scale.m, scale.jobs);
    let results = run_three_systems(scale, 43);
    print_comparison(&results);
    print_figure_series(&results);
}
