//! Reproduces **Fig. 9**: accumulated job latency (a) and energy usage (b)
//! versus the number of jobs for M = 40 servers (same comparison as Fig. 8
//! at the larger cluster size; arrival volume scales with M so per-server
//! load matches the paper's setup) — executed as the `fig9` suite preset.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin fig9            # paper scale
//! cargo run --release -p hierdrl-bench --bin fig9 -- --quick # smoke scale
//! ```

use hierdrl_bench::harness::{print_comparison, print_figure_series};
use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(40));
    let runner = args.runner();
    eprintln!(
        "fig9: M = {}, jobs = {}, threads = {}",
        scale.m,
        scale.jobs,
        runner.threads()
    );
    let run = runner.run(&presets::fig9(scale)).expect("fig9 suite");
    let results = run.results();
    print_comparison([results[0], results[1], results[2]]);
    print_figure_series(&results);
}
