//! Ablations of the global tier's design choices (Section V-A): the group
//! count `K` the paper varies between 2 and 4, the state enrichments this
//! reproduction adds (availability + queue-depth features), encoder
//! fine-tuning, and the first-fit guide component of the behavior policy —
//! executed as the `ablation_dqn` suite preset.
//!
//! Each variant pre-trains on the same segments (shared through the trace
//! cache) and evaluates on the same trace with the ad-hoc
//! (sleep-immediately) local behaviour, reporting the Table-I metrics plus
//! the final DNN training loss (a convergence proxy — the paper motivates
//! the autoencoder + weight sharing as convergence accelerators).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin ablation_dqn -- --jobs 10000
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale {
        m: 30,
        jobs: 10_000,
    });
    let runner = args.runner();
    eprintln!(
        "ablation_dqn: M = {}, jobs = {}, threads = {}",
        scale.m,
        scale.jobs,
        runner.threads()
    );
    let run = runner
        .run(&presets::ablation_dqn(scale))
        .expect("ablation suite");

    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>10}",
        "variant", "energy kWh", "lat/job s", "loss", "params ok"
    );
    for cell in &run.cells {
        let stats = cell.drl_stats.expect("ablation cells are DRL variants");
        println!(
            "{:<26} {:>12.2} {:>12.1} {:>10.4} {:>10}",
            cell.result.name,
            cell.result.energy_kwh(),
            cell.result.mean_latency_s(),
            stats.loss_ema,
            stats.autoencoder_trained,
        );
    }
}
