//! Ablations of the global tier's design choices (Section V-A): the group
//! count `K` the paper varies between 2 and 4, the state enrichments this
//! reproduction adds (availability + queue-depth features), encoder
//! fine-tuning, and the first-fit guide component of the behavior policy.
//!
//! Each variant pre-trains on the same segments and evaluates on the same
//! trace with the ad-hoc (sleep-immediately) local behaviour, reporting the
//! Table-I metrics plus the final DNN training loss (a convergence proxy —
//! the paper motivates the autoencoder + weight sharing as convergence
//! accelerators).
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin ablation_dqn -- --jobs 10000
//! ```

use hierdrl_bench::harness::{drl_config, scale_from_args, Scale};
use hierdrl_core::allocator::{DrlAllocator, DrlAllocatorConfig};
use hierdrl_core::runner::{pretrain_drl, run_policies};
use hierdrl_rl::policy::EpsilonSchedule;
use hierdrl_sim::cluster::RunLimit;
use hierdrl_sim::policies::SleepImmediatelyPower;

struct Variant {
    name: &'static str,
    config: DrlAllocatorConfig,
}

fn variants(seed: u64) -> Vec<Variant> {
    let base = drl_config(seed);
    let mut out = Vec::new();

    out.push(Variant {
        name: "full (K=2)",
        config: base.clone(),
    });

    for k in [3usize, 4] {
        let mut c = base.clone();
        c.state.num_groups = k;
        out.push(Variant {
            name: if k == 3 { "K=3 groups" } else { "K=4 groups" },
            config: c,
        });
    }

    let mut c = base.clone();
    c.state.include_power_state = false;
    out.push(Variant {
        name: "no availability feature",
        config: c,
    });

    let mut c = base.clone();
    c.state.include_queue_len = false;
    out.push(Variant {
        name: "no queue feature",
        config: c,
    });

    let mut c = base.clone();
    c.qnet.fine_tune_encoder = true;
    out.push(Variant {
        name: "fine-tuned encoder",
        config: c,
    });

    let mut c = base.clone();
    c.guide = EpsilonSchedule::Constant(0.0);
    out.push(Variant {
        name: "no first-fit guide",
        config: c,
    });

    out
}

fn main() {
    let scale = scale_from_args(Scale {
        m: 30,
        jobs: 10_000,
    });
    eprintln!("ablation_dqn: M = {}, jobs = {}", scale.m, scale.jobs);
    let cluster = scale.cluster();
    let trace = scale.trace(60);
    let segments = scale.pretrain_segments(5, 1.0, 60);

    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>10}",
        "variant", "energy kWh", "lat/job s", "loss", "params ok"
    );
    for v in variants(61) {
        let mut allocator = DrlAllocator::new(scale.m, 3, v.config);
        pretrain_drl(&mut allocator, &cluster, &segments).expect("pretraining");
        let r = run_policies(
            v.name,
            &cluster,
            &trace,
            &mut allocator,
            &mut SleepImmediatelyPower,
            RunLimit::unbounded(),
        )
        .expect("evaluation run");
        println!(
            "{:<26} {:>12.2} {:>12.1} {:>10.4} {:>10}",
            v.name,
            r.energy_kwh(),
            r.mean_latency_s(),
            allocator.stats().loss_ema,
            allocator.stats().autoencoder_trained,
        );
    }
}
