//! Microbenchmark pinning the batched DQN hot-path throughput: `q_values`
//! (one global-tier decision) and `train_batch` (one minibatch update) at
//! the CI smoke sizes M ∈ {10, 14}, next to the retained unbatched
//! reference implementations so the batching speedup stays measurable.
//!
//! Runs through the criterion shim's wall-clock harness as a plain binary
//! so CI can exercise the batched path on every PR:
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin qbench            # full
//! cargo run --release -p hierdrl-bench --bin qbench -- --quick # smoke
//! ```

use criterion::Criterion;
use hierdrl_core::dqn::{GroupedQNetwork, QNetworkConfig, QSample};
use hierdrl_core::state::{GlobalState, StateEncoder, StateEncoderConfig};
use hierdrl_exp::cli::SweepArgs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn layout(m: usize) -> StateEncoder {
    StateEncoder::new(m, 3, StateEncoderConfig::default())
}

fn random_state(layout: &StateEncoder, rng: &mut StdRng) -> GlobalState {
    GlobalState {
        groups: (0..layout.num_groups())
            .map(|_| {
                (0..layout.group_width())
                    .map(|_| rng.gen::<f32>())
                    .collect()
            })
            .collect(),
        job: (0..layout.job_width()).map(|_| rng.gen::<f32>()).collect(),
    }
}

fn bench_m(c: &mut Criterion, m: usize, minibatch: usize, quick: bool) {
    let mut rng = StdRng::seed_from_u64(m as u64);
    let lay = layout(m);
    let mut net = GroupedQNetwork::new(&lay, QNetworkConfig::default(), &mut rng);
    let state = random_state(&lay, &mut rng);
    let states: Vec<GlobalState> = (0..2 * minibatch)
        .map(|_| random_state(&lay, &mut rng))
        .collect();
    let state_refs: Vec<&GlobalState> = states.iter().collect();
    let samples: Vec<QSample> = (0..minibatch)
        .map(|_| QSample {
            state: random_state(&lay, &mut rng),
            action: rng.gen_range(0..m),
            target: rng.gen_range(-5.0..0.0),
        })
        .collect();

    let mut group = c.benchmark_group(&format!("qbench_m{m}"));
    group.sample_size(if quick { 10 } else { 50 });
    group.bench_function("q_values_batched", |b| {
        b.iter(|| black_box(net.q_values(black_box(&state))))
    });
    group.bench_function("q_values_unbatched_ref", |b| {
        b.iter(|| black_box(net.q_values_reference(black_box(&state))))
    });
    group.bench_function(
        &format!("target_sweep_batched_{}states", state_refs.len()),
        |b| b.iter(|| black_box(net.q_values_batch(black_box(&state_refs)))),
    );
    group.bench_function(&format!("train_batch_batched_{minibatch}"), |b| {
        b.iter(|| black_box(net.train_batch(black_box(&samples))))
    });
    group.bench_function(&format!("train_batch_unbatched_ref_{minibatch}"), |b| {
        b.iter(|| black_box(net.train_batch_reference(black_box(&samples))))
    });
    group.finish();
}

fn main() {
    let args = SweepArgs::from_env();
    let minibatch = 32;
    eprintln!(
        "qbench: batched vs unbatched-reference DQN hot path (minibatch = {minibatch}{})",
        if args.quick { ", quick" } else { "" }
    );
    let mut criterion = Criterion::default();
    for m in [10usize, 14] {
        bench_m(&mut criterion, m, minibatch, args.quick);
    }
}
