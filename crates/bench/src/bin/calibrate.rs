//! Quick calibration probe: runs the paper's three systems at a reduced
//! scale and prints the summary shape. Not a paper artifact — use it to
//! sanity-check reward weights and workload calibration before the full
//! `fig8`/`table1` runs.

use hierdrl_bench::harness::{
    pretrained_drl, pretrained_hierarchical, print_summary_header, scale_from_args, summary_row,
    Scale,
};
use hierdrl_core::hierarchical::PolicyPair;
use hierdrl_core::runner::{run_experiment, run_policies};
use hierdrl_sim::cluster::RunLimit;
use hierdrl_sim::policies::SleepImmediatelyPower;

fn main() {
    let scale = scale_from_args(Scale { m: 10, jobs: 8_000 });
    let cluster = scale.cluster();
    let trace = scale.trace(42);
    let stats = trace.stats().expect("non-empty trace");
    println!(
        "trace: {} jobs, span {:.2} h, mean duration {:.0} s, mean cpu {:.3}, offered load {:.2}",
        stats.count,
        stats.span_s / 3600.0,
        stats.mean_duration_s,
        stats.mean_cpu,
        stats.offered_cpu_load(scale.m)
    );

    print_summary_header();

    // Round-robin baseline.
    let rr = run_experiment(
        &PolicyPair::round_robin_baseline(),
        &cluster,
        &trace,
        RunLimit::unbounded(),
    )
    .expect("round-robin run");
    println!("{}", summary_row(&rr));

    // Reference envelope: hand-written consolidation and load-balancing.
    for (name, alloc) in [
        ("first-fit+sleep", hierdrl_core::hierarchical::AllocatorKind::FirstFit),
        ("least-loaded+sleep", hierdrl_core::hierarchical::AllocatorKind::LeastLoaded),
    ] {
        let pair = PolicyPair {
            name: name.into(),
            allocator: alloc,
            power: hierdrl_core::hierarchical::PowerKind::SleepImmediately,
        };
        let r = run_experiment(&pair, &cluster, &trace, RunLimit::unbounded()).expect(name);
        println!("{}", summary_row(&r));
    }

    // DRL-only: pre-trained global tier + ad-hoc sleep.
    let mut drl = pretrained_drl(scale, 7, 5);
    let drl_only = run_policies(
        "drl-only",
        &cluster,
        &trace,
        &mut drl,
        &mut SleepImmediatelyPower,
        RunLimit::unbounded(),
    )
    .expect("drl-only run");
    println!("{}", summary_row(&drl_only));
    if let Some(l) = &drl_only.latency {
        println!("  drl latency p50={:.0} p95={:.0} p99={:.0} max={:.0}", l.p50, l.p95, l.p99, l.max);
    }
    println!(
        "  drl stats: decisions={} train_steps={} loss_ema={:.5} ae_loss={:.5}",
        drl.stats().decisions, drl.stats().train_steps, drl.stats().loss_ema, drl.stats().autoencoder_loss
    );

    // Hierarchical: global + local tiers co-pre-trained.
    let (mut drl2, mut dpm) = pretrained_hierarchical(scale, 7, 5, 0.5);
    let hier = run_policies(
        "hierarchical",
        &cluster,
        &trace,
        &mut drl2,
        &mut dpm,
        RunLimit::unbounded(),
    )
    .expect("hierarchical run");
    println!("{}", summary_row(&hier));
    if let Some(l) = &hier.latency {
        println!("  hier latency p50={:.0} p95={:.0} p99={:.0} max={:.0}", l.p50, l.p95, l.p99, l.max);
    }

    println!(
        "\nshape check: RR lowest latency? {}  |  hier energy < drl-only? {}  |  drl-only energy < RR? {}",
        rr.mean_latency_s() <= drl_only.mean_latency_s() && rr.mean_latency_s() <= hier.mean_latency_s(),
        hier.energy_kwh() < drl_only.energy_kwh(),
        drl_only.energy_kwh() < rr.energy_kwh(),
    );
}
