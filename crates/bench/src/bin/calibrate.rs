//! Quick calibration probe: runs the paper's three systems plus the
//! hand-written consolidation envelope at a reduced scale and prints the
//! summary shape. Not a paper artifact — use it to sanity-check reward
//! weights and workload calibration before the full `fig8`/`table1` runs.
//! Executed as the `calibrate` suite preset.

use hierdrl_bench::harness::{print_summary_header, summary_row};
use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};
use hierdrl_trace::materialize::TraceCache;
use std::sync::Arc;

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale { m: 10, jobs: 8_000 });
    let traces = Arc::new(TraceCache::new());
    let runner = args.runner().with_trace_cache(Arc::clone(&traces));
    let suite = presets::calibrate(scale);
    let run = runner.run(&suite).expect("calibrate suite");

    // Workload shape of the shared evaluation trace (cache hit: the run
    // already materialized it).
    let scenario = &run.cells[0].scenario;
    let trace = traces
        .get(&scenario.trace_spec())
        .expect("trace materializes");
    let stats = trace.stats().expect("non-empty trace");
    println!(
        "trace: {} jobs, span {:.2} h, mean duration {:.0} s, mean cpu {:.3}, offered load {:.2}",
        stats.count,
        stats.span_s / 3600.0,
        stats.mean_duration_s,
        stats.mean_cpu,
        stats.offered_cpu_load(scale.m)
    );

    print_summary_header();
    for cell in &run.cells {
        println!("{}", summary_row(&cell.result));
    }

    for policy in ["drl-only", "hierarchical"] {
        let cell = run.find_policy(policy).expect("preset includes policy");
        if let Some(l) = &cell.result.latency {
            println!(
                "  {policy} latency p50={:.0} p95={:.0} p99={:.0} max={:.0}",
                l.p50, l.p95, l.p99, l.max
            );
        }
        if let Some(stats) = &cell.drl_stats {
            println!(
                "  {policy} drl stats: decisions={} train_steps={} loss_ema={:.5} ae_loss={:.5}",
                stats.decisions, stats.train_steps, stats.loss_ema, stats.autoencoder_loss
            );
        }
    }

    let rr = &run.find_policy("round-robin").expect("rr cell").result;
    let drl = &run.find_policy("drl-only").expect("drl cell").result;
    let hier = &run.find_policy("hierarchical").expect("hier cell").result;
    println!(
        "\nshape check: RR lowest latency? {}  |  hier energy < drl-only? {}  |  drl-only energy < RR? {}",
        rr.mean_latency_s() <= drl.mean_latency_s() && rr.mean_latency_s() <= hier.mean_latency_s(),
        hier.energy_kwh() < drl.energy_kwh(),
        drl.energy_kwh() < rr.energy_kwh(),
    );
}
