//! Reproduces **Fig. 8**: accumulated job latency (a) and energy usage (b)
//! versus the number of jobs for M = 30 servers, comparing the hierarchical
//! framework, DRL-based resource allocation only, and the round-robin
//! baseline.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin fig8            # paper scale (95k jobs)
//! cargo run --release -p hierdrl-bench --bin fig8 -- --quick # smoke scale
//! ```

use hierdrl_bench::harness::{
    print_comparison, print_figure_series, run_three_systems, scale_from_args, Scale,
};

fn main() {
    let scale = scale_from_args(Scale::paper(30));
    eprintln!("fig8: M = {}, jobs = {}", scale.m, scale.jobs);
    let results = run_three_systems(scale, 42);
    print_comparison(&results);
    print_figure_series(&results);
}
