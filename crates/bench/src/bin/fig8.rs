//! Reproduces **Fig. 8**: accumulated job latency (a) and energy usage (b)
//! versus the number of jobs for M = 30 servers, comparing the hierarchical
//! framework, DRL-based resource allocation only, and the round-robin
//! baseline — executed as the `fig8` suite preset.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin fig8            # paper scale (95k jobs)
//! cargo run --release -p hierdrl-bench --bin fig8 -- --quick # smoke scale
//! ```

use hierdrl_bench::harness::{print_comparison, print_figure_series};
use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let runner = args.runner();
    eprintln!(
        "fig8: M = {}, jobs = {}, threads = {}",
        scale.m,
        scale.jobs,
        runner.threads()
    );
    let run = runner.run(&presets::fig8(scale)).expect("fig8 suite");
    let results = run.results();
    print_comparison([results[0], results[1], results[2]]);
    print_figure_series(&results);
}
