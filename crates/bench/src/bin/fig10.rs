//! Reproduces **Fig. 10**: trade-off curves between average per-job latency
//! and average per-job energy. The proposed hierarchical framework sweeps
//! the local tier's weight `w` (Eqn. 5); the baselines pair the same DRL
//! global tier with fixed timeout values of 30, 60, and 90 seconds.
//!
//! The paper's claim: the hierarchical curve encloses the smallest area
//! against the axes — it dominates every fixed timeout.
//!
//! All ten operating points share one scenario seed, so the suite runner's
//! pre-train cache restores the *same* pre-trained global tier for every
//! point — the paper's "pre-trained once, restored per sweep point" setup —
//! while the points themselves run in parallel.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin fig10            # paper scale
//! cargo run --release -p hierdrl-bench --bin fig10 -- --quick # smoke scale
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let runner = args.runner();
    eprintln!(
        "fig10: M = {}, jobs = {}, threads = {}",
        scale.m,
        scale.jobs,
        runner.threads()
    );
    let run = runner.run(&presets::fig10(scale)).expect("fig10 suite");

    println!(
        "{:<26} {:>16} {:>16}",
        "system", "energy/job (kJ)", "latency/job (s)"
    );
    for r in run.results() {
        println!(
            "{:<26} {:>16.1} {:>16.1}",
            r.name,
            r.energy_per_job_j() / 1e3,
            r.mean_latency_s()
        );
    }
}
