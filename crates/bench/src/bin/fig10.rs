//! Reproduces **Fig. 10**: trade-off curves between average per-job latency
//! and average per-job energy. The proposed hierarchical framework sweeps
//! the local tier's weight `w` (Eqn. 5); the baselines pair the same DRL
//! global tier with fixed timeout values of 30, 60, and 90 seconds.
//!
//! The paper's claim: the hierarchical curve encloses the smallest area
//! against the axes — it dominates every fixed timeout.
//!
//! The global tier is pre-trained once and restored from a snapshot for
//! every sweep point, so all points share the same allocation policy.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin fig10            # paper scale
//! cargo run --release -p hierdrl-bench --bin fig10 -- --quick # smoke scale
//! ```

use hierdrl_bench::harness::{dpm_config, pretrained_drl, scale_from_args, Scale};
use hierdrl_core::allocator::DrlAllocator;
use hierdrl_core::dpm::RlPowerManager;
use hierdrl_core::runner::run_policies;
use hierdrl_sim::cluster::RunLimit;
use hierdrl_sim::policies::FixedTimeoutPower;

fn main() {
    let scale = scale_from_args(Scale::paper(30));
    eprintln!("fig10: M = {}, jobs = {}", scale.m, scale.jobs);
    let cluster = scale.cluster();
    let trace = scale.trace(50);

    // One shared pre-trained global tier.
    let snapshot = pretrained_drl(scale, 77, 5).snapshot();

    println!(
        "{:<26} {:>16} {:>16}",
        "system", "energy/job (kJ)", "latency/job (s)"
    );

    // Fixed-timeout baselines: DRL global tier + timeout in {30, 60, 90} s.
    for timeout in [30.0, 60.0, 90.0] {
        let mut drl = DrlAllocator::from_snapshot(snapshot.clone());
        let mut power = FixedTimeoutPower::new(timeout);
        let r = run_policies(
            &format!("drl+timeout-{timeout:.0}s"),
            &cluster,
            &trace,
            &mut drl,
            &mut power,
            RunLimit::unbounded(),
        )
        .expect("fixed-timeout run");
        println!(
            "{:<26} {:>16.1} {:>16.1}",
            r.name,
            r.energy_per_job_j() / 1e3,
            r.mean_latency_s()
        );
    }

    // The hierarchical framework across the weight sweep: each point is one
    // operating point of the trade-off curve.
    for w in [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95] {
        let mut drl = DrlAllocator::from_snapshot(snapshot.clone());
        let mut dpm = RlPowerManager::new(scale.m, dpm_config(w, 3));
        let r = run_policies(
            &format!("hierarchical w={w}"),
            &cluster,
            &trace,
            &mut drl,
            &mut dpm,
            RunLimit::unbounded(),
        )
        .expect("hierarchical run");
        println!(
            "{:<26} {:>16.1} {:>16.1}",
            r.name,
            r.energy_per_job_j() / 1e3,
            r.mean_latency_s()
        );
    }
}
