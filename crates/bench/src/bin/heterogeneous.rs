//! Heterogeneity sweep: {homogeneous, big/little, extreme-skew} fleets ×
//! {round-robin, DRL-only, hierarchical}, at constant server count and
//! per-server load. The paper assumes homogeneous machines "without loss
//! of generality"; this grid measures what that assumption hides — the
//! capacity-aware DRL tiers (per-slot capacity features, capacity-scaled
//! power model, per-class shared Q-tables) against the capacity-blind
//! round-robin baseline on asymmetric fleets. Per-cell timing lands in
//! `BENCH_heterogeneous.json` by default.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin heterogeneous            # paper scale
//! cargo run --release -p hierdrl-bench --bin heterogeneous -- --quick # smoke scale
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale};

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let runner = args.runner();
    eprintln!(
        "heterogeneous: M = {}, jobs = {}, threads = {}",
        scale.m,
        scale.jobs,
        runner.threads()
    );
    let suite = presets::heterogeneous(scale);
    let run = runner.run(&suite).expect("heterogeneous suite");
    let report = run.report();

    println!(
        "{:<52} {:>8} {:>6} {:>10} {:>9} {:>9} {:>7}",
        "cell", "capacity", "skew", "energy kWh", "lat s/job", "J/job", "sleep%"
    );
    for cell in &report.cells {
        println!(
            "{:<52} {:>8.1} {:>6.1} {:>10.3} {:>9.2} {:>9.0} {:>6.1}%",
            cell.id,
            cell.capacity_total,
            cell.capacity_skew,
            cell.metrics.energy_kwh,
            cell.metrics.mean_latency_s,
            cell.metrics.energy_per_job_j,
            100.0 * cell.metrics.sleep_fraction
        );
    }

    // The headline the grid exists for: on each skewed fleet, does the
    // capacity-aware DRL stack beat round-robin on power x latency?
    for topo in report
        .cells
        .iter()
        .map(|c| c.topology.clone())
        .collect::<std::collections::BTreeSet<_>>()
    {
        let find = |policy: &str| {
            report
                .cells
                .iter()
                .find(|c| c.topology == topo && c.policy == policy)
        };
        if let (Some(rr), Some(drl)) = (find("round-robin"), find("drl-only")) {
            let rr_pl = rr.metrics.energy_per_job_j * rr.metrics.mean_latency_s;
            let drl_pl = drl.metrics.energy_per_job_j * drl.metrics.mean_latency_s;
            eprintln!(
                "{topo}: power x latency (J·s/job²) round-robin {rr_pl:.0} vs drl-only {drl_pl:.0} ({})",
                if drl_pl < rr_pl { "DRL wins" } else { "round-robin wins" }
            );
        }
    }

    let bench = run.bench_report();
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate)",
        bench.cells_total, bench.total_wall_s, bench.jobs_per_s
    );
    // Not `BENCH_suite.json`: that name is the committed table1 baseline.
    let out = args.out.as_deref().unwrap_or("BENCH_heterogeneous.json");
    std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
    eprintln!("wrote {out}");
}
