//! Elastic-fleet sweep: {fixed, threshold, learned} × {round-robin,
//! DRL-only, hierarchical}, every autoscaled cell next to its fixed-fleet
//! twin, with the suite's declarative expectations — job conservation
//! through join/leave churn, determinism pins, and the autoscale-economics
//! headline (does scaling the fleet with the hierarchical learner beat
//! leaving the whole fleet to DPM sleep on energy-per-job, at equal
//! latency?) — evaluated and printed as pass/fail rows. Exits nonzero if
//! any expectation fails, so CI can gate on the run directly.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin elastic            # paper scale
//! cargo run --release -p hierdrl-bench --bin elastic -- --quick # smoke scale
//! cargo run --release -p hierdrl-bench --bin elastic -- --elastics fixed,threshold
//! cargo run --release -p hierdrl-bench --bin elastic -- --merge /tmp/BENCH_suite.json
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::presets::{self, Scale, ELASTIC_NAMES};
use hierdrl_exp::report::BenchReport;

fn main() {
    let args = SweepArgs::from_env();
    let scale = args.scale(Scale::paper(30));
    let names = args.elastic_names(&ELASTIC_NAMES);
    let runner = args.runner();
    eprintln!(
        "elastic: M = {}, jobs = {}, autoscalers = {}, threads = {}",
        scale.m,
        scale.jobs,
        names.join(","),
        runner.threads()
    );
    let suite = presets::elastic(scale, &names);
    let run = runner.run(&suite).expect("elastic suite");
    let report = run.report();

    println!(
        "{:<56} {:<10} {:>13} {:>6} {:>9} {:>9} {:>7}",
        "cell", "elastic", "fleet min/max", "jobs", "lat s/job", "J/job", "sleep%"
    );
    for cell in &report.cells {
        let fleet = cell
            .fleet_size
            .as_ref()
            .expect("every fresh cell reports its fleet-size columns");
        println!(
            "{:<56} {:<10} {:>5}/{:<3} ~{:<4.1} {:>6} {:>9.2} {:>9.0} {:>6.1}%",
            cell.id,
            cell.elastic.as_deref().unwrap_or("-"),
            fleet.min,
            fleet.max,
            fleet.mean,
            cell.metrics.jobs_completed,
            cell.metrics.mean_latency_s,
            cell.metrics.energy_per_job_j,
            100.0 * cell.metrics.sleep_fraction,
        );
    }

    println!();
    let mut failed = 0usize;
    for row in &report.expectations {
        println!(
            "[{}] {}: {}",
            if row.passed { "PASS" } else { "FAIL" },
            row.name,
            row.detail
        );
        failed += usize::from(!row.passed);
    }

    let bench = run.bench_report();
    assert!(
        bench.cells.iter().all(|c| c.fleet_size.is_some()),
        "elastic bench rows must carry fleet_size columns"
    );
    eprintln!(
        "\nsuite: {} cells in {:.2}s wall ({:.0} jobs/s aggregate)",
        bench.cells_total, bench.total_wall_s, bench.jobs_per_s
    );
    match args.merge.as_deref() {
        Some(path) => {
            // Fold the elastic rows (and expectation verdicts) into an
            // existing `BENCH_suite.json`-shaped artifact in place — the
            // path CI uses to put autoscaled cells in front of `perf_gate`
            // without disturbing the suite rows already there.
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("elastic: cannot read merge target {path}: {e}"));
            let mut merged: BenchReport = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("elastic: cannot parse merge target {path}: {e}"));
            for cell in bench.cells {
                match merged.cells.iter_mut().find(|c| c.id == cell.id) {
                    Some(existing) => *existing = cell,
                    None => merged.cells.push(cell),
                }
            }
            merged.cells_total = merged.cells.len();
            merged.expectations.extend(bench.expectations);
            std::fs::write(path, merged.to_json_pretty() + "\n").expect("write merged artifact");
            eprintln!("merged elastic cells + expectations into {path}");
        }
        None => {
            // Not `BENCH_suite.json`: that name is the committed baseline.
            let out = args.out.as_deref().unwrap_or("BENCH_elastic.json");
            std::fs::write(out, bench.to_json_pretty() + "\n").expect("write bench artifact");
            eprintln!("wrote {out}");
        }
    }

    assert!(
        failed == 0,
        "{failed} suite expectation(s) failed — see the FAIL rows above"
    );
}
