//! The raw-scale regime benchmark: streams 10⁶ jobs through a 10⁵-server
//! fleet in bounded memory and reports jobs/s plus peak RSS per cell —
//! the throughput/memory gate next to the paper-fidelity suites.
//!
//! Cells run *sequentially* (the peak-RSS reading is a process-wide
//! high-water mark; see `hierdrl_exp::scale`), under O(1)-per-decision
//! policies only. With `--merge` the rows fold into an existing
//! `BENCH_suite.json`-shaped artifact in place, which is how CI feeds
//! them to `perf_gate`; without it a standalone artifact is written.
//!
//! ```sh
//! cargo run --release -p hierdrl-bench --bin scale                 # 100k/1M
//! cargo run --release -p hierdrl-bench --bin scale -- --quick      # CI smoke
//! cargo run --release -p hierdrl-bench --bin scale -- --merge /tmp/BENCH_suite.json
//! ```

use hierdrl_exp::cli::SweepArgs;
use hierdrl_exp::report::BenchReport;
use hierdrl_exp::scale::{self, ScaleSpec};

fn main() {
    let args = SweepArgs::from_env();
    // Not `args.scale(..)`: its `--quick` caps (M = 10, 5k jobs) are sized
    // for learned-policy suites; the scale regime's smoke point stays two
    // orders of magnitude larger.
    let mut spec = if args.quick {
        ScaleSpec::quick()
    } else {
        ScaleSpec::raw()
    };
    if let Some(m) = args.m {
        spec.m = m;
    }
    if let Some(jobs) = args.jobs {
        spec.jobs = jobs;
    }
    eprintln!(
        "scale: M = {}, jobs = {} (streamed arrivals, lazy accounting, no retention)",
        spec.m, spec.jobs
    );

    let runs = scale::run_scale(&spec).expect("scale regime");
    println!(
        "| {:<42} | {:>9} | {:>8} | {:>12} | {:>12} |",
        "cell", "jobs", "wall (s)", "jobs/s", "peak RSS"
    );
    println!(
        "|{:-<44}|{:-<11}|{:-<10}|{:-<14}|{:-<14}|",
        "", "", "", "", ""
    );
    for run in &runs {
        let rss = match run.peak_rss_bytes {
            Some(bytes) => format!("{:.0} MiB", bytes as f64 / (1024.0 * 1024.0)),
            None => "-".to_string(),
        };
        println!(
            "| {:<42} | {:>9} | {:>8.2} | {:>12.0} | {:>12} |",
            run.id, run.result.outcome.totals.jobs_completed, run.wall_s, run.jobs_per_s, rss
        );
    }

    match args.merge.as_deref() {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("scale: cannot read merge target {path}: {e}"));
            let mut report: BenchReport = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("scale: cannot parse merge target {path}: {e}"));
            scale::merge_into_report(&mut report, &runs);
            std::fs::write(path, report.to_json_pretty() + "\n").expect("write merged artifact");
            eprintln!("merged {} scale cell(s) into {path}", runs.len());
        }
        None => {
            let report = scale::scale_bench_report(&runs);
            let out = args.out.as_deref().unwrap_or("BENCH_scale.json");
            std::fs::write(out, report.to_json_pretty() + "\n").expect("write bench artifact");
            eprintln!("wrote {out}");
        }
    }
}
