//! Presentation helpers for the benchmark binaries.
//!
//! All experiment *orchestration* (scales, grids, pre-training, execution)
//! lives in `hierdrl-exp`; this module only formats the resulting
//! [`ExperimentResult`]s into the paper's tables and figure series.

use hierdrl_core::runner::ExperimentResult;

/// The process's peak resident-set size in bytes (Linux `VmHWM`), `None`
/// where unavailable. Delegates to
/// [`hierdrl_exp::report::peak_rss_bytes`], which owns the parsing, so the
/// bench binaries and the report layer can never disagree on the reading.
pub fn peak_rss_bytes() -> Option<u64> {
    hierdrl_exp::report::peak_rss_bytes()
}

/// Formats a row of the Table I-style summary.
pub fn summary_row(result: &ExperimentResult) -> String {
    format!(
        "| {:<22} | {:>12.2} | {:>14.2} | {:>10.2} | {:>12.1} | {:>8.3} | {:>6} |",
        result.name,
        result.energy_kwh(),
        result.latency_mega_s(),
        result.average_power_w(),
        result.mean_latency_s(),
        result.fleet.sleep_fraction,
        result.fleet.total_wake_transitions,
    )
}

/// Prints the Table I-style header.
pub fn print_summary_header() {
    println!(
        "| {:<22} | {:>12} | {:>14} | {:>10} | {:>12} | {:>8} | {:>6} |",
        "system", "energy (kWh)", "latency (1e6s)", "power (W)", "lat/job (s)", "sleep", "wakes"
    );
    println!(
        "|{:-<24}|{:-<14}|{:-<16}|{:-<12}|{:-<14}|{:-<10}|{:-<8}|",
        "", "", "", "", "", "", ""
    );
}

/// Percentage saving of `ours` relative to `baseline` (positive = ours is
/// lower/better).
pub fn pct_saving(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Prints the accumulated-latency and energy-vs-jobs curves of Figs. 8/9 as
/// aligned CSV (one row per sample stride).
pub fn print_figure_series(results: &[&ExperimentResult]) {
    println!("\n# accumulated job latency (1e6 s) and energy (kWh) vs completed jobs");
    print!("jobs");
    for r in results {
        print!(",{}_latency_1e6s,{}_energy_kwh", r.name, r.name);
    }
    println!();
    let max_len = results.iter().map(|r| r.samples().len()).max().unwrap_or(0);
    for i in 0..max_len {
        let jobs = results
            .iter()
            .filter_map(|r| r.samples().get(i))
            .map(|s| s.jobs_completed)
            .next()
            .unwrap_or(0);
        print!("{jobs}");
        for r in results {
            match r.samples().get(i) {
                Some(s) => print!(
                    ",{:.3},{:.3}",
                    s.total_latency_s / 1e6,
                    s.energy_joules / 3.6e6
                ),
                None => print!(",,"),
            }
        }
        println!();
    }
}

/// Prints the Table I-style comparison plus the paper's headline
/// percentage-saving claims for a `[round-robin, drl-only, hierarchical]`
/// result triple.
pub fn print_comparison(results: [&ExperimentResult; 3]) {
    let [rr, drl, hier] = results;
    print_summary_header();
    for r in results {
        println!("{}", summary_row(r));
    }
    println!();
    println!(
        "hierarchical vs round-robin : {:+.2}% energy, {:+.2}% power, {:+.2}% latency",
        -pct_saving(rr.energy_kwh(), hier.energy_kwh()),
        -pct_saving(rr.average_power_w(), hier.average_power_w()),
        -pct_saving(rr.latency_mega_s(), hier.latency_mega_s()),
    );
    println!(
        "hierarchical vs drl-only    : {:+.2}% energy, {:+.2}% power, {:+.2}% latency",
        -pct_saving(drl.energy_kwh(), hier.energy_kwh()),
        -pct_saving(drl.average_power_w(), hier.average_power_w()),
        -pct_saving(drl.latency_mega_s(), hier.latency_mega_s()),
    );
    println!(
        "drl-only vs round-robin     : {:+.2}% energy, {:+.2}% power, {:+.2}% latency",
        -pct_saving(rr.energy_kwh(), drl.energy_kwh()),
        -pct_saving(rr.average_power_w(), drl.average_power_w()),
        -pct_saving(rr.latency_mega_s(), drl.latency_mega_s()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_saving_signs() {
        assert!((pct_saving(100.0, 50.0) - 50.0).abs() < 1e-12);
        assert!(pct_saving(100.0, 120.0) < 0.0);
        assert_eq!(pct_saving(0.0, 5.0), 0.0);
    }
}
