//! Shared experiment plumbing for the benchmark binaries.

use hierdrl_core::allocator::{DrlAllocator, DrlAllocatorConfig};
use hierdrl_core::dpm::RlPowerConfig;
use hierdrl_core::dpm::RlPowerManager;
use hierdrl_core::runner::{pretrain_drl, pretrain_pair, ExperimentResult};
use hierdrl_sim::config::ClusterConfig;
use hierdrl_trace::generator::{TraceGenerator, WorkloadConfig};
use hierdrl_trace::trace::Trace;

/// Jobs per week the paper's segments carry for a 30-machine cluster.
pub const PAPER_JOBS_PER_WEEK_M30: f64 = 95_000.0;
/// The job count at which Table I reports its metrics.
pub const PAPER_REPORT_JOBS: u64 = 95_000;

/// Scale of an experiment: cluster size and job count.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of servers `M`.
    pub m: usize,
    /// Jobs to simulate.
    pub jobs: u64,
}

impl Scale {
    /// The paper's setup for a given `M` (load per server held constant).
    pub fn paper(m: usize) -> Self {
        Self {
            m,
            jobs: PAPER_REPORT_JOBS,
        }
    }

    /// Weekly arrival volume scaled so per-server load matches the paper's
    /// 30-machine setup.
    pub fn jobs_per_week(&self) -> f64 {
        PAPER_JOBS_PER_WEEK_M30 * self.m as f64 / 30.0
    }

    /// Generates the evaluation trace for this scale.
    pub fn trace(&self, seed: u64) -> Trace {
        let config = WorkloadConfig::google_like(seed, self.jobs_per_week());
        TraceGenerator::new(config)
            .expect("valid workload config")
            .generate_n(self.jobs as usize)
    }

    /// Generates `count` pre-training segments (Section VII-A uses five
    /// clusters' traces), each `fraction` of the evaluation length.
    pub fn pretrain_segments(&self, count: usize, fraction: f64, seed0: u64) -> Vec<Trace> {
        let n = ((self.jobs as f64 * fraction) as usize).max(200);
        (0..count)
            .map(|i| {
                let config =
                    WorkloadConfig::google_like(seed0 + 1000 + i as u64, self.jobs_per_week());
                TraceGenerator::new(config)
                    .expect("valid workload config")
                    .generate_n(n)
            })
            .collect()
    }

    /// The paper's cluster configuration at this scale.
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig::paper(self.m)
    }
}

/// Parses `--m <M>` and `--jobs <N>` (and `--quick`) from argv, starting
/// from `default_scale`.
pub fn scale_from_args(default_scale: Scale) -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = default_scale;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--m" if i + 1 < args.len() => {
                scale.m = args[i + 1].parse().expect("--m expects an integer");
                i += 2;
            }
            "--jobs" if i + 1 < args.len() => {
                scale.jobs = args[i + 1].parse().expect("--jobs expects an integer");
                i += 2;
            }
            "--quick" => {
                scale.m = scale.m.min(10);
                scale.jobs = scale.jobs.min(5_000);
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    scale
}

/// The DRL allocator configuration used by all benches.
pub fn drl_config(seed: u64) -> DrlAllocatorConfig {
    DrlAllocatorConfig {
        seed,
        ..Default::default()
    }
}

/// The RL local-tier configuration used by all benches, parameterized by
/// the power/latency weight `w` of Eqn. 5.
pub fn dpm_config(weight: f64, seed: u64) -> RlPowerConfig {
    RlPowerConfig {
        weight,
        seed,
        ..Default::default()
    }
}

/// Builds and offline-pre-trains a DRL allocator exactly as Section VII-A
/// describes: epsilon-greedy rollouts over `segments` workload segments.
pub fn pretrained_drl(scale: Scale, seed: u64, segments: usize) -> DrlAllocator {
    let mut allocator = DrlAllocator::new(scale.m, 3, drl_config(seed));
    let segs = scale.pretrain_segments(segments, 0.15, seed);
    pretrain_drl(&mut allocator, &scale.cluster(), &segs).expect("pretraining rollouts run");
    allocator
}

/// Builds and co-pre-trains the hierarchical pair (DRL global tier + RL
/// local tier) on shared rollout segments.
pub fn pretrained_hierarchical(
    scale: Scale,
    seed: u64,
    segments: usize,
    weight: f64,
) -> (DrlAllocator, RlPowerManager) {
    let mut allocator = DrlAllocator::new(scale.m, 3, drl_config(seed));
    let mut dpm = RlPowerManager::new(scale.m, dpm_config(weight, seed ^ 0x5eed));
    let segs = scale.pretrain_segments(segments, 0.15, seed);
    pretrain_pair(&mut allocator, &mut dpm, &scale.cluster(), &segs)
        .expect("pretraining rollouts run");
    (allocator, dpm)
}

/// Formats a row of the Table I-style summary.
pub fn summary_row(result: &ExperimentResult) -> String {
    format!(
        "| {:<22} | {:>12.2} | {:>14.2} | {:>10.2} | {:>12.1} | {:>8.3} | {:>6} |",
        result.name,
        result.energy_kwh(),
        result.latency_mega_s(),
        result.average_power_w(),
        result.mean_latency_s(),
        result.fleet.sleep_fraction,
        result.fleet.total_wake_transitions,
    )
}

/// Prints the Table I-style header.
pub fn print_summary_header() {
    println!(
        "| {:<22} | {:>12} | {:>14} | {:>10} | {:>12} | {:>8} | {:>6} |",
        "system", "energy (kWh)", "latency (1e6s)", "power (W)", "lat/job (s)", "sleep", "wakes"
    );
    println!(
        "|{:-<24}|{:-<14}|{:-<16}|{:-<12}|{:-<14}|{:-<10}|{:-<8}|",
        "", "", "", "", "", "", ""
    );
}

/// Percentage saving of `ours` relative to `baseline` (positive = ours is
/// lower/better).
pub fn pct_saving(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Runs the paper's three systems (round-robin, DRL-only, hierarchical) on
/// one evaluation trace at the given scale, pre-training the learners
/// offline first. Returns results in that order.
pub fn run_three_systems(scale: Scale, seed: u64) -> [ExperimentResult; 3] {
    use hierdrl_core::hierarchical::PolicyPair;
    use hierdrl_core::runner::{run_experiment, run_policies};
    use hierdrl_sim::cluster::RunLimit;
    use hierdrl_sim::policies::SleepImmediatelyPower;

    let cluster = scale.cluster();
    let trace = scale.trace(seed);

    let rr = run_experiment(
        &PolicyPair::round_robin_baseline(),
        &cluster,
        &trace,
        RunLimit::unbounded(),
    )
    .expect("round-robin run");

    let mut drl = pretrained_drl(scale, seed.wrapping_add(7), 5);
    let drl_only = run_policies(
        "drl-only",
        &cluster,
        &trace,
        &mut drl,
        &mut SleepImmediatelyPower,
        RunLimit::unbounded(),
    )
    .expect("drl-only run");

    let (mut drl2, mut dpm) = pretrained_hierarchical(scale, seed.wrapping_add(7), 5, 0.5);
    let hier = run_policies(
        "hierarchical",
        &cluster,
        &trace,
        &mut drl2,
        &mut dpm,
        RunLimit::unbounded(),
    )
    .expect("hierarchical run");

    [rr, drl_only, hier]
}

/// Prints the accumulated-latency and energy-vs-jobs curves of Figs. 8/9 as
/// aligned CSV (one row per sample stride).
pub fn print_figure_series(results: &[ExperimentResult]) {
    println!("\n# accumulated job latency (1e6 s) and energy (kWh) vs completed jobs");
    print!("jobs");
    for r in results {
        print!(",{}_latency_1e6s,{}_energy_kwh", r.name, r.name);
    }
    println!();
    let max_len = results.iter().map(|r| r.samples().len()).max().unwrap_or(0);
    for i in 0..max_len {
        let jobs = results
            .iter()
            .filter_map(|r| r.samples().get(i))
            .map(|s| s.jobs_completed)
            .next()
            .unwrap_or(0);
        print!("{jobs}");
        for r in results {
            match r.samples().get(i) {
                Some(s) => print!(
                    ",{:.3},{:.3}",
                    s.total_latency_s / 1e6,
                    s.energy_joules / 3.6e6
                ),
                None => print!(",,"),
            }
        }
        println!();
    }
}

/// Prints the Table I-style comparison plus the paper's headline
/// percentage-saving claims for a three-system result set.
pub fn print_comparison(results: &[ExperimentResult; 3]) {
    let [rr, drl, hier] = results;
    print_summary_header();
    for r in results.iter() {
        println!("{}", summary_row(r));
    }
    println!();
    println!(
        "hierarchical vs round-robin : {:+.2}% energy, {:+.2}% power, {:+.2}% latency",
        -pct_saving(rr.energy_kwh(), hier.energy_kwh()),
        -pct_saving(rr.average_power_w(), hier.average_power_w()),
        -pct_saving(rr.latency_mega_s(), hier.latency_mega_s()),
    );
    println!(
        "hierarchical vs drl-only    : {:+.2}% energy, {:+.2}% power, {:+.2}% latency",
        -pct_saving(drl.energy_kwh(), hier.energy_kwh()),
        -pct_saving(drl.average_power_w(), hier.average_power_w()),
        -pct_saving(drl.latency_mega_s(), hier.latency_mega_s()),
    );
    println!(
        "drl-only vs round-robin     : {:+.2}% energy, {:+.2}% power, {:+.2}% latency",
        -pct_saving(rr.energy_kwh(), drl.energy_kwh()),
        -pct_saving(rr.average_power_w(), drl.average_power_w()),
        -pct_saving(rr.latency_mega_s(), drl.latency_mega_s()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_vii() {
        let s = Scale::paper(30);
        assert_eq!(s.m, 30);
        assert_eq!(s.jobs, 95_000);
        assert!((s.jobs_per_week() - 95_000.0).abs() < 1e-9);
        let s40 = Scale::paper(40);
        assert!((s40.jobs_per_week() - 95_000.0 * 40.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn trace_generation_honors_job_count() {
        let s = Scale { m: 5, jobs: 300 };
        assert_eq!(s.trace(1).len(), 300);
    }

    #[test]
    fn pct_saving_signs() {
        assert!((pct_saving(100.0, 50.0) - 50.0).abs() < 1e-12);
        assert!(pct_saving(100.0, 120.0) < 0.0);
        assert_eq!(pct_saving(0.0, 5.0), 0.0);
    }

    #[test]
    fn pretrain_segments_have_requested_size() {
        let s = Scale { m: 5, jobs: 1000 };
        let segs = s.pretrain_segments(3, 0.2, 9);
        assert_eq!(segs.len(), 3);
        for seg in &segs {
            assert_eq!(seg.len(), 200);
        }
    }
}
