//! # hierdrl-rl
//!
//! Reinforcement-learning primitives shared by both tiers of the
//! hierarchical framework:
//!
//! - [`smdp`] — the continuous-time Q-learning update for semi-Markov
//!   decision processes (the paper's Eqn. 2), used by the global DRL tier
//!   (with a DNN Q-function) and the local power manager (with a table);
//! - [`qtable`] — tabular `Q(s, a)` over ordered states (key-ordered
//!   storage, so snapshots are insertion-order independent);
//! - [`policy`] — epsilon-greedy exploration with decay schedules;
//! - [`replay`] — bounded experience memory with uniform sampling
//!   (Algorithm 1's memory `D`);
//! - [`discretize`] — binning of continuous observations (e.g. predicted
//!   inter-arrival times) into RL state categories.
//!
//! # Examples
//!
//! ```
//! use hierdrl_rl::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut q: QTable<u32> = QTable::new(2, 0.0);
//! let params = SmdpParams::new(0.2, 0.5);
//! let mut policy = EpsilonGreedy::constant(0.1);
//!
//! // One decision step: select, observe sojourn + reward rate, update.
//! let state = 0u32;
//! let action = policy.select(&q.q_row(&state), &mut rng);
//! q.update_smdp(&params, &state, action, -3.0, 12.5, &1u32);
//! ```

#![forbid(unsafe_code)]

pub mod discretize;
pub mod policy;
pub mod qtable;
pub mod replay;
pub mod smdp;
pub mod ucb;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::discretize::Discretizer;
    pub use crate::policy::{EpsilonGreedy, EpsilonSchedule};
    pub use crate::qtable::QTable;
    pub use crate::replay::ReplayMemory;
    pub use crate::smdp::{discount, reward_weight, smdp_target, smdp_update, SmdpParams};
    pub use crate::ucb::Ucb1;
}
