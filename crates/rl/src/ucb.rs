//! Upper-confidence-bound (UCB1) action selection.
//!
//! An alternative to epsilon-greedy for the local tier's power manager:
//! with only a few hundred decision epochs per server, undirected random
//! exploration is wasteful, while UCB1's optimism bonus focuses trials on
//! actions whose value is still uncertain and vanishes as counts grow.

use serde::{Deserialize, Serialize};

/// UCB1 selector over a fixed action set, maintaining per-(state, action)
/// visit counts externally supplied by the caller.
///
/// The selection rule is `argmax_a Q(s, a) + c * sqrt(ln N(s) / n(s, a))`,
/// with unvisited actions tried first (infinite bonus).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ucb1 {
    /// Exploration coefficient `c` (scales the confidence radius). Should
    /// be on the order of the Q-value spread.
    pub exploration: f64,
}

impl Ucb1 {
    /// Creates a selector with the given exploration coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `exploration` is negative or non-finite.
    pub fn new(exploration: f64) -> Self {
        assert!(
            exploration.is_finite() && exploration >= 0.0,
            "exploration coefficient must be finite and non-negative"
        );
        Self { exploration }
    }

    /// Selects an action from per-action values and visit counts.
    /// Unvisited actions win immediately (lowest index first); otherwise
    /// the argmax of value plus confidence bonus (lowest index on ties).
    ///
    /// # Panics
    ///
    /// Panics if `q_values` and `visits` differ in length or are empty.
    pub fn select(&self, q_values: &[f64], visits: &[u64]) -> usize {
        assert_eq!(
            q_values.len(),
            visits.len(),
            "q_values and visits must align"
        );
        assert!(!q_values.is_empty(), "cannot select from zero actions");
        if let Some(i) = visits.iter().position(|&n| n == 0) {
            return i;
        }
        let total: u64 = visits.iter().sum();
        let ln_total = (total as f64).ln();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, (&q, &n)) in q_values.iter().zip(visits).enumerate() {
            let bonus = self.exploration * (ln_total / n as f64).sqrt();
            let score = q + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unvisited_actions_are_tried_first() {
        let ucb = Ucb1::new(1.0);
        assert_eq!(ucb.select(&[0.0, 0.0, 0.0], &[3, 0, 5]), 1);
        assert_eq!(ucb.select(&[-10.0, 0.0], &[0, 7]), 0);
    }

    #[test]
    fn exploitation_dominates_once_counts_grow() {
        let ucb = Ucb1::new(0.5);
        // Action 1 clearly best, all well-visited.
        assert_eq!(ucb.select(&[-3.0, -1.0, -2.0], &[1000, 1000, 1000]), 1);
    }

    #[test]
    fn under_visited_actions_get_a_bonus() {
        let ucb = Ucb1::new(2.0);
        // Action 0 slightly better but heavily visited; action 1 nearly as
        // good with one visit: the bonus flips the choice.
        assert_eq!(ucb.select(&[-1.0, -1.2], &[10_000, 1]), 1);
    }

    #[test]
    fn zero_exploration_is_pure_greedy() {
        let ucb = Ucb1::new(0.0);
        assert_eq!(ucb.select(&[-2.0, -1.0, -3.0], &[1, 1, 1]), 1);
    }

    #[test]
    fn bonus_shrinks_with_visits() {
        let ucb = Ucb1::new(1.0);
        // Equal values: the less-visited action wins.
        assert_eq!(ucb.select(&[-1.0, -1.0], &[100, 5]), 1);
        // After equalizing counts, ties break low.
        assert_eq!(ucb.select(&[-1.0, -1.0], &[100, 100]), 0);
    }

    #[test]
    #[should_panic(expected = "zero actions")]
    fn empty_actions_panic() {
        let _ = Ucb1::new(1.0).select(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = Ucb1::new(1.0).select(&[0.0], &[1, 2]);
    }

    #[test]
    fn serde_round_trip() {
        let u = Ucb1::new(1.5);
        let json = serde_json::to_string(&u).unwrap();
        assert_eq!(u, serde_json::from_str(&json).unwrap());
    }
}
