//! Continuous-time Q-learning for semi-Markov decision processes (SMDP).
//!
//! Implements the paper's value-updating rule (Eqn. 2):
//!
//! ```text
//! Q(s_k, a_k) += alpha * ( (1 - e^{-beta*tau}) / beta * r(s_k, a_k)
//!                          + e^{-beta*tau} * max_a' Q(s_{k+1}, a')
//!                          - Q(s_k, a_k) )
//! ```
//!
//! where `tau` is the sojourn time in `s_k` and `r` is the (time-average)
//! reward *rate* over the sojourn. Both the global DRL tier and the local
//! power manager use this rule; only the Q-function representation differs
//! (DNN vs. table).

use serde::{Deserialize, Serialize};

/// Parameters of the SMDP Q-learning rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmdpParams {
    /// Learning rate `alpha` in `(0, 1]`.
    pub alpha: f64,
    /// Continuous-time discount rate `beta > 0` (the paper uses 0.5).
    pub beta: f64,
}

impl SmdpParams {
    /// Creates validated parameters.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `beta <= 0`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        assert!(
            beta > 0.0 && beta.is_finite(),
            "beta must be positive, got {beta}"
        );
        Self { alpha, beta }
    }

    /// The paper's global-tier discount with a typical learning rate.
    pub fn paper() -> Self {
        Self::new(0.1, 0.5)
    }
}

/// Discount factor `e^{-beta * tau}` for a sojourn of `tau` seconds.
pub fn discount(beta: f64, tau: f64) -> f64 {
    (-beta * tau).exp()
}

/// Effective reward weight `(1 - e^{-beta*tau}) / beta`.
///
/// Numerically stable for small `beta * tau` (falls back to the Taylor
/// limit `tau`).
pub fn reward_weight(beta: f64, tau: f64) -> f64 {
    let x = beta * tau;
    if x < 1e-8 {
        tau
    } else {
        (1.0 - (-x).exp()) / beta
    }
}

/// The SMDP Q-learning target value for one observed transition.
///
/// `reward_rate` is the time-average reward rate over the sojourn,
/// `sojourn` the time spent in the state (seconds), and `max_next_q` the
/// best next-state value estimate.
pub fn smdp_target(params: &SmdpParams, reward_rate: f64, sojourn: f64, max_next_q: f64) -> f64 {
    debug_assert!(
        sojourn >= 0.0,
        "sojourn must be non-negative, got {sojourn}"
    );
    reward_weight(params.beta, sojourn) * reward_rate + discount(params.beta, sojourn) * max_next_q
}

/// One SMDP Q-learning update: returns the new `Q(s, a)` estimate.
pub fn smdp_update(
    params: &SmdpParams,
    q: f64,
    reward_rate: f64,
    sojourn: f64,
    max_next_q: f64,
) -> f64 {
    q + params.alpha * (smdp_target(params, reward_rate, sojourn, max_next_q) - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discount_decays_with_sojourn() {
        assert!((discount(0.5, 0.0) - 1.0).abs() < 1e-12);
        assert!(discount(0.5, 10.0) < discount(0.5, 1.0));
    }

    #[test]
    fn reward_weight_small_beta_limit_is_tau() {
        // As beta -> 0 the weight approaches tau.
        assert!((reward_weight(1e-12, 5.0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn reward_weight_long_sojourn_saturates_at_inverse_beta() {
        assert!((reward_weight(0.5, 1e9) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sojourn_target_is_pure_bootstrap() {
        let p = SmdpParams::new(0.1, 0.5);
        let target = smdp_target(&p, -100.0, 0.0, 7.0);
        assert!((target - 7.0).abs() < 1e-9);
    }

    #[test]
    fn update_moves_toward_target() {
        let p = SmdpParams::new(0.5, 0.5);
        let q0 = 0.0;
        let target = smdp_target(&p, -1.0, 1.0, 0.0);
        let q1 = smdp_update(&p, q0, -1.0, 1.0, 0.0);
        assert!((q1 - 0.5 * target).abs() < 1e-12);
    }

    #[test]
    fn repeated_updates_converge_to_fixed_point() {
        // A single state/action loop with constant reward rate r and
        // sojourn tau has fixed point Q* = w*r / (1 - d) where
        // w = (1-e^{-beta tau})/beta, d = e^{-beta tau}.
        let p = SmdpParams::new(0.2, 0.5);
        let (r, tau) = (-3.0, 2.0);
        let w = reward_weight(p.beta, tau);
        let d = discount(p.beta, tau);
        let fixed = w * r / (1.0 - d);
        let mut q = 0.0;
        for _ in 0..500 {
            q = smdp_update(&p, q, r, tau, q);
        }
        assert!((q - fixed).abs() < 1e-6, "q={q}, fixed={fixed}");
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_rejected() {
        let _ = SmdpParams::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn invalid_beta_rejected() {
        let _ = SmdpParams::new(0.1, 0.0);
    }
}
