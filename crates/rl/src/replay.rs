//! Experience replay memory.
//!
//! The DRL framework stores state-transition profiles in an experience
//! memory `D` with capacity `N_D` and samples minibatches from it to smooth
//! learning and avoid parameter oscillation (Algorithm 1, lines 2 and 10).

use rand::Rng;

/// A bounded ring buffer of transitions with uniform random sampling.
#[derive(Debug, Clone)]
pub struct ReplayMemory<T> {
    capacity: usize,
    items: Vec<T>,
    next: usize,
}

impl<T> ReplayMemory<T> {
    /// Creates a memory with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the memory has reached capacity (new pushes evict the
    /// oldest entries).
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Inserts a transition, evicting the oldest if full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.next] = item;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples `batch` transitions uniformly with replacement. Returns
    /// fewer only if the memory holds fewer than one item.
    pub fn sample<'a>(&'a self, batch: usize, rng: &mut impl Rng) -> Vec<&'a T> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }

    /// Iterates over stored transitions in unspecified order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Removes all transitions.
    pub fn clear(&mut self) {
        self.items.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_then_evicts_oldest() {
        let mut m = ReplayMemory::new(3);
        for i in 0..3 {
            m.push(i);
        }
        assert!(m.is_full());
        m.push(3); // evicts 0
        let mut items: Vec<i32> = m.iter().cloned().collect();
        items.sort_unstable();
        assert_eq!(items, vec![1, 2, 3]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut m = ReplayMemory::new(2);
        m.push("a");
        m.push("b");
        m.push("c"); // evicts a
        m.push("d"); // evicts b
        let mut items: Vec<&str> = m.iter().cloned().collect();
        items.sort_unstable();
        assert_eq!(items, vec!["c", "d"]);
    }

    #[test]
    fn sample_returns_batch_size() {
        let mut m = ReplayMemory::new(10);
        for i in 0..5 {
            m.push(i);
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample(32, &mut rng).len(), 32);
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let m: ReplayMemory<i32> = ReplayMemory::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn sample_covers_all_items_eventually() {
        let mut m = ReplayMemory::new(8);
        for i in 0..8 {
            m.push(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for &x in m.sample(400, &mut rng) {
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clear_resets() {
        let mut m = ReplayMemory::new(2);
        m.push(1);
        m.clear();
        assert!(m.is_empty());
        m.push(2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: ReplayMemory<i32> = ReplayMemory::new(0);
    }
}
