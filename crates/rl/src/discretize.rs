//! Discretization of continuous observations into RL state categories.
//!
//! The paper discretizes the LSTM predictor's inter-arrival-time output
//! into `n` predefined categories that become part of the power manager's
//! RL state (Section VI-A).

use serde::{Deserialize, Serialize};

/// Maps a continuous value to one of `n` bins via sorted bin edges.
///
/// With edges `[e0, e1, ..., e_{k-1}]` there are `k + 1` bins: bin 0 is
/// `(-inf, e0)`, bin `i` is `[e_{i-1}, e_i)`, and bin `k` is `[e_{k-1}, inf)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discretizer {
    edges: Vec<f64>,
}

impl Discretizer {
    /// Creates a discretizer from sorted, finite bin edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, unsorted, or contains non-finite values.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "need at least one bin edge");
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "bin edges must be finite"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bin edges must be strictly increasing"
        );
        Self { edges }
    }

    /// Uniformly spaced edges over `[lo, hi]` producing `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or `lo >= hi`.
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        assert!(lo < hi, "lo must be below hi");
        let k = bins - 1;
        let edges = (1..=k)
            .map(|i| lo + (hi - lo) * i as f64 / bins as f64)
            .collect();
        Self::new(edges)
    }

    /// Geometrically spaced edges over `[lo, hi]` producing `bins` bins —
    /// suited to inter-arrival times spanning orders of magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or bounds are not positive and increasing.
    pub fn log_spaced(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi");
        let k = bins - 1;
        let (ll, lh) = (lo.ln(), hi.ln());
        let edges = (1..=k)
            .map(|i| (ll + (lh - ll) * i as f64 / bins as f64).exp())
            .collect();
        Self::new(edges)
    }

    /// Number of bins (`edges + 1`).
    pub fn num_bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// The bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// The bin index of `x`.
    pub fn bin(&self, x: f64) -> usize {
        // Binary search over the edge array.
        self.edges.partition_point(|&e| e <= x)
    }

    /// A representative value for a bin: the midpoint of interior bins,
    /// the edge itself for the two unbounded outer bins.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= num_bins()`.
    pub fn representative(&self, bin: usize) -> f64 {
        assert!(bin < self.num_bins(), "bin {bin} out of range");
        if bin == 0 {
            self.edges[0]
        } else if bin == self.edges.len() {
            self.edges[self.edges.len() - 1]
        } else {
            0.5 * (self.edges[bin - 1] + self.edges[bin])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries_are_half_open() {
        let d = Discretizer::new(vec![10.0, 20.0]);
        assert_eq!(d.num_bins(), 3);
        assert_eq!(d.bin(5.0), 0);
        assert_eq!(d.bin(10.0), 1); // inclusive lower edge
        assert_eq!(d.bin(19.99), 1);
        assert_eq!(d.bin(20.0), 2);
        assert_eq!(d.bin(1e9), 2);
    }

    #[test]
    fn uniform_edges_cover_interval() {
        let d = Discretizer::uniform(0.0, 100.0, 4);
        assert_eq!(d.edges(), &[25.0, 50.0, 75.0]);
        assert_eq!(d.num_bins(), 4);
    }

    #[test]
    fn log_spaced_edges_grow_geometrically() {
        let d = Discretizer::log_spaced(1.0, 1000.0, 4);
        let e = d.edges();
        assert_eq!(e.len(), 3);
        // Ratios between consecutive edges are equal.
        let r1 = e[1] / e[0];
        let r2 = e[2] / e[1];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn representative_is_within_bin() {
        let d = Discretizer::new(vec![10.0, 20.0, 40.0]);
        assert_eq!(d.representative(0), 10.0);
        assert_eq!(d.representative(1), 15.0);
        assert_eq!(d.representative(2), 30.0);
        assert_eq!(d.representative(3), 40.0);
    }

    #[test]
    fn negative_values_fall_in_first_bin() {
        let d = Discretizer::uniform(0.0, 10.0, 5);
        assert_eq!(d.bin(-3.0), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_rejected() {
        let _ = Discretizer::new(vec![5.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "bin 9 out of range")]
    fn representative_out_of_range_panics() {
        let d = Discretizer::uniform(0.0, 1.0, 2);
        let _ = d.representative(9);
    }

    #[test]
    fn serde_round_trip() {
        let d = Discretizer::log_spaced(1.0, 100.0, 6);
        let json = serde_json::to_string(&d).unwrap();
        let back: Discretizer = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
