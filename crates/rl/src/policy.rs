//! Exploration policies and schedules.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A schedule for the exploration probability `epsilon` as a function of
/// the decision-step counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EpsilonSchedule {
    /// Constant epsilon.
    Constant(f64),
    /// Linear interpolation from `start` to `end` over `steps` decisions,
    /// then constant at `end`.
    Linear {
        /// Initial epsilon.
        start: f64,
        /// Final epsilon.
        end: f64,
        /// Steps over which to anneal.
        steps: u64,
    },
    /// Exponential decay `end + (start - end) * exp(-step / tau)`.
    Exponential {
        /// Initial epsilon.
        start: f64,
        /// Asymptotic epsilon.
        end: f64,
        /// Decay time-constant in steps.
        tau: f64,
    },
}

impl EpsilonSchedule {
    /// Epsilon at the given step.
    pub fn value(&self, step: u64) -> f64 {
        match *self {
            EpsilonSchedule::Constant(e) => e,
            EpsilonSchedule::Linear { start, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    start + (end - start) * (step as f64 / steps as f64)
                }
            }
            EpsilonSchedule::Exponential { start, end, tau } => {
                end + (start - end) * (-(step as f64) / tau).exp()
            }
        }
    }

    /// Validates that every epsilon the schedule can produce lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        let check = |e: f64, name: &str| {
            if (0.0..=1.0).contains(&e) {
                Ok(())
            } else {
                Err(format!("{name} epsilon must be in [0, 1], got {e}"))
            }
        };
        match *self {
            EpsilonSchedule::Constant(e) => check(e, "constant"),
            EpsilonSchedule::Linear { start, end, .. } => {
                check(start, "start")?;
                check(end, "end")
            }
            EpsilonSchedule::Exponential { start, end, tau } => {
                check(start, "start")?;
                check(end, "end")?;
                if tau > 0.0 {
                    Ok(())
                } else {
                    Err(format!("tau must be positive, got {tau}"))
                }
            }
        }
    }
}

/// Stateful epsilon-greedy action selector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpsilonGreedy {
    schedule: EpsilonSchedule,
    step: u64,
}

impl EpsilonGreedy {
    /// Creates a selector from a validated schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is invalid.
    pub fn new(schedule: EpsilonSchedule) -> Self {
        schedule.validate().expect("invalid epsilon schedule");
        Self { schedule, step: 0 }
    }

    /// A fixed-epsilon selector.
    pub fn constant(epsilon: f64) -> Self {
        Self::new(EpsilonSchedule::Constant(epsilon))
    }

    /// Current epsilon (before the next selection).
    pub fn epsilon(&self) -> f64 {
        self.schedule.value(self.step)
    }

    /// Decision steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Selects an action index given per-action values: with probability
    /// `epsilon` a uniformly random action, otherwise the greedy argmax
    /// (lowest index wins ties). Advances the schedule by one step.
    ///
    /// # Panics
    ///
    /// Panics if `q_values` is empty.
    pub fn select(&mut self, q_values: &[f64], rng: &mut impl Rng) -> usize {
        assert!(!q_values.is_empty(), "cannot select from zero actions");
        let eps = self.epsilon();
        self.step += 1;
        if rng.gen::<f64>() < eps {
            rng.gen_range(0..q_values.len())
        } else {
            let mut best = 0;
            for (i, &v) in q_values.iter().enumerate() {
                if v > q_values[best] {
                    best = i;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_schedule_is_flat() {
        let s = EpsilonSchedule::Constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn linear_schedule_anneals_then_holds() {
        let s = EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 100,
        };
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.5).abs() < 1e-12);
        assert_eq!(s.value(100), 0.0);
        assert_eq!(s.value(500), 0.0);
    }

    #[test]
    fn exponential_schedule_approaches_end() {
        let s = EpsilonSchedule::Exponential {
            start: 1.0,
            end: 0.1,
            tau: 10.0,
        };
        assert!((s.value(0) - 1.0).abs() < 1e-12);
        assert!(s.value(100) < 0.11);
    }

    #[test]
    fn greedy_when_epsilon_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut pol = EpsilonGreedy::constant(0.0);
        for _ in 0..50 {
            assert_eq!(pol.select(&[0.0, 3.0, 1.0], &mut rng), 1);
        }
    }

    #[test]
    fn explores_when_epsilon_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pol = EpsilonGreedy::constant(1.0);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[pol.select(&[0.0, 3.0, 1.0], &mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 800, "counts {counts:?} not uniform-ish");
        }
    }

    #[test]
    fn step_counter_advances_schedule() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pol = EpsilonGreedy::new(EpsilonSchedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 10,
        });
        for _ in 0..10 {
            let _ = pol.select(&[0.0, 1.0], &mut rng);
        }
        assert_eq!(pol.epsilon(), 0.0);
        assert_eq!(pol.steps(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid epsilon schedule")]
    fn bad_schedule_rejected() {
        let _ = EpsilonGreedy::constant(1.5);
    }

    #[test]
    #[should_panic(expected = "zero actions")]
    fn empty_actions_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pol = EpsilonGreedy::constant(0.1);
        let _ = pol.select(&[], &mut rng);
    }
}
