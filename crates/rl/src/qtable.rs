//! Tabular Q-function over ordered states.

use crate::smdp::{smdp_update, SmdpParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A tabular action-value function `Q(s, a)` with a fixed action count.
///
/// States are created lazily with an optimistic-or-neutral initial value;
/// the local power manager's state space (machine mode x predicted
/// inter-arrival bin) is small, so a table suffices — exactly the paper's
/// "model-free RL" for the local tier.
///
/// The table is a `BTreeMap` rather than a `HashMap` so that iteration,
/// snapshots, and serialization follow key order regardless of the order
/// states were first visited — part of the repo's byte-identity guarantee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QTable<S>
where
    S: Ord,
{
    num_actions: usize,
    initial_value: f64,
    values: BTreeMap<S, Vec<f64>>,
    visits: BTreeMap<S, Vec<u64>>,
}

impl<S> QTable<S>
where
    S: Ord + Clone,
{
    /// Creates a table with `num_actions` actions per state and the given
    /// initial Q estimate for unseen state-action pairs.
    ///
    /// # Panics
    ///
    /// Panics if `num_actions == 0` or `initial_value` is not finite.
    pub fn new(num_actions: usize, initial_value: f64) -> Self {
        assert!(num_actions > 0, "need at least one action");
        assert!(initial_value.is_finite(), "initial value must be finite");
        Self {
            num_actions,
            initial_value,
            values: BTreeMap::new(),
            visits: BTreeMap::new(),
        }
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of distinct states seen so far.
    pub fn num_states(&self) -> usize {
        self.values.len()
    }

    /// `Q(s, a)` (initial value if unseen).
    ///
    /// # Panics
    ///
    /// Panics if `action >= num_actions`.
    pub fn q(&self, state: &S, action: usize) -> f64 {
        assert!(action < self.num_actions, "action {action} out of range");
        self.values
            .get(state)
            .map_or(self.initial_value, |v| v[action])
    }

    /// All action values for a state.
    pub fn q_row(&self, state: &S) -> Vec<f64> {
        self.values
            .get(state)
            .cloned()
            .unwrap_or_else(|| vec![self.initial_value; self.num_actions])
    }

    /// `max_a Q(s, a)`.
    pub fn max_q(&self, state: &S) -> f64 {
        self.q_row(state)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Greedy action (lowest index wins ties).
    pub fn best_action(&self, state: &S) -> usize {
        let row = self.q_row(state);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Times `(s, a)` has been updated.
    pub fn visit_count(&self, state: &S, action: usize) -> u64 {
        self.visits.get(state).map_or(0, |v| v[action])
    }

    /// Applies one SMDP Q-learning update (Eqn. 2) for an observed
    /// transition `(state, action) -> next_state` with time-average
    /// `reward_rate` over a sojourn of `sojourn` seconds. Returns the new
    /// estimate.
    ///
    /// # Panics
    ///
    /// Panics if `action >= num_actions`.
    pub fn update_smdp(
        &mut self,
        params: &SmdpParams,
        state: &S,
        action: usize,
        reward_rate: f64,
        sojourn: f64,
        next_state: &S,
    ) -> f64 {
        assert!(action < self.num_actions, "action {action} out of range");
        let max_next = self.max_q(next_state);
        let init = self.initial_value;
        let n = self.num_actions;
        let row = self
            .values
            .entry(state.clone())
            .or_insert_with(|| vec![init; n]);
        row[action] = smdp_update(params, row[action], reward_rate, sojourn, max_next);
        let updated = row[action];
        self.visits
            .entry(state.clone())
            .or_insert_with(|| vec![0; n])[action] += 1;
        updated
    }

    /// Directly sets `Q(s, a)` (useful for testing and initialization).
    pub fn set_q(&mut self, state: &S, action: usize, value: f64) {
        assert!(action < self.num_actions, "action {action} out of range");
        let init = self.initial_value;
        let n = self.num_actions;
        self.values
            .entry(state.clone())
            .or_insert_with(|| vec![init; n])[action] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_state_returns_initial_value() {
        let t: QTable<u32> = QTable::new(3, 1.5);
        assert_eq!(t.q(&7, 0), 1.5);
        assert_eq!(t.max_q(&7), 1.5);
        assert_eq!(t.num_states(), 0);
    }

    #[test]
    fn best_action_breaks_ties_low() {
        let mut t: QTable<u32> = QTable::new(3, 0.0);
        t.set_q(&1, 2, 5.0);
        t.set_q(&1, 1, 5.0);
        assert_eq!(t.best_action(&1), 1);
    }

    #[test]
    fn update_smdp_moves_toward_reward() {
        let mut t: QTable<u32> = QTable::new(2, 0.0);
        let p = SmdpParams::new(0.5, 0.5);
        // Negative reward rate drives Q below zero.
        let q = t.update_smdp(&p, &0, 0, -10.0, 1.0, &0);
        assert!(q < 0.0);
        assert_eq!(t.visit_count(&0, 0), 1);
        assert_eq!(t.visit_count(&0, 1), 0);
    }

    #[test]
    fn greedy_policy_learns_better_action() {
        // Action 0 has reward rate -1, action 1 has -5: action 0 must win.
        let mut t: QTable<u32> = QTable::new(2, 0.0);
        let p = SmdpParams::new(0.2, 0.5);
        for _ in 0..200 {
            t.update_smdp(&p, &0, 0, -1.0, 1.0, &0);
            t.update_smdp(&p, &0, 1, -5.0, 1.0, &0);
        }
        assert_eq!(t.best_action(&0), 0);
        assert!(t.q(&0, 0) > t.q(&0, 1));
    }

    #[test]
    fn q_row_has_action_count_entries() {
        let t: QTable<(u8, u8)> = QTable::new(4, -1.0);
        assert_eq!(t.q_row(&(0, 0)), vec![-1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn action_out_of_range_panics() {
        let t: QTable<u32> = QTable::new(2, 0.0);
        let _ = t.q(&0, 5);
    }

    #[test]
    fn snapshot_serialization_is_identical_across_insertion_orders() {
        // Build the same logical table twice with states first visited in
        // opposite orders; the serialized snapshots must match byte for
        // byte. With a hash map this would depend on per-process hashing.
        let states: Vec<u32> = (0..32).collect();
        let mut forward: QTable<u32> = QTable::new(3, 0.0);
        for &s in &states {
            forward.set_q(&s, (s as usize) % 3, f64::from(s) * 0.25);
        }
        let mut reverse: QTable<u32> = QTable::new(3, 0.0);
        for &s in states.iter().rev() {
            reverse.set_q(&s, (s as usize) % 3, f64::from(s) * 0.25);
        }
        let a = serde_json::to_string(&forward).unwrap();
        let b = serde_json::to_string(&reverse).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let mut t: QTable<u32> = QTable::new(2, 0.0);
        t.set_q(&3, 1, 2.5);
        let json = serde_json::to_string(&t).unwrap();
        let back: QTable<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.q(&3, 1), 2.5);
    }
}
