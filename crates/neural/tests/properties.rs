//! Property-based tests of the neural substrate: algebraic laws of the
//! matrix kernel, gradient sanity of the layers, and optimizer behaviour.

use hierdrl_neural::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) within floating-point tolerance.
    #[test]
    fn matmul_is_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 5),
        c in arb_matrix(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A (B + C) == A B + A C.
    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 3),
        c in arb_matrix(4, 3),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Transpose identities: (A B)^T == B^T A^T, via the fused kernels.
    #[test]
    fn fused_transpose_kernels_agree(
        a in arb_matrix(4, 3),
        b in arb_matrix(4, 5),
    ) {
        // a^T b via matmul_tn equals explicit transpose product.
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert_eq!(fused.shape(), explicit.shape());
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// hcat then slice_cols recovers the original parts.
    #[test]
    fn hcat_slice_roundtrip(a in arb_matrix(2, 3), b in arb_matrix(2, 4)) {
        let joined = Matrix::hcat(&[&a, &b]);
        prop_assert_eq!(joined.slice_cols(0, 3), a);
        prop_assert_eq!(joined.slice_cols(3, 4), b);
    }

    /// The Frobenius norm is absolutely homogeneous: ||cA|| == |c| ||A||.
    #[test]
    fn norm_is_homogeneous(a in arb_matrix(3, 3), c in -4.0f32..4.0) {
        let mut scaled = a.clone();
        scaled.scale(c);
        prop_assert!((scaled.norm() - c.abs() * a.norm()).abs() < 1e-2);
    }

    /// Activations are monotone non-decreasing on a grid.
    #[test]
    fn activations_are_monotone(x in -5.0f32..5.0) {
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::LeakyRelu(0.01),
            Activation::ELU,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let y0 = act.apply(x);
            let y1 = act.apply(x + 0.25);
            prop_assert!(y1 >= y0 - 1e-6, "{act:?} not monotone at {x}");
        }
    }

    /// Gradient clipping never increases the global norm and preserves
    /// direction.
    #[test]
    fn clipping_contracts(seed in 0u64..1000, max_norm in 0.5f32..20.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::ELU, Activation::Linear,
                               Init::XavierUniform, &mut rng);
        // Produce some gradients.
        let x = Matrix::row_vector(&[0.3, -0.2, 0.9]);
        let target = Matrix::row_vector(&[1.0, -1.0]);
        let pred = mlp.forward(&x);
        let dy = Loss::Mse.gradient(&pred, &target);
        mlp.backward(&dy);

        let before = global_grad_norm(&mut mlp);
        let reported = clip_grad_norm(&mut mlp, max_norm);
        let after = global_grad_norm(&mut mlp);
        prop_assert!((reported - before).abs() < 1e-4);
        prop_assert!(after <= max_norm + 1e-4);
        prop_assert!(after <= before + 1e-4);
    }

    /// Row independence of inference: running a batch through an MLP in one
    /// call is bitwise identical to running each row alone. The batched DQN
    /// hot path (one GEMM over all Sub-Q rows) rests on this property.
    #[test]
    fn batched_inference_is_bitwise_row_independent(
        seed in 0u64..500,
        x in arb_matrix(5, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[4, 6, 3], Activation::ELU, Activation::Linear,
                           Init::HeNormal, &mut rng);
        let batched = mlp.infer(&x);
        for r in 0..x.rows() {
            let single = mlp.infer(&x.row_matrix(r));
            prop_assert_eq!(single.row(0), batched.row(r), "row {} diverged", r);
        }
    }

    /// The workspace-buffer inference path is bitwise identical to the
    /// allocating one, whatever stale state the buffers start with.
    #[test]
    fn infer_into_is_bitwise_identical_to_infer(
        seed in 0u64..500,
        x in arb_matrix(3, 4),
        stale in -2.0f32..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[4, 6, 3], Activation::ELU, Activation::Linear,
                           Init::HeNormal, &mut rng);
        let mut out = Matrix::filled(2, 7, stale);
        let mut scratch = Matrix::filled(1, 3, stale);
        mlp.infer_into(&x, &mut out, &mut scratch);
        prop_assert_eq!(out, mlp.infer(&x));
    }

    /// MSE is non-negative and zero iff prediction equals target.
    #[test]
    fn mse_is_positive_definite(p in arb_matrix(2, 3)) {
        prop_assert_eq!(Loss::Mse.value(&p, &p), 0.0);
        let mut q = p.clone();
        q.as_mut_slice()[0] += 1.0;
        prop_assert!(Loss::Mse.value(&q, &p) > 0.0);
    }

    /// One Adam step moves every parameter by at most ~lr (bias-corrected
    /// Adam's step-size bound).
    #[test]
    fn adam_step_is_bounded(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[2, 3, 1], Activation::Tanh, Activation::Linear,
                               Init::XavierUniform, &mut rng);
        let mut before = Vec::new();
        mlp.visit_params(&mut |p, _| before.extend_from_slice(p.as_slice()));

        let x = Matrix::row_vector(&[0.5, -0.5]);
        let target = Matrix::row_vector(&[2.0]);
        let pred = mlp.forward(&x);
        let dy = Loss::Mse.gradient(&pred, &target);
        mlp.backward(&dy);
        let lr = 0.01f32;
        let mut adam = Adam::new(lr);
        adam.step(&mut mlp);

        let mut after = Vec::new();
        mlp.visit_params(&mut |p, _| after.extend_from_slice(p.as_slice()));
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((b - a).abs() <= lr * 1.2 + 1e-6,
                "step {} exceeded bound", (b - a).abs());
        }
    }
}

#[test]
fn lstm_long_sequence_gradients_stay_finite() {
    // 200-step BPTT must not produce NaNs/infs (the LSTM's raison d'être).
    let mut rng = StdRng::seed_from_u64(9);
    let mut net = LstmNetwork::new(1, 1, 8, 1, &mut rng);
    let steps: Vec<Matrix> = (0..200)
        .map(|i| Matrix::row_vector(&[((i % 13) as f32 / 13.0) - 0.5]))
        .collect();
    let pred = net.forward(&steps);
    let dy = Loss::Mse.gradient(&pred, &Matrix::row_vector(&[0.3]));
    net.backward(&dy);
    let mut ok = true;
    net.visit_params(&mut |_, g| ok &= g.is_finite());
    assert!(ok, "non-finite gradients after long BPTT");
}

#[test]
fn weight_sharing_matches_manual_accumulation() {
    // Applying a layer twice and back-propagating both must equal the sum
    // of two independent single applications' gradients.
    let mut rng = StdRng::seed_from_u64(4);
    let make = |rng: &mut StdRng| Dense::new(3, 2, Activation::Tanh, Init::XavierUniform, rng);
    let layer_proto = make(&mut rng);
    let x1 = Matrix::row_vector(&[0.1, 0.4, -0.2]);
    let x2 = Matrix::row_vector(&[-0.6, 0.2, 0.8]);
    let dy = Matrix::row_vector(&[1.0, -1.0]);

    // Shared application.
    let mut shared = layer_proto.clone();
    shared.forward(&x1);
    shared.forward(&x2);
    shared.backward(&dy);
    shared.backward(&dy);
    let mut shared_grads = Vec::new();
    shared.visit_params(&mut |_, g| shared_grads.push(g.clone()));

    // Two independent applications, summed.
    let mut a = layer_proto.clone();
    a.forward(&x1);
    a.backward(&dy);
    let mut b = layer_proto.clone();
    b.forward(&x2);
    b.backward(&dy);
    let mut sum_grads = Vec::new();
    a.visit_params(&mut |_, g| sum_grads.push(g.clone()));
    let mut i = 0;
    b.visit_params(&mut |_, g| {
        sum_grads[i].axpy(1.0, g);
        i += 1;
    });

    for (s, t) in shared_grads.iter().zip(&sum_grads) {
        for (x, y) in s.as_slice().iter().zip(t.as_slice()) {
            assert!((x - y).abs() < 1e-6, "shared {x} vs summed {y}");
        }
    }
}
