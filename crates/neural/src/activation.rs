//! Element-wise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// An element-wise activation function.
///
/// The paper's networks use ELU units for the autoencoder and Sub-Q hidden
/// layers, and tanh/sigmoid inside the LSTM gates; all are provided here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Leaky ReLU with the given negative-side slope.
    LeakyRelu(f32),
    /// Exponential linear unit with the given `alpha`:
    /// `x` for `x > 0`, `alpha * (e^x - 1)` otherwise.
    Elu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
}

impl Activation {
    /// The ELU used throughout the paper (`alpha = 1`).
    pub const ELU: Activation = Activation::Elu(1.0);

    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::Elu(alpha) => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * (crate::fastmath::exp(x) - 1.0)
                }
            }
            Activation::Tanh => crate::fastmath::tanh(x),
            Activation::Sigmoid => crate::fastmath::sigmoid(x),
        }
    }

    /// Applies the activation to every element of a slice in place.
    ///
    /// Semantically identical to mapping [`Activation::apply`], but the
    /// exp-based activations dispatch to eight-lane SIMD kernels where the
    /// CPU supports them (bitwise identical to the scalar kernels — see
    /// `crate::simd`). All activation sweeps in the crate route through
    /// here so every code path applies the exact same function.
    pub fn apply_slice(self, xs: &mut [f32]) {
        match self {
            Activation::Linear => {}
            Activation::Elu(alpha) => crate::simd::elu_inplace(xs, alpha),
            Activation::Tanh => crate::simd::tanh_inplace(xs),
            Activation::Sigmoid => crate::simd::sigmoid_inplace(xs),
            Activation::Relu | Activation::LeakyRelu(_) => {
                for x in xs {
                    *x = self.apply(*x);
                }
            }
        }
    }

    /// Derivative of the activation expressed in terms of the
    /// *pre-activation* input `x` and the *post-activation* output `y`.
    ///
    /// Supplying both lets each variant pick whichever is cheaper
    /// (`sigmoid'(x) = y(1-y)`, `tanh'(x) = 1-y^2`, `elu'(x) = y + alpha`
    /// on the negative side).
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(slope) => {
                if x > 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            Activation::Elu(alpha) => {
                if x > 0.0 {
                    1.0
                } else {
                    y + alpha
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivative(act: Activation, x: f32) {
        let eps = 1e-3_f32;
        let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
        let analytic = act.derivative(x, act.apply(x));
        assert!(
            (numeric - analytic).abs() < 2e-3,
            "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let points = [-2.0, -0.5, -0.1, 0.1, 0.5, 2.0];
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::LeakyRelu(0.01),
            Activation::ELU,
            Activation::Elu(0.5),
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            for &x in &points {
                check_derivative(act, x);
            }
        }
    }

    #[test]
    fn elu_is_continuous_at_zero() {
        let a = Activation::ELU;
        assert!((a.apply(1e-6) - a.apply(-1e-6)).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-7);
        assert!(s.apply(30.0) <= 1.0);
        assert!(s.apply(-30.0) >= 0.0);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn elu_negative_side_saturates_at_minus_alpha() {
        let a = Activation::Elu(1.0);
        assert!(a.apply(-50.0) > -1.0 - 1e-6);
        assert!(a.apply(-50.0) < -0.99);
    }

    #[test]
    fn serde_round_trip() {
        let a = Activation::Elu(1.0);
        let json = serde_json::to_string(&a).unwrap();
        let b: Activation = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }
}
