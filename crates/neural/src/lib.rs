//! # hierdrl-neural
//!
//! A minimal, dependency-light neural-network substrate used by the
//! hierarchical DRL cloud-management framework. It provides exactly the
//! building blocks the paper's networks need:
//!
//! - dense row-major [`matrix::Matrix`] math,
//! - fully-connected layers with ELU/tanh/sigmoid activations
//!   ([`dense::Dense`], [`dense::Mlp`]),
//! - an [`lstm::LstmNetwork`] with truncated BPTT for the workload
//!   predictor,
//! - an [`autoencoder::Autoencoder`] for state-space compression,
//! - [`optim::Sgd`] / [`optim::Adam`] optimizers with global-norm gradient
//!   clipping.
//!
//! Weight sharing — central to the paper's DNN design — is supported
//! natively: every layer keeps a *stack* of forward caches, so the same
//! parameter set can be applied several times per step and gradients from
//! all applications accumulate.
//!
//! # Examples
//!
//! ```
//! use hierdrl_neural::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut net = Mlp::new(&[4, 16, 2], Activation::ELU, Activation::Linear,
//!                        Init::XavierUniform, &mut rng);
//! let mut adam = Adam::new(1e-3);
//!
//! let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
//! let target = Matrix::row_vector(&[1.0, -1.0]);
//!
//! net.zero_grad();
//! let pred = net.forward(&x);
//! let grad = Loss::Mse.gradient(&pred, &target);
//! net.backward(&grad);
//! clip_grad_norm(&mut net, 10.0);
//! adam.step(&mut net);
//! ```

pub mod activation;
pub mod autoencoder;
pub mod dense;
pub mod fastmath;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod optim;
mod simd;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::autoencoder::Autoencoder;
    pub use crate::dense::{Dense, Mlp};
    pub use crate::init::Init;
    pub use crate::loss::Loss;
    pub use crate::lstm::{LstmCell, LstmNetwork, LstmState};
    pub use crate::matrix::Matrix;
    pub use crate::optim::{clip_grad_norm, global_grad_norm, Adam, Optimizer, Sgd, Trainable};
}
