//! Optimizers and gradient utilities.
//!
//! Parameters are exposed through the [`Trainable`] trait: a network visits
//! its `(parameter, gradient)` matrix pairs in a deterministic order, and
//! stateful optimizers (momentum, Adam) keep per-parameter state indexed by
//! that order.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A model whose parameters can be visited for optimization.
///
/// Implementations must visit parameters in the same order on every call;
/// stateful optimizers rely on this to associate state with parameters.
pub trait Trainable {
    /// Visits every `(parameter, gradient)` pair.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Resets all gradients to zero.
    fn zero_grad(&mut self);

    /// Total number of learnable scalars (derived from a visit).
    fn parameter_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in `net`.
    /// Does not zero the gradients; callers decide when to do that.
    fn step(&mut self, net: &mut dyn Trainable);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`; `0` disables momentum.
    pub momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer without momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates an SGD optimizer with momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Trainable) {
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        let mut idx = 0;
        net.visit_params(&mut |p, g| {
            if momentum == 0.0 {
                p.axpy(-lr, g);
            } else {
                if velocity.len() <= idx {
                    velocity.push(Matrix::zeros(p.rows(), p.cols()));
                }
                let v = &mut velocity[idx];
                assert_eq!(v.shape(), p.shape(), "parameter order changed mid-training");
                v.scale(momentum);
                v.axpy(1.0, g);
                p.axpy(-lr, v);
            }
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba, 2014), the paper's choice for both the DNN
/// and the LSTM predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (default `0.9`).
    pub beta1: f32,
    /// Second-moment decay (default `0.999`).
    pub beta2: f32,
    /// Numerical stability constant (default `1e-8`).
    pub eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with standard hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Trainable) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bias1 = 1.0 - b1.powi(t as i32);
        let bias2 = 1.0 - b2.powi(t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        net.visit_params(&mut |p, g| {
            if m.len() <= idx {
                m.push(Matrix::zeros(p.rows(), p.cols()));
                v.push(Matrix::zeros(p.rows(), p.cols()));
            }
            let (mi, vi) = (&mut m[idx], &mut v[idx]);
            assert_eq!(
                mi.shape(),
                p.shape(),
                "parameter order changed mid-training"
            );
            crate::simd::adam_update(
                p.as_mut_slice(),
                g.as_slice(),
                mi.as_mut_slice(),
                vi.as_mut_slice(),
                lr,
                b1,
                b2,
                eps,
                bias1,
                bias2,
            );
            idx += 1;
        });
    }
}

/// Computes the global L2 norm over all gradients in `net`.
pub fn global_grad_norm(net: &mut dyn Trainable) -> f32 {
    let mut acc = 0.0_f32;
    net.visit_params(&mut |_, g| acc += g.norm_sq());
    acc.sqrt()
}

/// Scales gradients so their global L2 norm is at most `max_norm` (the
/// paper clips at norm 10). Returns the pre-clip norm.
///
/// # Panics
///
/// Panics if `max_norm <= 0`.
pub fn clip_grad_norm(net: &mut dyn Trainable, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = global_grad_norm(net);
    if norm > max_norm {
        let scale = max_norm / norm;
        net.visit_params(&mut |_, g| g.scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single scalar parameter with an externally-set gradient, for
    /// exercising optimizers in isolation.
    struct Scalar {
        p: Matrix,
        g: Matrix,
    }

    impl Scalar {
        fn new(p0: f32) -> Self {
            Self {
                p: Matrix::filled(1, 1, p0),
                g: Matrix::zeros(1, 1),
            }
        }
        fn set_grad(&mut self, g: f32) {
            self.g.as_mut_slice()[0] = g;
        }
        fn value(&self) -> f32 {
            self.p.as_slice()[0]
        }
    }

    impl Trainable for Scalar {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
            f(&mut self.p, &mut self.g);
        }
        fn zero_grad(&mut self) {
            self.g.fill_zero();
        }
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut s = Scalar::new(1.0);
        s.set_grad(2.0);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut s);
        assert!((s.value() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut s = Scalar::new(0.0);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        s.set_grad(1.0);
        opt.step(&mut s); // v = 1,   p = -0.1
        opt.step(&mut s); // v = 1.9, p = -0.29
        assert!((s.value() + 0.29).abs() < 1e-6, "got {}", s.value());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(p) = (p - 3)^2 from p = 0.
        let mut s = Scalar::new(0.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = 2.0 * (s.value() - 3.0);
            s.set_grad(g);
            opt.step(&mut s);
        }
        assert!((s.value() - 3.0).abs() < 1e-2, "got {}", s.value());
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr * sign(grad).
        let mut s = Scalar::new(0.0);
        s.set_grad(1e-3);
        let mut opt = Adam::new(0.01);
        opt.step(&mut s);
        assert!((s.value() + 0.01).abs() < 1e-4, "got {}", s.value());
    }

    #[test]
    fn clip_reduces_large_gradients_only() {
        let mut s = Scalar::new(0.0);
        s.set_grad(100.0);
        let pre = clip_grad_norm(&mut s, 10.0);
        assert!((pre - 100.0).abs() < 1e-4);
        assert!((s.g.as_slice()[0] - 10.0).abs() < 1e-4);

        s.set_grad(5.0);
        let pre = clip_grad_norm(&mut s, 10.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.g.as_slice()[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn parameter_count_via_visit() {
        let mut s = Scalar::new(0.0);
        assert_eq!(s.parameter_count(), 1);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn clip_rejects_zero_norm() {
        let mut s = Scalar::new(0.0);
        let _ = clip_grad_norm(&mut s, 0.0);
    }
}
