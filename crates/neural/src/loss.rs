//! Loss functions.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A scalar loss over batched predictions.
///
/// Both variants average over every element of the batch, so gradient
/// magnitudes are independent of batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Huber loss with the given `delta`; quadratic inside `|e| <= delta`,
    /// linear outside. Commonly used to stabilize Q-learning targets.
    Huber(f32),
}

impl Loss {
    /// Loss value averaged over all elements.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(
            pred.shape(),
            target.shape(),
            "loss shape mismatch: {:?} vs {:?}",
            pred.shape(),
            target.shape()
        );
        let n = pred.len().max(1) as f32;
        match *self {
            Loss::Mse => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| (p - t) * (p - t))
                    .sum::<f32>()
                    / n
            }
            Loss::Huber(delta) => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| {
                        let e = (p - t).abs();
                        if e <= delta {
                            0.5 * e * e
                        } else {
                            delta * (e - 0.5 * delta)
                        }
                    })
                    .sum::<f32>()
                    / n
            }
        }
    }

    /// Gradient of [`Loss::value`] written into `out` (resized in place,
    /// reusing its allocation). Bitwise identical to [`Loss::gradient`].
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn gradient_into(&self, pred: &Matrix, target: &Matrix, out: &mut Matrix) {
        assert_eq!(
            pred.shape(),
            target.shape(),
            "loss shape mismatch: {:?} vs {:?}",
            pred.shape(),
            target.shape()
        );
        let n = pred.len().max(1) as f32;
        out.resize_to(pred.rows(), pred.cols());
        let dst = out.as_mut_slice();
        match *self {
            Loss::Mse => {
                for (d, (&p, &t)) in dst
                    .iter_mut()
                    .zip(pred.as_slice().iter().zip(target.as_slice()))
                {
                    *d = 2.0 * (p - t) / n;
                }
            }
            Loss::Huber(delta) => {
                for (d, (&p, &t)) in dst
                    .iter_mut()
                    .zip(pred.as_slice().iter().zip(target.as_slice()))
                {
                    let e = p - t;
                    *d = if e.abs() <= delta {
                        e / n
                    } else {
                        delta * e.signum() / n
                    };
                }
            }
        }
    }

    /// Gradient of [`Loss::value`] with respect to `pred`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn gradient(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(
            pred.shape(),
            target.shape(),
            "loss shape mismatch: {:?} vs {:?}",
            pred.shape(),
            target.shape()
        );
        let n = pred.len().max(1) as f32;
        match *self {
            Loss::Mse => pred.zip_with(target, |p, t| 2.0 * (p - t) / n),
            Loss::Huber(delta) => pred.zip_with(target, |p, t| {
                let e = p - t;
                if e.abs() <= delta {
                    e / n
                } else {
                    delta * e.signum() / n
                }
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_inputs_is_zero() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(Loss::Mse.value(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::row_vector(&[1.0, 2.0]);
        let t = Matrix::row_vector(&[0.0, 0.0]);
        assert!((Loss::Mse.value(&p, &t) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn huber_equals_half_mse_inside_delta() {
        let p = Matrix::row_vector(&[0.5, -0.5]);
        let t = Matrix::row_vector(&[0.0, 0.0]);
        let huber = Loss::Huber(1.0).value(&p, &t);
        let mse = Loss::Mse.value(&p, &t);
        assert!((huber - 0.5 * mse).abs() < 1e-6);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        let t = Matrix::row_vector(&[0.0]);
        let v10 = Loss::Huber(1.0).value(&Matrix::row_vector(&[10.0]), &t);
        let v11 = Loss::Huber(1.0).value(&Matrix::row_vector(&[11.0]), &t);
        assert!((v11 - v10 - 1.0).abs() < 1e-4);
    }

    fn grad_check(loss: Loss, p: &[f32], t: &[f32]) {
        let pred = Matrix::row_vector(p);
        let target = Matrix::row_vector(t);
        let g = loss.gradient(&pred, &target);
        let eps = 1e-3;
        for i in 0..p.len() {
            let mut up = pred.clone();
            up.as_mut_slice()[i] += eps;
            let mut down = pred.clone();
            down.as_mut_slice()[i] -= eps;
            let numeric = (loss.value(&up, &target) - loss.value(&down, &target)) / (2.0 * eps);
            assert!(
                (numeric - g.as_slice()[i]).abs() < 1e-3,
                "{loss:?} grad[{i}]: numeric {numeric} vs {}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        grad_check(Loss::Mse, &[0.3, -1.2, 2.0], &[0.0, 0.0, 1.0]);
        grad_check(Loss::Huber(1.0), &[0.3, -3.0, 2.0], &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "loss shape mismatch")]
    fn mismatched_shapes_panic() {
        let _ = Loss::Mse.value(&Matrix::zeros(1, 2), &Matrix::zeros(1, 3));
    }
}
