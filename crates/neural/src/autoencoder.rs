//! Autoencoder for state-space compression.
//!
//! The paper's global tier compresses each server group's state with an
//! autoencoder whose encoder has two fully-connected ELU layers of 30 and
//! 15 neurons (Section VII-A); the decoder mirrors the encoder, and the
//! whole model is trained offline on observed states with reconstruction
//! MSE before Q-learning begins.

use crate::activation::Activation;
use crate::dense::Mlp;
use crate::init::Init;
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::optim::{Optimizer, Trainable};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An encoder/decoder pair trained with reconstruction loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Autoencoder {
    encoder: Mlp,
    decoder: Mlp,
}

impl Autoencoder {
    /// Builds a symmetric autoencoder. `dims` runs from the input width down
    /// to the code width (e.g. `[45, 30, 15]` for the paper's encoder); the
    /// decoder mirrors it back up.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2`.
    pub fn new(dims: &[usize], activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(dims.len() >= 2, "autoencoder needs input and code widths");
        let mut up: Vec<usize> = dims.to_vec();
        up.reverse();
        Self {
            encoder: Mlp::new(dims, activation, activation, Init::XavierUniform, rng),
            // Linear output layer so reconstructions are unbounded.
            decoder: Mlp::new(
                &up,
                activation,
                Activation::Linear,
                Init::XavierUniform,
                rng,
            ),
        }
    }

    /// The paper's configuration for a group-state of width `input`:
    /// encoder `input -> 30 -> 15` with ELU units.
    pub fn paper_encoder(input: usize, rng: &mut impl Rng) -> Self {
        Self::new(&[input, 30, 15], Activation::ELU, rng)
    }

    /// Width of the input vectors.
    pub fn input_size(&self) -> usize {
        self.encoder.input_size()
    }

    /// Width of the compressed code.
    pub fn code_size(&self) -> usize {
        self.encoder.output_size()
    }

    /// Encodes a batch into codes (`n x code_size`).
    pub fn encode(&self, x: &Matrix) -> Matrix {
        self.encoder.infer(x)
    }

    /// Encodes a batch into `out` using caller-provided buffers (see
    /// [`Mlp::infer_into`]); bitwise identical to [`Autoencoder::encode`].
    pub fn encode_into(&self, x: &Matrix, out: &mut Matrix, scratch: &mut Matrix) {
        self.encoder.infer_into(x, out, scratch);
    }

    /// The encoder half (read-only).
    pub fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    /// Mutable access to the encoder half, for callers that back-propagate
    /// task losses through the code (e.g. end-to-end Q fine-tuning).
    pub fn encoder_mut(&mut self) -> &mut Mlp {
        &mut self.encoder
    }

    /// The decoder half (read-only).
    pub fn decoder(&self) -> &Mlp {
        &self.decoder
    }

    /// Decodes a batch of codes back to input space.
    pub fn decode(&self, code: &Matrix) -> Matrix {
        self.decoder.infer(code)
    }

    /// Full reconstruction `decode(encode(x))`.
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.decode(&self.encode(x))
    }

    /// Mean squared reconstruction error over a batch.
    pub fn reconstruction_error(&self, x: &Matrix) -> f32 {
        Loss::Mse.value(&self.reconstruct(x), x)
    }

    /// One optimizer step on reconstruction MSE over the batch; returns the
    /// pre-step loss.
    pub fn train_batch(&mut self, x: &Matrix, optimizer: &mut dyn Optimizer) -> f32 {
        self.zero_grad();
        let code = self.encoder.forward(x);
        let recon = self.decoder.forward(&code);
        let loss = Loss::Mse.value(&recon, x);
        let dy = Loss::Mse.gradient(&recon, x);
        let dcode = self.decoder.backward(&dy);
        self.encoder.backward(&dcode);
        optimizer.step(self);
        loss
    }

    /// One optimizer step on reconstruction MSE through the workspace
    /// forward/backward paths, with the loss gradient staged in the
    /// caller's reusable `dy` buffer: no per-batch tensor allocations.
    /// Bitwise identical to [`Autoencoder::train_batch`] in weights,
    /// optimizer state, and returned loss (the encoder's parameter
    /// gradients don't need the input gradient, so its sweep is
    /// params-only).
    fn train_batch_ws(
        &mut self,
        x: &Matrix,
        optimizer: &mut dyn Optimizer,
        dy: &mut Matrix,
    ) -> f32 {
        self.zero_grad();
        let code = self.encoder.forward_ws(x);
        let recon = self.decoder.forward_ws(code);
        let loss = Loss::Mse.value(recon, x);
        Loss::Mse.gradient_into(recon, x, dy);
        let dcode = self.decoder.backward_ws(dy);
        self.encoder.backward_params_only_ws(dcode);
        optimizer.step(self);
        loss
    }

    /// Trains for `epochs` passes over `data` in minibatches of
    /// `batch_size`, returning the final epoch's mean loss. Runs through
    /// the workspace training step (bitwise identical to a
    /// [`Autoencoder::train_batch`] loop), staging each contiguous batch
    /// slice in one recycled buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows or `batch_size == 0`.
    pub fn fit(
        &mut self,
        data: &Matrix,
        epochs: usize,
        batch_size: usize,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        assert!(data.rows() > 0, "training data is empty");
        assert!(batch_size > 0, "batch_size must be positive");
        let mut last = 0.0;
        let mut batch = Matrix::default();
        let mut dy = Matrix::default();
        let cols = data.cols();
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut batches = 0;
            let mut start = 0;
            while start < data.rows() {
                let end = (start + batch_size).min(data.rows());
                batch.resize_to(end - start, cols);
                batch
                    .as_mut_slice()
                    .copy_from_slice(&data.as_slice()[start * cols..end * cols]);
                total += self.train_batch_ws(&batch, optimizer, &mut dy);
                batches += 1;
                start = end;
            }
            last = total / batches as f32;
        }
        last
    }
}

impl Trainable for Autoencoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.encoder.visit_params(f);
        self.decoder.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.decoder.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let ae = Autoencoder::paper_encoder(45, &mut rng);
        assert_eq!(ae.input_size(), 45);
        assert_eq!(ae.code_size(), 15);
        let x = Matrix::zeros(4, 45);
        assert_eq!(ae.encode(&x).shape(), (4, 15));
        assert_eq!(ae.reconstruct(&x).shape(), (4, 45));
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut rng = StdRng::seed_from_u64(2);
        // Data on a 2-D linear manifold inside an 8-D space: compressible.
        let mut data = Matrix::zeros(64, 8);
        for r in 0..64 {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            for c in 0..8 {
                data[(r, c)] = a * (c as f32 / 8.0) + b * ((8 - c) as f32 / 8.0);
            }
        }
        let mut ae = Autoencoder::new(&[8, 6, 2], Activation::ELU, &mut rng);
        let before = ae.reconstruction_error(&data);
        let mut adam = Adam::new(5e-3);
        ae.fit(&data, 200, 16, &mut adam);
        let after = ae.reconstruction_error(&data);
        assert!(
            after < before * 0.2,
            "reconstruction error {before} -> {after} did not drop"
        );
    }

    #[test]
    fn code_is_lower_dimensional() {
        let mut rng = StdRng::seed_from_u64(3);
        let ae = Autoencoder::new(&[10, 4], Activation::ELU, &mut rng);
        assert!(ae.code_size() < ae.input_size());
    }

    #[test]
    #[should_panic(expected = "training data is empty")]
    fn fit_rejects_empty_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ae = Autoencoder::new(&[4, 2], Activation::ELU, &mut rng);
        let mut adam = Adam::new(1e-3);
        let _ = ae.fit(&Matrix::zeros(0, 4), 1, 8, &mut adam);
    }

    #[test]
    fn workspace_training_matches_reference_bitwise() {
        // The workspace step `fit` uses must leave exactly the state the
        // allocating reference step leaves: identical losses, weights, and
        // optimizer moments after several minibatches.
        let mut rng = StdRng::seed_from_u64(6);
        let mut data = Matrix::zeros(48, 9);
        for v in data.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let ae0 = Autoencoder::new(&[9, 6, 3], Activation::ELU, &mut rng);
        let mut ae_ref = ae0.clone();
        let mut ae_ws = ae0;
        let mut adam_ref = Adam::new(2e-3);
        let mut adam_ws = Adam::new(2e-3);
        let mut dy = Matrix::default();
        for start in (0..48).step_by(16) {
            let rows: Vec<&[f32]> = (start..start + 16).map(|r| data.row(r)).collect();
            let batch = Matrix::from_rows(&rows);
            let l_ref = ae_ref.train_batch(&batch, &mut adam_ref);
            let l_ws = ae_ws.train_batch_ws(&batch, &mut adam_ws, &mut dy);
            assert_eq!(l_ref, l_ws, "losses diverged at batch {start}");
        }
        assert_eq!(
            serde_json::to_string(&ae_ref).unwrap(),
            serde_json::to_string(&ae_ws).unwrap(),
            "workspace training step diverged from the reference step"
        );
        let x = Matrix::zeros(2, 9);
        assert_eq!(ae_ref.encode(&x), ae_ws.encode(&x));
    }

    #[test]
    fn serde_round_trip_preserves_codes() {
        let mut rng = StdRng::seed_from_u64(5);
        let ae = Autoencoder::new(&[6, 3], Activation::ELU, &mut rng);
        let json = serde_json::to_string(&ae).unwrap();
        let restored: Autoencoder = serde_json::from_str(&json).unwrap();
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(ae.encode(&x), restored.encode(&x));
    }
}
