//! Weight initialization schemes.

use crate::matrix::Matrix;
use rand::Rng;

/// Initialization scheme for layer weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Constant value.
    Constant(f32),
    /// Gaussian with the given mean and standard deviation.
    Normal { mean: f32, std: f32 },
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// Suited to tanh/sigmoid/linear layers.
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU/ELU layers.
    HeNormal,
}

impl Init {
    /// Samples a `rows x cols` matrix. `rows` is treated as fan-in and
    /// `cols` as fan-out (weights are stored input-major in this crate).
    pub fn sample(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let fan_in = rows.max(1) as f32;
        let fan_out = cols.max(1) as f32;
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Constant(c) => Matrix::filled(rows, cols, c),
            Init::Normal { mean, std } => {
                let mut m = Matrix::zeros(rows, cols);
                for x in m.as_mut_slice() {
                    *x = mean + std * sample_standard_normal(rng);
                }
                m
            }
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out)).sqrt();
                let mut m = Matrix::zeros(rows, cols);
                for x in m.as_mut_slice() {
                    *x = rng.gen_range(-a..=a);
                }
                m
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in).sqrt();
                let mut m = Matrix::zeros(rows, cols);
                for x in m.as_mut_slice() {
                    *x = std * sample_standard_normal(rng);
                }
                m
            }
        }
    }
}

/// Samples a standard normal variate via the Box-Muller transform.
///
/// Implemented locally so the crate needs only `rand`'s uniform sampling.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Init::Zeros.sample(4, 5, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn constant_init_fills_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Init::Constant(0.1).sample(2, 2, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (x - 0.1).abs() < 1e-7));
    }

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let (fan_in, fan_out) = (30, 15);
        let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        let m = Init::XavierUniform.sample(fan_in, fan_out, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
        // Not degenerate: at least two distinct values.
        assert!(m.as_slice().iter().any(|&x| x != m.as_slice()[0]));
    }

    #[test]
    fn he_normal_has_plausible_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = Init::HeNormal.sample(100, 100, &mut rng);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / (m.len() as f32);
        let expected = 2.0 / 100.0;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var - expected).abs() < expected * 0.2,
            "variance {var} far from {expected}"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn samples_are_always_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }
}
