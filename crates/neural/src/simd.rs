//! Runtime-dispatched SIMD kernels for the matrix hot loops.
//!
//! Only operations that are **bitwise identical** to their scalar
//! counterparts are provided: SIMD lanes hold independent output elements,
//! each lane performs the same IEEE-754 single-precision multiply-then-add
//! sequence as the scalar loop (no FMA contraction, and no reassociation
//! across the reduction dimension — every output element accumulates its
//! products in ascending-`k` order into a single chain). This keeps every
//! determinism and batched-equivalence guarantee in the workspace intact
//! while substantially raising GEMM throughput on AVX machines.
//!
//! On non-x86_64 targets (or CPUs without AVX) everything falls back to
//! scalar loops with the identical accumulation order.

/// `dst[j] += alpha * src[j]` — `Matrix::axpy` and friends.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub(crate) fn add_scaled(dst: &mut [f32], src: &[f32], alpha: f32) {
    assert_eq!(dst.len(), src.len(), "add_scaled length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if avx_available() {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { add_scaled_avx(dst, src, alpha) };
            return;
        }
    }
    add_scaled_scalar(dst, src, alpha);
}

#[inline]
fn add_scaled_scalar(dst: &mut [f32], src: &[f32], alpha: f32) {
    for (o, &b) in dst.iter_mut().zip(src) {
        *o += alpha * b;
    }
}

/// One output row of a GEMM: `o_row[j] += Σ_k coeff(k) · b[k·ldb + j]`,
/// where `coeff(k) = a[k · a_stride]` and the sum runs `k = 0..k_count` in
/// ascending order (zero coefficients skipped, as in the scalar kernels).
///
/// `matmul` uses `a_stride == 1` (a row of the left operand); `matmul_tn`
/// uses `a_stride == cols` (a column). The SIMD path tiles `j` and keeps
/// the accumulators in registers across the whole `k` loop, which is what
/// makes it faster than per-`k` axpys — the store/reload of the output row
/// disappears. Accumulation order per element is unchanged.
///
/// # Panics
///
/// Panics if the coefficient or `b` slices are too short for the given
/// strides and widths.
#[inline]
pub(crate) fn gemm_row(
    a: &[f32],
    a_stride: usize,
    k_count: usize,
    b: &[f32],
    ldb: usize,
    o_row: &mut [f32],
) {
    if k_count == 0 {
        return;
    }
    assert!(
        a.len() > (k_count - 1) * a_stride,
        "coefficient slice too short"
    );
    assert!(
        b.len() >= (k_count - 1) * ldb + o_row.len(),
        "b slice too short"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if avx_available() {
            // SAFETY: AVX verified at runtime; bounds asserted above.
            unsafe { gemm_row_avx(a, a_stride, k_count, b, ldb, o_row) };
            return;
        }
    }
    gemm_row_scalar(a, a_stride, k_count, b, ldb, o_row);
}

#[inline]
fn gemm_row_scalar(
    a: &[f32],
    a_stride: usize,
    k_count: usize,
    b: &[f32],
    ldb: usize,
    o_row: &mut [f32],
) {
    let w = o_row.len();
    for k in 0..k_count {
        let aik = a[k * a_stride];
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[k * ldb..k * ldb + w];
        add_scaled_scalar(o_row, b_row, aik);
    }
}

#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    use std::sync::OnceLock;
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::is_x86_feature_detected!("avx"))
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

/// In-place ELU over a slice: `x` for `x ≥ 0`, `α(e^x - 1)` otherwise,
/// with `e^x` the [`crate::fastmath::exp`] kernel. The AVX2 path runs the
/// identical operation sequence eight lanes at a time, so scalar and
/// vector results agree bit for bit.
#[inline]
pub(crate) fn elu_inplace(xs: &mut [f32], alpha: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { elu_inplace_avx2(xs, alpha) };
            return;
        }
    }
    for x in xs {
        if *x < 0.0 {
            *x = alpha * (crate::fastmath::exp(*x) - 1.0);
        }
    }
}

/// In-place logistic sigmoid over a slice (see [`elu_inplace`] on the
/// scalar/vector bitwise agreement).
#[inline]
pub(crate) fn sigmoid_inplace(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { sigmoid_inplace_avx2(xs) };
            return;
        }
    }
    for x in xs {
        *x = crate::fastmath::sigmoid(*x);
    }
}

/// In-place tanh over a slice (see [`elu_inplace`] on the scalar/vector
/// bitwise agreement).
#[inline]
pub(crate) fn tanh_inplace(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { tanh_inplace_avx2(xs) };
            return;
        }
    }
    for x in xs {
        *x = crate::fastmath::tanh(*x);
    }
}

/// Eight-lane mirror of [`crate::fastmath::exp`]: the same clamp,
/// magic-constant round, two-part ln2 reduction, Horner polynomial, and
/// exponent-bit scaling, in the same order — each lane is bitwise
/// identical to the scalar kernel (every op involved is exactly rounded,
/// and `cvtps` on the already-integral `kf` is exact).
///
/// # Safety
///
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn exp256(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let magic = _mm256_set1_ps(12_582_912.0);
    let x = _mm256_max_ps(
        _mm256_set1_ps(-87.0),
        _mm256_min_ps(_mm256_set1_ps(88.0), x),
    );
    let kf = _mm256_sub_ps(
        _mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(crate::fastmath::LOG2_E)),
            magic,
        ),
        magic,
    );
    let r = _mm256_sub_ps(
        _mm256_sub_ps(
            x,
            _mm256_mul_ps(kf, _mm256_set1_ps(crate::fastmath::LN2_HI)),
        ),
        _mm256_mul_ps(kf, _mm256_set1_ps(crate::fastmath::LN2_LO)),
    );
    // p = 1 + r(1 + r(1/2 + r(1/6 + r(1/24 + r(1/120 + r·(1/720))))))
    let mut p = _mm256_mul_ps(r, _mm256_set1_ps(1.0 / 720.0));
    p = _mm256_mul_ps(r, _mm256_add_ps(_mm256_set1_ps(1.0 / 120.0), p));
    p = _mm256_mul_ps(r, _mm256_add_ps(_mm256_set1_ps(1.0 / 24.0), p));
    p = _mm256_mul_ps(r, _mm256_add_ps(_mm256_set1_ps(1.0 / 6.0), p));
    p = _mm256_mul_ps(r, _mm256_add_ps(_mm256_set1_ps(0.5), p));
    p = _mm256_mul_ps(r, _mm256_add_ps(_mm256_set1_ps(1.0), p));
    p = _mm256_add_ps(_mm256_set1_ps(1.0), p);
    let k = _mm256_cvtps_epi32(kf);
    let two_k = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        k,
        _mm256_set1_epi32(127),
    )));
    _mm256_mul_ps(two_k, p)
}

/// # Safety
///
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn elu_inplace_avx2(xs: &mut [f32], alpha: f32) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let zero = _mm256_setzero_ps();
    let one = _mm256_set1_ps(1.0);
    let al = _mm256_set1_ps(alpha);
    let mut j = 0;
    while j + 8 <= n {
        let x = _mm256_loadu_ps(xs.as_ptr().add(j));
        let neg = _mm256_mul_ps(al, _mm256_sub_ps(exp256(x), one));
        let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
        _mm256_storeu_ps(xs.as_mut_ptr().add(j), _mm256_blendv_ps(neg, x, keep));
        j += 8;
    }
    for x in &mut xs[j..] {
        if *x < 0.0 {
            *x = alpha * (crate::fastmath::exp(*x) - 1.0);
        }
    }
}

/// # Safety
///
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sigmoid_inplace_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let one = _mm256_set1_ps(1.0);
    let sign = _mm256_set1_ps(-0.0);
    let mut j = 0;
    while j + 8 <= n {
        let x = _mm256_loadu_ps(xs.as_ptr().add(j));
        // 1 / (1 + exp(-x))
        let e = exp256(_mm256_xor_ps(x, sign));
        let y = _mm256_div_ps(one, _mm256_add_ps(one, e));
        _mm256_storeu_ps(xs.as_mut_ptr().add(j), y);
        j += 8;
    }
    for x in &mut xs[j..] {
        *x = crate::fastmath::sigmoid(*x);
    }
}

/// # Safety
///
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tanh_inplace_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let sign = _mm256_set1_ps(-0.0);
    let one = _mm256_set1_ps(1.0);
    let two = _mm256_set1_ps(2.0);
    let mut j = 0;
    while j + 8 <= n {
        let x = _mm256_loadu_ps(xs.as_ptr().add(j));
        let ax = _mm256_andnot_ps(sign, x);
        let sx = _mm256_and_ps(sign, x);
        // Polynomial branch (|x| < 0.625): x + x·z·P(z), z = x².
        let z = _mm256_mul_ps(x, x);
        let mut p = _mm256_add_ps(
            _mm256_mul_ps(_mm256_set1_ps(-5.704_988_7e-3), z),
            _mm256_set1_ps(2.063_908_8e-2),
        );
        p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(-5.373_971_5e-2));
        p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(1.333_144_2e-1));
        p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(-3.333_328e-1));
        p = _mm256_mul_ps(p, z);
        let poly = _mm256_add_ps(x, _mm256_mul_ps(x, p));
        // Exp branch: sign(x) · (1 - 2/(exp(2|x|) + 1)).
        let t = exp256(_mm256_mul_ps(two, ax));
        let ye = _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(t, one)));
        let ye = _mm256_or_ps(ye, sx);
        // Saturation branch (|x| > 9): ±1.
        let ys = _mm256_or_ps(one, sx);
        let big = _mm256_cmp_ps::<_CMP_GT_OQ>(ax, _mm256_set1_ps(9.0));
        let small = _mm256_cmp_ps::<_CMP_LT_OQ>(ax, _mm256_set1_ps(0.625));
        let y = _mm256_blendv_ps(_mm256_blendv_ps(ye, ys, big), poly, small);
        _mm256_storeu_ps(xs.as_mut_ptr().add(j), y);
        j += 8;
    }
    for x in &mut xs[j..] {
        *x = crate::fastmath::tanh(*x);
    }
}

/// # Safety
///
/// The caller must ensure the CPU supports AVX and that the slices cover
/// the strides/widths (asserted by [`gemm_row`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn gemm_row_avx(
    a: &[f32],
    a_stride: usize,
    k_count: usize,
    b: &[f32],
    ldb: usize,
    o_row: &mut [f32],
) {
    use std::arch::x86_64::*;
    let n = o_row.len();
    let op = o_row.as_mut_ptr();
    let bp0 = b.as_ptr();
    let mut j = 0;
    // 64-wide then 32-wide j-tiles: the YMM accumulators live in registers
    // across the entire k loop, so the output row is loaded and stored
    // exactly once, and eight independent add chains hide the FP-add
    // latency of the in-order per-element accumulation.
    while j + 64 <= n {
        let mut acc0 = _mm256_loadu_ps(op.add(j));
        let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
        let mut acc2 = _mm256_loadu_ps(op.add(j + 16));
        let mut acc3 = _mm256_loadu_ps(op.add(j + 24));
        let mut acc4 = _mm256_loadu_ps(op.add(j + 32));
        let mut acc5 = _mm256_loadu_ps(op.add(j + 40));
        let mut acc6 = _mm256_loadu_ps(op.add(j + 48));
        let mut acc7 = _mm256_loadu_ps(op.add(j + 56));
        for k in 0..k_count {
            let aik = *a.get_unchecked(k * a_stride);
            if aik == 0.0 {
                continue;
            }
            let av = _mm256_set1_ps(aik);
            let bp = bp0.add(k * ldb + j);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(bp)));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(8))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(16))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(24))));
            acc4 = _mm256_add_ps(acc4, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(32))));
            acc5 = _mm256_add_ps(acc5, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(40))));
            acc6 = _mm256_add_ps(acc6, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(48))));
            acc7 = _mm256_add_ps(acc7, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(56))));
        }
        _mm256_storeu_ps(op.add(j), acc0);
        _mm256_storeu_ps(op.add(j + 8), acc1);
        _mm256_storeu_ps(op.add(j + 16), acc2);
        _mm256_storeu_ps(op.add(j + 24), acc3);
        _mm256_storeu_ps(op.add(j + 32), acc4);
        _mm256_storeu_ps(op.add(j + 40), acc5);
        _mm256_storeu_ps(op.add(j + 48), acc6);
        _mm256_storeu_ps(op.add(j + 56), acc7);
        j += 64;
    }
    while j + 32 <= n {
        let mut acc0 = _mm256_loadu_ps(op.add(j));
        let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
        let mut acc2 = _mm256_loadu_ps(op.add(j + 16));
        let mut acc3 = _mm256_loadu_ps(op.add(j + 24));
        for k in 0..k_count {
            let aik = *a.get_unchecked(k * a_stride);
            if aik == 0.0 {
                continue;
            }
            let av = _mm256_set1_ps(aik);
            let bp = bp0.add(k * ldb + j);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(bp)));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(8))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(16))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(24))));
        }
        _mm256_storeu_ps(op.add(j), acc0);
        _mm256_storeu_ps(op.add(j + 8), acc1);
        _mm256_storeu_ps(op.add(j + 16), acc2);
        _mm256_storeu_ps(op.add(j + 24), acc3);
        j += 32;
    }
    while j + 8 <= n {
        let mut acc = _mm256_loadu_ps(op.add(j));
        for k in 0..k_count {
            let aik = *a.get_unchecked(k * a_stride);
            if aik == 0.0 {
                continue;
            }
            let av = _mm256_set1_ps(aik);
            acc = _mm256_add_ps(
                acc,
                _mm256_mul_ps(av, _mm256_loadu_ps(bp0.add(k * ldb + j))),
            );
        }
        _mm256_storeu_ps(op.add(j), acc);
        j += 8;
    }
    while j + 4 <= n {
        let mut acc = _mm_loadu_ps(op.add(j));
        for k in 0..k_count {
            let aik = *a.get_unchecked(k * a_stride);
            if aik == 0.0 {
                continue;
            }
            let av = _mm_set1_ps(aik);
            acc = _mm_add_ps(acc, _mm_mul_ps(av, _mm_loadu_ps(bp0.add(k * ldb + j))));
        }
        _mm_storeu_ps(op.add(j), acc);
        j += 4;
    }
    if j < n {
        // Scalar tail, same k-ascending order per element.
        for k in 0..k_count {
            let aik = *a.get_unchecked(k * a_stride);
            if aik == 0.0 {
                continue;
            }
            for jj in j..n {
                *o_row.get_unchecked_mut(jj) += aik * *b.get_unchecked(k * ldb + jj);
            }
        }
    }
}

/// # Safety
///
/// The caller must ensure the CPU supports AVX and `dst.len() == src.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn add_scaled_avx(dst: &mut [f32], src: &[f32], alpha: f32) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let a = _mm256_set1_ps(alpha);
    let mut j = 0;
    // Eight lanes per step; each lane is one output element's own
    // mul-then-add, exactly as in the scalar loop.
    while j + 8 <= n {
        let b = _mm256_loadu_ps(src.as_ptr().add(j));
        let o = _mm256_loadu_ps(dst.as_ptr().add(j));
        let sum = _mm256_add_ps(o, _mm256_mul_ps(a, b));
        _mm256_storeu_ps(dst.as_mut_ptr().add(j), sum);
        j += 8;
    }
    add_scaled_scalar(&mut dst[j..], &src[j..], alpha);
}

/// One fused Adam update over a parameter tensor:
/// `m ← β₁m + (1-β₁)g`, `v ← β₂v + (1-β₂)g·g`,
/// `p ← p - lr·(m/bias₁) / (√(v/bias₂) + ε)`.
///
/// The SIMD path is bitwise identical to the scalar loop: every operation
/// involved (mul, add, sub, div, sqrt) is correctly rounded in both scalar
/// and vector form, and lanes are independent elements.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn adam_update(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
) {
    assert!(
        p.len() == g.len() && p.len() == m.len() && p.len() == v.len(),
        "adam_update length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if avx_available() {
            // SAFETY: AVX verified at runtime; lengths asserted above.
            unsafe { adam_update_avx(p, g, m, v, lr, b1, b2, eps, bias1, bias2) };
            return;
        }
    }
    adam_update_scalar(p, g, m, v, lr, b1, b2, eps, bias1, bias2);
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn adam_update_scalar(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
) {
    for ((pk, &gk), (mk, vk)) in p.iter_mut().zip(g).zip(m.iter_mut().zip(v.iter_mut())) {
        *mk = b1 * *mk + (1.0 - b1) * gk;
        *vk = b2 * *vk + (1.0 - b2) * gk * gk;
        let m_hat = *mk / bias1;
        let v_hat = *vk / bias2;
        *pk -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// # Safety
///
/// The caller must ensure the CPU supports AVX and that all slices have
/// equal length (asserted by [`adam_update`]).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx")]
unsafe fn adam_update_avx(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
) {
    use std::arch::x86_64::*;
    let n = p.len();
    let b1v = _mm256_set1_ps(b1);
    let b2v = _mm256_set1_ps(b2);
    let one_m_b1 = _mm256_set1_ps(1.0 - b1);
    let one_m_b2 = _mm256_set1_ps(1.0 - b2);
    let lrv = _mm256_set1_ps(lr);
    let epsv = _mm256_set1_ps(eps);
    let bias1v = _mm256_set1_ps(bias1);
    let bias2v = _mm256_set1_ps(bias2);
    let mut j = 0;
    while j + 8 <= n {
        let gk = _mm256_loadu_ps(g.as_ptr().add(j));
        let mk = _mm256_add_ps(
            _mm256_mul_ps(b1v, _mm256_loadu_ps(m.as_ptr().add(j))),
            _mm256_mul_ps(one_m_b1, gk),
        );
        // (1-b2)*gk*gk evaluated as ((1-b2)*gk)*gk, matching the scalar.
        let vk = _mm256_add_ps(
            _mm256_mul_ps(b2v, _mm256_loadu_ps(v.as_ptr().add(j))),
            _mm256_mul_ps(_mm256_mul_ps(one_m_b2, gk), gk),
        );
        _mm256_storeu_ps(m.as_mut_ptr().add(j), mk);
        _mm256_storeu_ps(v.as_mut_ptr().add(j), vk);
        let m_hat = _mm256_div_ps(mk, bias1v);
        let v_hat = _mm256_div_ps(vk, bias2v);
        let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), epsv);
        let step = _mm256_div_ps(_mm256_mul_ps(lrv, m_hat), denom);
        let pk = _mm256_sub_ps(_mm256_loadu_ps(p.as_ptr().add(j)), step);
        _mm256_storeu_ps(p.as_mut_ptr().add(j), pk);
        j += 8;
    }
    adam_update_scalar(
        &mut p[j..],
        &g[j..],
        &mut m[j..],
        &mut v[j..],
        lr,
        b1,
        b2,
        eps,
        bias1,
        bias2,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_scaled_matches_scalar_for_all_remainder_lengths() {
        // Lengths 0..40 cover every remainder class around the 8-lane width.
        for n in 0..40usize {
            let src: Vec<f32> = (0..n).map(|i| (i as f32 - 7.5) * 0.3).collect();
            let mut fast: Vec<f32> = (0..n).map(|i| (i as f32) * 0.11 - 1.0).collect();
            let mut slow = fast.clone();
            add_scaled(&mut fast, &src, -1.37);
            add_scaled_scalar(&mut slow, &src, -1.37);
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn gemm_row_matches_scalar_across_widths_strides_and_zeros() {
        // Widths cover the 32-tile, 8-tile, and scalar-tail paths; strides
        // cover the matmul (1) and matmul_tn (column) access patterns.
        for &w in &[1usize, 5, 8, 15, 32, 39, 64, 71] {
            for &stride in &[1usize, 3] {
                for k_count in [1usize, 2, 7] {
                    let a: Vec<f32> = (0..(k_count - 1) * stride + 1)
                        .map(|i| {
                            if i % 4 == 0 {
                                0.0
                            } else {
                                (i as f32) * 0.17 - 1.1
                            }
                        })
                        .collect();
                    let b: Vec<f32> = (0..(k_count - 1) * w + w)
                        .map(|i| (i as f32) * 0.07 - 2.3)
                        .collect();
                    let mut fast: Vec<f32> = (0..w).map(|i| i as f32 * 0.01).collect();
                    let mut slow = fast.clone();
                    gemm_row(&a, stride, k_count, &b, w, &mut fast);
                    gemm_row_scalar(&a, stride, k_count, &b, w, &mut slow);
                    for (x, y) in fast.iter().zip(&slow) {
                        assert_eq!(x.to_bits(), y.to_bits(), "w={w} stride={stride}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "add_scaled length mismatch")]
    fn mismatched_lengths_rejected() {
        add_scaled(&mut [0.0], &[1.0, 2.0], 1.0);
    }

    #[test]
    fn activation_kernels_match_scalar_bitwise_for_all_remainder_lengths() {
        // Lengths straddle the 8-lane width so both the vector body and the
        // scalar tail are exercised; values cover every tanh branch
        // (polynomial, exp formulation, saturation) and the ELU sign split.
        for n in 0..40usize {
            let base: Vec<f32> = (0..n)
                .map(|i| (i as f32 - 17.0) * 0.61 + if i % 3 == 0 { 0.013 } else { -0.27 })
                .collect();
            let mut elu_fast = base.clone();
            elu_inplace(&mut elu_fast, 1.0);
            let mut sig_fast = base.clone();
            sigmoid_inplace(&mut sig_fast);
            let mut tanh_fast = base.clone();
            tanh_inplace(&mut tanh_fast);
            for (i, &x) in base.iter().enumerate() {
                let elu_ref = if x < 0.0 {
                    crate::fastmath::exp(x) - 1.0
                } else {
                    x
                };
                assert_eq!(elu_fast[i].to_bits(), elu_ref.to_bits(), "elu n={n} i={i}");
                assert_eq!(
                    sig_fast[i].to_bits(),
                    crate::fastmath::sigmoid(x).to_bits(),
                    "sigmoid n={n} i={i}"
                );
                assert_eq!(
                    tanh_fast[i].to_bits(),
                    crate::fastmath::tanh(x).to_bits(),
                    "tanh n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn adam_update_matches_scalar_bitwise() {
        for n in [1usize, 7, 8, 9, 31, 64] {
            let g: Vec<f32> = (0..n).map(|i| (i as f32 - 3.0) * 0.21).collect();
            let mut p1: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
            let mut m1: Vec<f32> = (0..n).map(|i| i as f32 * -0.03).collect();
            let mut v1: Vec<f32> = (0..n).map(|i| i as f32 * 0.02).collect();
            let (mut p2, mut m2, mut v2) = (p1.clone(), m1.clone(), v1.clone());
            adam_update(
                &mut p1, &g, &mut m1, &mut v1, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.002,
            );
            adam_update_scalar(
                &mut p2, &g, &mut m2, &mut v2, 1e-3, 0.9, 0.999, 1e-8, 0.1, 0.002,
            );
            for (a, b) in p1
                .iter()
                .zip(&p2)
                .chain(m1.iter().zip(&m2))
                .chain(v1.iter().zip(&v2))
            {
                assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
            }
        }
    }
}
