//! Long short-term memory (LSTM) cell and sequence network with truncated
//! back-propagation through time (BPTT).
//!
//! The paper's workload predictor (Fig. 7) is an unrolled LSTM: an input
//! hidden layer, an LSTM cell layer with 30 hidden units shared across all
//! time steps, and an output hidden layer. [`LstmNetwork`] reproduces that
//! exact topology.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::init::Init;
use crate::matrix::Matrix;
use crate::optim::Trainable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cached values for one time step of one forward pass.
///
/// The four post-activation gates stay packed in one `n x 4*hidden` matrix
/// (`[i | f | o | g]` blocks) instead of four separate matrices — the
/// backward pass reads them sliced in place, halving the per-step
/// allocation count on the online-predictor hot path.
#[derive(Debug, Clone, Default)]
struct StepCache {
    z: Matrix,      // [n x (input + hidden)]  concatenated input
    gates: Matrix,  // [n x 4*hidden]  post-activation [i | f | o | g]
    c_prev: Matrix, // previous cell state
    tanh_c: Matrix, // tanh of new cell state
}

/// Scratch buffers for the fused sequence training path
/// ([`LstmCell::forward_sequence`] / [`LstmCell::backward_sequence`]):
/// every per-step temporary the step-by-step path allocates lives here
/// instead, resized in place across steps and sweeps.
#[derive(Debug, Clone, Default)]
struct CellWorkspace {
    /// Running hidden/cell state during a fused forward sweep.
    state: LstmState,
    /// Hidden-state gradient flowing backward through time.
    dh: Matrix,
    /// Cell-state gradient flowing backward through time.
    dc: Matrix,
    /// Next (earlier-step) cell-state gradient; swapped with `dc`.
    dc_next: Matrix,
    /// Packed pre-activation gate gradients `[da_i | da_f | da_o | da_g]`.
    da: Matrix,
    /// Concatenated-input gradient (`da * W^T`).
    dz: Matrix,
    /// Transposed gate weights, refreshed once per sweep.
    w_t: Matrix,
    /// Bias-gradient staging buffer.
    rowsum: Matrix,
    /// Concatenated inputs of every step, stacked in backward processing
    /// order for the deferred weight-gradient GEMM.
    z_stack: Matrix,
    /// Pre-activation gate gradients of every step, stacked alongside
    /// `z_stack`.
    da_stack: Matrix,
}

/// Hidden and cell state of an LSTM, batch-major.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LstmState {
    /// Hidden state `h`, shape `n x hidden`.
    pub h: Matrix,
    /// Cell state `c`, shape `n x hidden`.
    pub c: Matrix,
}

impl LstmState {
    /// Zero state for a batch of `n` sequences (the paper initializes the
    /// LSTM state to zero).
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        Self {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

/// A single LSTM cell with weights shared across time steps.
///
/// Gate weights are packed into one `(input + hidden) x 4*hidden` matrix in
/// `[i | f | o | g]` order; the forget-gate bias is initialized to 1, a
/// standard trick that eases gradient flow early in training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    input_size: usize,
    hidden_size: usize,
    w: Matrix,
    b: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    #[serde(skip)]
    cache: Vec<StepCache>,
    #[serde(skip)]
    spare: Vec<StepCache>,
    #[serde(skip)]
    ws: CellWorkspace,
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized gate weights.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> Self {
        let w = Init::XavierUniform.sample(input_size + hidden_size, 4 * hidden_size, rng);
        let mut b = Matrix::zeros(1, 4 * hidden_size);
        // Forget-gate bias = 1.
        for j in hidden_size..2 * hidden_size {
            b.as_mut_slice()[j] = 1.0;
        }
        Self {
            input_size,
            hidden_size,
            grad_w: Matrix::zeros(w.rows(), w.cols()),
            grad_b: Matrix::zeros(1, 4 * hidden_size),
            w,
            b,
            cache: Vec::new(),
            spare: Vec::new(),
            ws: CellWorkspace::default(),
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Activates one packed gate row in place: sigmoid on the `[i | f | o]`
    /// blocks, tanh on `g`. The single definition shared by every forward
    /// path (training, inference, fused sequence).
    #[inline]
    fn activate_gate_row(row: &mut [f32], hw: usize) {
        Activation::Sigmoid.apply_slice(&mut row[..3 * hw]);
        Activation::Tanh.apply_slice(&mut row[3 * hw..]);
    }

    /// The cell update for one row, in place: on entry `c` holds `c_prev`,
    /// on exit `c[j] = f∘c_prev + i∘g` (each element is read before it is
    /// written). Shared by every forward path.
    #[inline]
    fn cell_update_row(gr: &[f32], hw: usize, c: &mut [f32]) {
        for (j, cj) in c.iter_mut().enumerate() {
            *cj = gr[hw + j] * *cj + gr[j] * gr[3 * hw + j];
        }
    }

    /// The hidden-state output for one row: `h[j] = o∘tanh_c`. Shared by
    /// every forward path.
    #[inline]
    fn hidden_row(gr: &[f32], hw: usize, tanh_c: &[f32], h: &mut [f32]) {
        for (j, hj) in h.iter_mut().enumerate() {
            *hj = gr[2 * hw + j] * tanh_c[j];
        }
    }

    /// All four gate pre-activations in one GEMM, activated in place.
    fn gates(&self, z: &Matrix) -> Matrix {
        let mut a = z.matmul(&self.w);
        a.add_row_broadcast(&self.b);
        let h = self.hidden_size;
        for r in 0..a.rows() {
            Self::activate_gate_row(a.row_mut(r), h);
        }
        a
    }

    /// The elementwise tail of one step: `c = f∘c_prev + i∘g`,
    /// `tanh_c = tanh(c)`, `h = o∘tanh_c` — fused into one pass with the
    /// exact per-element expressions of the former hadamard/add chain.
    fn step_outputs(&self, gates: &Matrix, c_prev: &Matrix) -> (Matrix, Matrix, Matrix) {
        let hw = self.hidden_size;
        let n = gates.rows();
        let mut c = c_prev.clone();
        let mut h = Matrix::zeros(n, hw);
        for r in 0..n {
            Self::cell_update_row(gates.row(r), hw, c.row_mut(r));
        }
        let mut tanh_c = c.clone();
        Activation::Tanh.apply_slice(tanh_c.as_mut_slice());
        for r in 0..n {
            Self::hidden_row(gates.row(r), hw, tanh_c.row(r), h.row_mut(r));
        }
        (c, tanh_c, h)
    }

    /// One forward time step without caching (inference).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n x input_size` or `state` does not match.
    pub fn infer_step(&self, x: &Matrix, state: &LstmState) -> LstmState {
        let z = Matrix::hcat(&[x, &state.h]);
        let gates = self.gates(&z);
        let (c, _tanh_c, h) = self.step_outputs(&gates, &state.c);
        LstmState { h, c }
    }

    /// Runs a whole batch-1 sequence (rows of `proj` = time steps) through
    /// the cell without caching, reusing one set of step buffers across
    /// the loop — zero allocations per step. Produces exactly the state
    /// [`LstmCell::infer_step`] iteration would (same kernels, same
    /// elementwise expressions; the in-place `c` update reads each element
    /// before writing it).
    ///
    /// # Panics
    ///
    /// Panics if `proj` is empty or its width is not the cell input size.
    pub fn infer_sequence(&self, proj: &Matrix) -> LstmState {
        assert!(proj.rows() > 0, "LSTM needs at least one time step");
        assert_eq!(proj.cols(), self.input_size, "sequence width mismatch");
        let hw = self.hidden_size;
        let iw = self.input_size;
        let mut z = Matrix::zeros(1, iw + hw);
        let mut a = Matrix::zeros(1, 4 * hw);
        let mut state = LstmState::zeros(1, hw);
        let mut tanh_c = Matrix::zeros(1, hw);
        for t in 0..proj.rows() {
            let zr = z.row_mut(0);
            zr[..iw].copy_from_slice(proj.row(t));
            zr[iw..].copy_from_slice(state.h.row(0));
            z.matmul_into(&self.w, &mut a);
            a.add_row_broadcast(&self.b);
            Self::activate_gate_row(a.row_mut(0), hw);
            Self::cell_update_row(a.row(0), hw, state.c.row_mut(0));
            tanh_c.row_mut(0).copy_from_slice(state.c.row(0));
            Activation::Tanh.apply_slice(tanh_c.row_mut(0));
            Self::hidden_row(a.row(0), hw, tanh_c.row(0), state.h.row_mut(0));
        }
        state
    }

    /// Runs a whole batch-1 sequence (rows of `proj` = time steps) through
    /// the cell *with* caching for BPTT — the training twin of
    /// [`LstmCell::infer_sequence`]. Per-step cache entries come from an
    /// internal spare pool (returned by [`LstmCell::backward_sequence`] or
    /// [`LstmCell::clear_cache`]) and are overwritten in place, so
    /// steady-state training allocates nothing per step. Bitwise identical
    /// to iterating [`LstmCell::forward_step`] from a zero state, which
    /// stays as the allocating reference path.
    ///
    /// The returned state reference is valid until the next forward call on
    /// this cell.
    ///
    /// # Panics
    ///
    /// Panics if `proj` is empty or its width is not the cell input size.
    pub fn forward_sequence(&mut self, proj: &Matrix) -> &LstmState {
        assert!(proj.rows() > 0, "LSTM needs at least one time step");
        assert_eq!(proj.cols(), self.input_size, "sequence width mismatch");
        let hw = self.hidden_size;
        let iw = self.input_size;
        self.ws.state.h.resize_to(1, hw);
        self.ws.state.c.resize_to(1, hw);
        for t in 0..proj.rows() {
            let mut s = self.spare.pop().unwrap_or_default();
            s.z.resize_to(1, iw + hw);
            {
                let zr = s.z.row_mut(0);
                zr[..iw].copy_from_slice(proj.row(t));
                zr[iw..].copy_from_slice(self.ws.state.h.row(0));
            }
            s.z.matmul_into(&self.w, &mut s.gates);
            s.gates.add_row_broadcast(&self.b);
            Self::activate_gate_row(s.gates.row_mut(0), hw);
            s.c_prev.copy_from(&self.ws.state.c);
            Self::cell_update_row(s.gates.row(0), hw, self.ws.state.c.row_mut(0));
            s.tanh_c.copy_from(&self.ws.state.c);
            Activation::Tanh.apply_slice(s.tanh_c.as_mut_slice());
            Self::hidden_row(
                s.gates.row(0),
                hw,
                s.tanh_c.row(0),
                self.ws.state.h.row_mut(0),
            );
            self.cache.push(s);
        }
        &self.ws.state
    }

    /// BPTT over every step cached by [`LstmCell::forward_sequence`],
    /// consuming the whole cache in one sweep: `dh_last` is the gradient
    /// w.r.t. the final hidden state, and the per-step input gradients are
    /// stacked into `dproj` (row `t` = step `t`, resized in place). All
    /// temporaries live in recycled workspace buffers and consumed cache
    /// entries return to the spare pool. Parameter gradients and `dproj`
    /// are bitwise identical to the [`LstmCell::backward_step_with`] loop
    /// this replaces.
    ///
    /// # Panics
    ///
    /// Panics if no cached steps are pending.
    pub fn backward_sequence(&mut self, dh_last: &Matrix, dproj: &mut Matrix) {
        let steps = self.cache.len();
        assert!(
            steps > 0,
            "LstmCell::backward_sequence without a matching forward_sequence"
        );
        let hw = self.hidden_size;
        let iw = self.input_size;
        let n = dh_last.rows();
        dproj.resize_to(steps, iw);
        // The gate weights are constant across the sweep: transpose once.
        self.w.transpose_into(&mut self.ws.w_t);
        self.ws.dh.copy_from(dh_last);
        self.ws.dc.resize_to(n, hw);
        self.ws.z_stack.resize_to(steps * n, iw + hw);
        self.ws.da_stack.resize_to(steps * n, 4 * hw);
        for t in (0..steps).rev() {
            let s = self.cache.pop().expect("steps counted above");
            // Same fused per-element expressions as `backward_step_with`.
            self.ws.da.resize_to(n, 4 * hw);
            self.ws.dc_next.resize_to(n, hw);
            for r in 0..n {
                let gr = s.gates.row(r);
                let (dhr, dcr) = (self.ws.dh.row(r), self.ws.dc.row(r));
                let (tcr, cpr) = (s.tanh_c.row(r), s.c_prev.row(r));
                let dar = self.ws.da.row_mut(r);
                let dcp = self.ws.dc_next.row_mut(r);
                for j in 0..hw {
                    let (i, f, o, g) = (gr[j], gr[hw + j], gr[2 * hw + j], gr[3 * hw + j]);
                    let tc = tcr[j];
                    let dc_total = dhr[j] * o * (1.0 - tc * tc) + 1.0 * dcr[j];
                    dar[j] = dc_total * g * i * (1.0 - i);
                    dar[hw + j] = dc_total * cpr[j] * f * (1.0 - f);
                    dar[2 * hw + j] = dhr[j] * tc * o * (1.0 - o);
                    dar[3 * hw + j] = dc_total * i * (1.0 - g * g);
                    dcp[j] = dc_total * f;
                }
            }

            // Weight-gradient contributions are deferred: stacking every
            // step's `z`/`da` rows in processing order (latest step first)
            // and running ONE `a^T b` accumulation after the loop adds
            // exactly the same terms per element in exactly the same order
            // as a per-step rank-1 update here — but as a real GEMM with a
            // `steps`-deep reduction instead of `steps` memory-bound
            // rank-1 sweeps over the 4·hidden-wide gradient block.
            let idx = (steps - 1 - t) * n;
            self.ws.z_stack.as_mut_slice()[idx * (iw + hw)..(idx + n) * (iw + hw)]
                .copy_from_slice(s.z.as_slice());
            self.ws.da_stack.as_mut_slice()[idx * 4 * hw..(idx + n) * 4 * hw]
                .copy_from_slice(self.ws.da.as_slice());
            self.ws.da.sum_rows_into(&mut self.ws.rowsum);
            self.grad_b.axpy(1.0, &self.ws.rowsum);

            self.ws.da.matmul_into(&self.ws.w_t, &mut self.ws.dz);
            dproj.row_mut(t).copy_from_slice(&self.ws.dz.row(0)[..iw]);
            for r in 0..n {
                let src = &self.ws.dz.row(r)[iw..];
                self.ws.dh.row_mut(r).copy_from_slice(src);
            }
            std::mem::swap(&mut self.ws.dc, &mut self.ws.dc_next);
            self.spare.push(s);
        }
        self.grad_w
            .add_matmul_tn(&self.ws.z_stack, &self.ws.da_stack);
    }

    /// One forward time step with caching for BPTT.
    pub fn forward_step(&mut self, x: &Matrix, state: &LstmState) -> LstmState {
        let z = Matrix::hcat(&[x, &state.h]);
        let gates = self.gates(&z);
        let (c, tanh_c, h) = self.step_outputs(&gates, &state.c);
        self.cache.push(StepCache {
            z,
            gates,
            c_prev: state.c.clone(),
            tanh_c,
        });
        LstmState { h, c }
    }

    /// Back-propagates one time step (most recent cached step first).
    ///
    /// `dh` and `dc` are gradients w.r.t. this step's output hidden/cell
    /// state; returns `(dx, dh_prev, dc_prev)`.
    ///
    /// # Panics
    ///
    /// Panics if no cached step is pending.
    pub fn backward_step(&mut self, dh: &Matrix, dc: &Matrix) -> (Matrix, Matrix, Matrix) {
        let w_t = self.w.transpose();
        self.backward_step_with(dh, dc, &w_t)
    }

    /// [`LstmCell::backward_step`] with a caller-provided transpose of the
    /// gate weights, so one BPTT sweep transposes `W` once instead of once
    /// per time step (the weights do not change mid-sweep).
    ///
    /// # Panics
    ///
    /// Panics if no cached step is pending or `w_t` is not the transpose
    /// shape of the gate weights.
    pub fn backward_step_with(
        &mut self,
        dh: &Matrix,
        dc: &Matrix,
        w_t: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let s = self
            .cache
            .pop()
            .expect("LstmCell::backward_step without a matching forward_step");
        assert_eq!(
            w_t.shape(),
            (self.w.cols(), self.w.rows()),
            "w_t is not the gate-weight transpose"
        );
        let hw = self.hidden_size;
        let n = dh.rows();
        // One fused pass builds the packed pre-activation gate gradients
        // `da = [da_i | da_f | da_o | da_g]` and `dc_prev`, with the exact
        // per-element expressions of the former hadamard/zip chain:
        //   dc_total = dh∘o∘(1 - tanh_c²) + dc
        //   da_σ = ((dc_total∘·)∘σ)∘(1-σ),  da_g = (dc_total∘i)∘(1-g²)
        let mut da = Matrix::zeros(n, 4 * hw);
        let mut dc_prev = Matrix::zeros(n, hw);
        for r in 0..n {
            let gr = s.gates.row(r);
            let (dhr, dcr) = (dh.row(r), dc.row(r));
            let (tcr, cpr) = (s.tanh_c.row(r), s.c_prev.row(r));
            let dar = da.row_mut(r);
            let dcp = dc_prev.row_mut(r);
            for j in 0..hw {
                let (i, f, o, g) = (gr[j], gr[hw + j], gr[2 * hw + j], gr[3 * hw + j]);
                let tc = tcr[j];
                let dc_total = dhr[j] * o * (1.0 - tc * tc) + 1.0 * dcr[j];
                dar[j] = dc_total * g * i * (1.0 - i);
                dar[hw + j] = dc_total * cpr[j] * f * (1.0 - f);
                dar[2 * hw + j] = dhr[j] * tc * o * (1.0 - o);
                dar[3 * hw + j] = dc_total * i * (1.0 - g * g);
                dcp[j] = dc_total * f;
            }
        }

        self.grad_w.add_matmul_tn(&s.z, &da);
        self.grad_b.axpy(1.0, &da.sum_rows());

        let dz = da.matmul(w_t);
        let dx = dz.slice_cols(0, self.input_size);
        let dh_prev = dz.slice_cols(self.input_size, self.hidden_size);
        (dx, dh_prev, dc_prev)
    }

    /// Number of cached, un-consumed forward steps.
    pub fn pending_steps(&self) -> usize {
        self.cache.len()
    }

    /// Drops cached forward state. Buffers from fused-sequence forward
    /// calls return to the spare pool.
    pub fn clear_cache(&mut self) {
        self.spare.append(&mut self.cache);
    }
}

impl Trainable for LstmCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }

    fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.fill_zero();
    }
}

/// The paper's predictor topology: input hidden layer -> LSTM cell layer ->
/// output hidden layer, unrolled over a fixed look-back window.
///
/// The input/output layers use normal(0, 1) weight init with constant 0.1
/// bias, matching Section VI-A.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmNetwork {
    input_layer: Dense,
    cell: LstmCell,
    output_layer: Dense,
    /// Stacked per-step input-projection gradients, recycled across
    /// [`LstmNetwork::backward_seq`] sweeps.
    #[serde(skip)]
    dproj: Matrix,
}

impl LstmNetwork {
    /// Creates a network mapping sequences of `input_size`-wide vectors to a
    /// single `output_size`-wide prediction from the final hidden state.
    pub fn new(
        input_size: usize,
        proj_size: usize,
        hidden_size: usize,
        output_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let weight_init = Init::Normal {
            mean: 0.0,
            std: 1.0,
        };
        let bias_init = Init::Constant(0.1);
        Self {
            input_layer: Dense::with_bias(
                input_size,
                proj_size,
                Activation::Tanh,
                weight_init,
                bias_init,
                rng,
            ),
            cell: LstmCell::new(proj_size, hidden_size, rng),
            output_layer: Dense::with_bias(
                hidden_size,
                output_size,
                Activation::Linear,
                weight_init,
                bias_init,
                rng,
            ),
            dproj: Matrix::default(),
        }
    }

    /// The paper's exact configuration: scalar in/out, 30 hidden units.
    pub fn paper_predictor(rng: &mut impl Rng) -> Self {
        Self::new(1, 1, 30, 1, rng)
    }

    /// Input width per time step.
    pub fn input_size(&self) -> usize {
        self.input_layer.input_size()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.output_layer.output_size()
    }

    /// Hidden width of the LSTM cell.
    pub fn hidden_size(&self) -> usize {
        self.cell.hidden_size()
    }

    /// Predicts from a sequence without caching. `steps` holds one
    /// `n x input_size` matrix per time step; returns `n x output_size`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn infer(&self, steps: &[Matrix]) -> Matrix {
        assert!(!steps.is_empty(), "LSTM needs at least one time step");
        let n = steps[0].rows();
        let mut state = LstmState::zeros(n, self.cell.hidden_size());
        for x in steps {
            let proj = self.input_layer.infer(x);
            state = self.cell.infer_step(&proj, &state);
        }
        self.output_layer.infer(&state.h)
    }

    /// Convenience wrapper for scalar sequences: predicts the next value
    /// from a window of previous values.
    ///
    /// # Panics
    ///
    /// Panics if the network is not scalar-in/scalar-out or `window` is empty.
    pub fn predict_next(&self, window: &[f32]) -> f32 {
        assert_eq!(self.input_size(), 1, "predict_next requires scalar input");
        assert_eq!(self.output_size(), 1, "predict_next requires scalar output");
        let seq = Matrix::from_vec(window.len(), 1, window.to_vec());
        self.infer_seq(&seq).as_slice()[0]
    }

    /// Inference over a single (batch-1) sequence whose time steps are the
    /// rows of `seq`. The non-recurrent input projection runs as **one**
    /// GEMM over all steps (it is applied independently per step, and the
    /// kernels are row-independent, so results match the step-by-step
    /// path bitwise); only the recurrent cell iterates.
    ///
    /// # Panics
    ///
    /// Panics if `seq` has no rows.
    pub fn infer_seq(&self, seq: &Matrix) -> Matrix {
        assert!(seq.rows() > 0, "LSTM needs at least one time step");
        let proj = self.input_layer.infer(seq);
        let state = self.cell.infer_sequence(&proj);
        self.output_layer.infer(&state.h)
    }

    /// Training forward pass over a single (batch-1) sequence, the
    /// sequence-batched counterpart of [`LstmNetwork::forward`]: the input
    /// projection is one forward call (one cache entry) over all rows, the
    /// cell runs the fused [`LstmCell::forward_sequence`] sweep, and every
    /// per-step temporary lives in recycled workspace buffers. Bitwise
    /// identical to [`LstmNetwork::forward_seq_reference`], the retained
    /// allocating path. Must be paired with [`LstmNetwork::backward_seq`].
    ///
    /// # Panics
    ///
    /// Panics if `seq` has no rows.
    pub fn forward_seq(&mut self, seq: &Matrix) -> Matrix {
        assert!(seq.rows() > 0, "LSTM needs at least one time step");
        let proj = self.input_layer.forward_ws(seq);
        let state = self.cell.forward_sequence(proj);
        self.output_layer.forward_ws(&state.h).clone()
    }

    /// The original allocating `forward_seq` body, retained as the
    /// reference implementation the workspace path is tested against.
    #[doc(hidden)]
    pub fn forward_seq_reference(&mut self, seq: &Matrix) -> Matrix {
        assert!(seq.rows() > 0, "LSTM needs at least one time step");
        let proj = self.input_layer.forward(seq);
        let mut state = LstmState::zeros(1, self.cell.hidden_size());
        for t in 0..proj.rows() {
            state = self.cell.forward_step(&proj.row_matrix(t), &state);
        }
        self.output_layer.forward(&state.h)
    }

    /// BPTT for the most recent [`LstmNetwork::forward_seq`] call. The
    /// per-step input-projection gradients are stacked (in forward time
    /// order, matching the batched forward's row order) and back-propagated
    /// through the input layer in one call; nothing upstream consumes the
    /// input gradient, so it is never materialized. The whole sweep runs in
    /// recycled workspace buffers; gradients are bitwise identical to
    /// [`LstmNetwork::backward_seq_reference`], the retained allocating
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is pending.
    pub fn backward_seq(&mut self, grad_out: &Matrix) {
        let steps = self.cell.pending_steps();
        assert!(steps > 0, "LstmNetwork::backward without a forward pass");
        let dh = self.output_layer.backward_ws(grad_out);
        self.cell.backward_sequence(dh, &mut self.dproj);
        self.input_layer.backward_params_only_ws(&self.dproj);
    }

    /// The original allocating `backward_seq` body, retained as the
    /// reference implementation the workspace path is tested against.
    /// Pair with [`LstmNetwork::forward_seq_reference`].
    #[doc(hidden)]
    pub fn backward_seq_reference(&mut self, grad_out: &Matrix) {
        let mut dh = self.output_layer.backward(grad_out);
        let steps = self.cell.pending_steps();
        assert!(steps > 0, "LstmNetwork::backward without a forward pass");
        let mut dc = Matrix::zeros(1, self.cell.hidden_size());
        let w_t = self.cell.w.transpose();
        let mut dproj = Matrix::zeros(steps, self.cell.input_size());
        for t in (0..steps).rev() {
            let (dx, dh_prev, dc_prev) = self.cell.backward_step_with(&dh, &dc, &w_t);
            dproj.row_mut(t).copy_from_slice(dx.row(0));
            dh = dh_prev;
            dc = dc_prev;
        }
        self.input_layer.backward_params_only(&dproj);
    }

    /// Training forward pass; caches every step for [`LstmNetwork::backward`].
    pub fn forward(&mut self, steps: &[Matrix]) -> Matrix {
        assert!(!steps.is_empty(), "LSTM needs at least one time step");
        let n = steps[0].rows();
        let mut state = LstmState::zeros(n, self.cell.hidden_size());
        for x in steps {
            let proj = self.input_layer.forward(x);
            state = self.cell.forward_step(&proj, &state);
        }
        self.output_layer.forward(&state.h)
    }

    /// Back-propagates through time for the most recent forward pass,
    /// accumulating gradients in all three layers.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is pending.
    pub fn backward(&mut self, grad_out: &Matrix) {
        let mut dh = self.output_layer.backward(grad_out);
        let steps = self.cell.pending_steps();
        assert!(steps > 0, "LstmNetwork::backward without a forward pass");
        let n = dh.rows();
        let mut dc = Matrix::zeros(n, self.cell.hidden_size());
        // The gate weights are constant across the sweep: transpose once.
        let w_t = self.cell.w.transpose();
        for _ in 0..steps {
            let (dx, dh_prev, dc_prev) = self.cell.backward_step_with(&dh, &dc, &w_t);
            // Gradient w.r.t. the shared input layer at this time step;
            // nothing upstream consumes the input gradient.
            self.input_layer.backward_params_only(&dx);
            dh = dh_prev;
            dc = dc_prev;
        }
    }

    /// Drops cached forward state in all layers.
    pub fn clear_cache(&mut self) {
        self.input_layer.clear_cache();
        self.cell.clear_cache();
        self.output_layer.clear_cache();
    }

    /// Total number of learnable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.parameter_count()
    }
}

impl Trainable for LstmNetwork {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.input_layer.visit_params(f);
        self.cell.visit_params(f);
        self.output_layer.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.input_layer.zero_grad();
        self.cell.zero_grad();
        self.output_layer.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scalar_steps(values: &[f32]) -> Vec<Matrix> {
        values.iter().map(|&v| Matrix::row_vector(&[v])).collect()
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = LstmNetwork::new(1, 2, 4, 1, &mut rng);
        let steps = scalar_steps(&[0.1, 0.5, -0.2, 0.8]);
        let a = net.infer(&steps);
        let b = net.forward(&steps);
        assert!((a.as_slice()[0] - b.as_slice()[0]).abs() < 1e-6);
        net.clear_cache();
    }

    #[test]
    fn seq_paths_match_step_by_step_paths() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = LstmNetwork::new(1, 1, 8, 1, &mut rng);
        let values: Vec<f32> = (0..20)
            .map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.4)
            .collect();
        let steps = scalar_steps(&values);
        let seq = Matrix::from_vec(values.len(), 1, values.clone());
        // Inference: the fused zero-allocation sequence path must equal the
        // per-step path bitwise.
        assert_eq!(net.infer(&steps), net.infer_seq(&seq));
        // Training forward: batched input projection equals per-step.
        let a = net.forward(&steps);
        net.clear_cache();
        let b = net.forward_seq(&seq);
        net.clear_cache();
        assert_eq!(a, b);
    }

    #[test]
    fn workspace_seq_training_is_bitwise_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut reference = LstmNetwork::new(1, 2, 8, 1, &mut rng);
        let mut ws = reference.clone();
        let mut adam_r = Adam::new(1e-2);
        let mut adam_w = Adam::new(1e-2);
        // Several optimizer steps so later rounds run on recycled (dirty)
        // cache entries and workspace buffers, and weight updates compound.
        for step in 0..8 {
            let values: Vec<f32> = (0..12)
                .map(|i| ((i * 5 + step * 3) % 11) as f32 / 11.0 - 0.3)
                .collect();
            let seq = Matrix::from_vec(values.len(), 1, values);
            let target = Matrix::row_vector(&[0.25]);

            reference.zero_grad();
            let pred_r = reference.forward_seq_reference(&seq);
            ws.zero_grad();
            let pred_w = ws.forward_seq(&seq);
            assert_eq!(pred_r, pred_w, "step {step}: seq forward diverged");

            let dy = Loss::Mse.gradient(&pred_r, &target);
            reference.backward_seq_reference(&dy);
            ws.backward_seq(&dy);

            let mut gr = Vec::new();
            reference.visit_params(&mut |_, g| gr.push(g.clone()));
            let mut gw = Vec::new();
            ws.visit_params(&mut |_, g| gw.push(g.clone()));
            assert_eq!(gr, gw, "step {step}: BPTT gradients diverged");

            adam_r.step(&mut reference);
            adam_w.step(&mut ws);
            let mut pr = Vec::new();
            reference.visit_params(&mut |p, _| pr.push(p.clone()));
            let mut pw = Vec::new();
            ws.visit_params(&mut |p, _| pw.push(p.clone()));
            assert_eq!(pr, pw, "step {step}: updated weights diverged");
        }
    }

    #[test]
    fn forward_shapes_are_batch_by_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = LstmNetwork::new(3, 3, 5, 2, &mut rng);
        let steps = vec![Matrix::zeros(4, 3), Matrix::zeros(4, 3)];
        assert_eq!(net.infer(&steps).shape(), (4, 2));
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = LstmNetwork::new(1, 1, 3, 1, &mut rng);
        let steps = scalar_steps(&[0.3, -0.1, 0.7]);
        let target = Matrix::row_vector(&[0.5]);

        net.zero_grad();
        let pred = net.forward(&steps);
        let dy = Loss::Mse.gradient(&pred, &target);
        net.backward(&dy);

        let mut analytic: Vec<f32> = Vec::new();
        net.visit_params(&mut |_, g| analytic.extend_from_slice(g.as_slice()));

        let mut shapes = Vec::new();
        net.visit_params(&mut |p, _| shapes.push(p.shape()));

        let eps = 1e-3_f32;
        let mut idx = 0;
        let mut max_err = 0.0_f32;
        for (tensor_i, &(r, c)) in shapes.iter().enumerate() {
            for k in 0..r * c {
                let nudge = |net: &mut LstmNetwork, delta: f32| {
                    let mut t = 0;
                    net.visit_params(&mut |p, _| {
                        if t == tensor_i {
                            p.as_mut_slice()[k] += delta;
                        }
                        t += 1;
                    });
                };
                nudge(&mut net, eps);
                let up = Loss::Mse.value(&net.infer(&steps), &target);
                nudge(&mut net, -2.0 * eps);
                let down = Loss::Mse.value(&net.infer(&steps), &target);
                nudge(&mut net, eps);
                let numeric = (up - down) / (2.0 * eps);
                max_err = max_err.max((numeric - analytic[idx]).abs());
                idx += 1;
            }
        }
        assert!(max_err < 5e-3, "max BPTT gradient error {max_err}");
    }

    #[test]
    fn learns_a_simple_recurrence() {
        // Predict the next element of an alternating +0.5/-0.5 sequence,
        // which requires at least one step of memory.
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = LstmNetwork::new(1, 1, 8, 1, &mut rng);
        let mut adam = Adam::new(5e-3);
        let window = 6;
        let series: Vec<f32> = (0..200)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();

        let mut final_loss = f32::MAX;
        for epoch in 0..60 {
            let mut total = 0.0;
            let mut count = 0;
            for start in (0..series.len() - window - 1).step_by(7) {
                let steps = scalar_steps(&series[start..start + window]);
                let target = Matrix::row_vector(&[series[start + window]]);
                net.zero_grad();
                let pred = net.forward(&steps);
                total += Loss::Mse.value(&pred, &target);
                count += 1;
                let dy = Loss::Mse.gradient(&pred, &target);
                net.backward(&dy);
                adam.step(&mut net);
            }
            final_loss = total / count as f32;
            if epoch == 0 {
                assert!(final_loss.is_finite());
            }
        }
        assert!(final_loss < 0.01, "final loss {final_loss} too high");
    }

    #[test]
    fn paper_predictor_has_30_hidden_units() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = LstmNetwork::paper_predictor(&mut rng);
        assert_eq!(net.hidden_size(), 30);
        assert_eq!(net.input_size(), 1);
        assert_eq!(net.output_size(), 1);
    }

    #[test]
    fn state_starts_at_zero() {
        let s = LstmState::zeros(2, 3);
        assert!(s.h.as_slice().iter().all(|&x| x == 0.0));
        assert!(s.c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one time step")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = LstmNetwork::new(1, 1, 2, 1, &mut rng);
        let _ = net.infer(&[]);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = LstmNetwork::new(1, 1, 4, 1, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let restored: LstmNetwork = serde_json::from_str(&json).unwrap();
        let w = [0.2, 0.4, 0.1];
        assert_eq!(net.predict_next(&w), restored.predict_next(&w));
    }
}
