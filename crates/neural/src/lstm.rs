//! Long short-term memory (LSTM) cell and sequence network with truncated
//! back-propagation through time (BPTT).
//!
//! The paper's workload predictor (Fig. 7) is an unrolled LSTM: an input
//! hidden layer, an LSTM cell layer with 30 hidden units shared across all
//! time steps, and an output hidden layer. [`LstmNetwork`] reproduces that
//! exact topology.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::init::Init;
use crate::matrix::Matrix;
use crate::optim::Trainable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cached values for one time step of one forward pass.
#[derive(Debug, Clone)]
struct StepCache {
    z: Matrix,      // [n x (input + hidden)]  concatenated input
    i: Matrix,      // input gate (post-sigmoid)
    f: Matrix,      // forget gate
    o: Matrix,      // output gate
    g: Matrix,      // candidate (post-tanh)
    c_prev: Matrix, // previous cell state
    tanh_c: Matrix, // tanh of new cell state
}

/// Hidden and cell state of an LSTM, batch-major.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state `h`, shape `n x hidden`.
    pub h: Matrix,
    /// Cell state `c`, shape `n x hidden`.
    pub c: Matrix,
}

impl LstmState {
    /// Zero state for a batch of `n` sequences (the paper initializes the
    /// LSTM state to zero).
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        Self {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

/// A single LSTM cell with weights shared across time steps.
///
/// Gate weights are packed into one `(input + hidden) x 4*hidden` matrix in
/// `[i | f | o | g]` order; the forget-gate bias is initialized to 1, a
/// standard trick that eases gradient flow early in training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    input_size: usize,
    hidden_size: usize,
    w: Matrix,
    b: Matrix,
    grad_w: Matrix,
    grad_b: Matrix,
    #[serde(skip)]
    cache: Vec<StepCache>,
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized gate weights.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> Self {
        let w = Init::XavierUniform.sample(input_size + hidden_size, 4 * hidden_size, rng);
        let mut b = Matrix::zeros(1, 4 * hidden_size);
        // Forget-gate bias = 1.
        for j in hidden_size..2 * hidden_size {
            b.as_mut_slice()[j] = 1.0;
        }
        Self {
            input_size,
            hidden_size,
            grad_w: Matrix::zeros(w.rows(), w.cols()),
            grad_b: Matrix::zeros(1, 4 * hidden_size),
            w,
            b,
            cache: Vec::new(),
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    fn gates(&self, z: &Matrix) -> (Matrix, Matrix, Matrix, Matrix) {
        let mut a = z.matmul(&self.w);
        a.add_row_broadcast(&self.b);
        let h = self.hidden_size;
        let mut i = a.slice_cols(0, h);
        let mut f = a.slice_cols(h, h);
        let mut o = a.slice_cols(2 * h, h);
        let mut g = a.slice_cols(3 * h, h);
        i.map_inplace(|x| Activation::Sigmoid.apply(x));
        f.map_inplace(|x| Activation::Sigmoid.apply(x));
        o.map_inplace(|x| Activation::Sigmoid.apply(x));
        g.map_inplace(|x| Activation::Tanh.apply(x));
        (i, f, o, g)
    }

    /// One forward time step without caching (inference).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n x input_size` or `state` does not match.
    pub fn infer_step(&self, x: &Matrix, state: &LstmState) -> LstmState {
        let z = Matrix::hcat(&[x, &state.h]);
        let (i, f, o, g) = self.gates(&z);
        let c = f.hadamard(&state.c).add(&i.hadamard(&g));
        let tanh_c = c.map(|v| v.tanh());
        LstmState {
            h: o.hadamard(&tanh_c),
            c,
        }
    }

    /// One forward time step with caching for BPTT.
    pub fn forward_step(&mut self, x: &Matrix, state: &LstmState) -> LstmState {
        let z = Matrix::hcat(&[x, &state.h]);
        let (i, f, o, g) = self.gates(&z);
        let c = f.hadamard(&state.c).add(&i.hadamard(&g));
        let tanh_c = c.map(|v| v.tanh());
        let h = o.hadamard(&tanh_c);
        self.cache.push(StepCache {
            z,
            i: i.clone(),
            f: f.clone(),
            o: o.clone(),
            g: g.clone(),
            c_prev: state.c.clone(),
            tanh_c,
        });
        LstmState { h, c }
    }

    /// Back-propagates one time step (most recent cached step first).
    ///
    /// `dh` and `dc` are gradients w.r.t. this step's output hidden/cell
    /// state; returns `(dx, dh_prev, dc_prev)`.
    ///
    /// # Panics
    ///
    /// Panics if no cached step is pending.
    pub fn backward_step(&mut self, dh: &Matrix, dc: &Matrix) -> (Matrix, Matrix, Matrix) {
        let s = self
            .cache
            .pop()
            .expect("LstmCell::backward_step without a matching forward_step");
        // dc_total = dh * o * (1 - tanh(c)^2) + dc
        let mut dc_total = dh.hadamard(&s.o);
        dc_total = dc_total.zip_with(&s.tanh_c, |v, tc| v * (1.0 - tc * tc));
        dc_total.axpy(1.0, dc);

        let d_o = dh.hadamard(&s.tanh_c);
        let d_i = dc_total.hadamard(&s.g);
        let d_g = dc_total.hadamard(&s.i);
        let d_f = dc_total.hadamard(&s.c_prev);
        let dc_prev = dc_total.hadamard(&s.f);

        // Pre-activation gate gradients.
        let da_i = d_i.zip_with(&s.i, |d, y| d * y * (1.0 - y));
        let da_f = d_f.zip_with(&s.f, |d, y| d * y * (1.0 - y));
        let da_o = d_o.zip_with(&s.o, |d, y| d * y * (1.0 - y));
        let da_g = d_g.zip_with(&s.g, |d, y| d * (1.0 - y * y));
        let da = Matrix::hcat(&[&da_i, &da_f, &da_o, &da_g]);

        self.grad_w.axpy(1.0, &s.z.matmul_tn(&da));
        self.grad_b.axpy(1.0, &da.sum_rows());

        let dz = da.matmul_nt(&self.w);
        let dx = dz.slice_cols(0, self.input_size);
        let dh_prev = dz.slice_cols(self.input_size, self.hidden_size);
        (dx, dh_prev, dc_prev)
    }

    /// Number of cached, un-consumed forward steps.
    pub fn pending_steps(&self) -> usize {
        self.cache.len()
    }

    /// Drops cached forward state.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

impl Trainable for LstmCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }

    fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.fill_zero();
    }
}

/// The paper's predictor topology: input hidden layer -> LSTM cell layer ->
/// output hidden layer, unrolled over a fixed look-back window.
///
/// The input/output layers use normal(0, 1) weight init with constant 0.1
/// bias, matching Section VI-A.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmNetwork {
    input_layer: Dense,
    cell: LstmCell,
    output_layer: Dense,
}

impl LstmNetwork {
    /// Creates a network mapping sequences of `input_size`-wide vectors to a
    /// single `output_size`-wide prediction from the final hidden state.
    pub fn new(
        input_size: usize,
        proj_size: usize,
        hidden_size: usize,
        output_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let weight_init = Init::Normal {
            mean: 0.0,
            std: 1.0,
        };
        let bias_init = Init::Constant(0.1);
        Self {
            input_layer: Dense::with_bias(
                input_size,
                proj_size,
                Activation::Tanh,
                weight_init,
                bias_init,
                rng,
            ),
            cell: LstmCell::new(proj_size, hidden_size, rng),
            output_layer: Dense::with_bias(
                hidden_size,
                output_size,
                Activation::Linear,
                weight_init,
                bias_init,
                rng,
            ),
        }
    }

    /// The paper's exact configuration: scalar in/out, 30 hidden units.
    pub fn paper_predictor(rng: &mut impl Rng) -> Self {
        Self::new(1, 1, 30, 1, rng)
    }

    /// Input width per time step.
    pub fn input_size(&self) -> usize {
        self.input_layer.input_size()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.output_layer.output_size()
    }

    /// Hidden width of the LSTM cell.
    pub fn hidden_size(&self) -> usize {
        self.cell.hidden_size()
    }

    /// Predicts from a sequence without caching. `steps` holds one
    /// `n x input_size` matrix per time step; returns `n x output_size`.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn infer(&self, steps: &[Matrix]) -> Matrix {
        assert!(!steps.is_empty(), "LSTM needs at least one time step");
        let n = steps[0].rows();
        let mut state = LstmState::zeros(n, self.cell.hidden_size());
        for x in steps {
            let proj = self.input_layer.infer(x);
            state = self.cell.infer_step(&proj, &state);
        }
        self.output_layer.infer(&state.h)
    }

    /// Convenience wrapper for scalar sequences: predicts the next value
    /// from a window of previous values.
    ///
    /// # Panics
    ///
    /// Panics if the network is not scalar-in/scalar-out or `window` is empty.
    pub fn predict_next(&self, window: &[f32]) -> f32 {
        assert_eq!(self.input_size(), 1, "predict_next requires scalar input");
        assert_eq!(self.output_size(), 1, "predict_next requires scalar output");
        let steps: Vec<Matrix> = window.iter().map(|&v| Matrix::row_vector(&[v])).collect();
        self.infer(&steps).as_slice()[0]
    }

    /// Training forward pass; caches every step for [`LstmNetwork::backward`].
    pub fn forward(&mut self, steps: &[Matrix]) -> Matrix {
        assert!(!steps.is_empty(), "LSTM needs at least one time step");
        let n = steps[0].rows();
        let mut state = LstmState::zeros(n, self.cell.hidden_size());
        for x in steps {
            let proj = self.input_layer.forward(x);
            state = self.cell.forward_step(&proj, &state);
        }
        self.output_layer.forward(&state.h)
    }

    /// Back-propagates through time for the most recent forward pass,
    /// accumulating gradients in all three layers.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass is pending.
    pub fn backward(&mut self, grad_out: &Matrix) {
        let mut dh = self.output_layer.backward(grad_out);
        let steps = self.cell.pending_steps();
        assert!(steps > 0, "LstmNetwork::backward without a forward pass");
        let n = dh.rows();
        let mut dc = Matrix::zeros(n, self.cell.hidden_size());
        for _ in 0..steps {
            let (dx, dh_prev, dc_prev) = self.cell.backward_step(&dh, &dc);
            // Gradient w.r.t. the shared input layer at this time step.
            let _ = self.input_layer.backward(&dx);
            dh = dh_prev;
            dc = dc_prev;
        }
    }

    /// Drops cached forward state in all layers.
    pub fn clear_cache(&mut self) {
        self.input_layer.clear_cache();
        self.cell.clear_cache();
        self.output_layer.clear_cache();
    }

    /// Total number of learnable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.parameter_count()
    }
}

impl Trainable for LstmNetwork {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.input_layer.visit_params(f);
        self.cell.visit_params(f);
        self.output_layer.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.input_layer.zero_grad();
        self.cell.zero_grad();
        self.output_layer.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scalar_steps(values: &[f32]) -> Vec<Matrix> {
        values.iter().map(|&v| Matrix::row_vector(&[v])).collect()
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = LstmNetwork::new(1, 2, 4, 1, &mut rng);
        let steps = scalar_steps(&[0.1, 0.5, -0.2, 0.8]);
        let a = net.infer(&steps);
        let b = net.forward(&steps);
        assert!((a.as_slice()[0] - b.as_slice()[0]).abs() < 1e-6);
        net.clear_cache();
    }

    #[test]
    fn forward_shapes_are_batch_by_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = LstmNetwork::new(3, 3, 5, 2, &mut rng);
        let steps = vec![Matrix::zeros(4, 3), Matrix::zeros(4, 3)];
        assert_eq!(net.infer(&steps).shape(), (4, 2));
    }

    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = LstmNetwork::new(1, 1, 3, 1, &mut rng);
        let steps = scalar_steps(&[0.3, -0.1, 0.7]);
        let target = Matrix::row_vector(&[0.5]);

        net.zero_grad();
        let pred = net.forward(&steps);
        let dy = Loss::Mse.gradient(&pred, &target);
        net.backward(&dy);

        let mut analytic: Vec<f32> = Vec::new();
        net.visit_params(&mut |_, g| analytic.extend_from_slice(g.as_slice()));

        let mut shapes = Vec::new();
        net.visit_params(&mut |p, _| shapes.push(p.shape()));

        let eps = 1e-3_f32;
        let mut idx = 0;
        let mut max_err = 0.0_f32;
        for (tensor_i, &(r, c)) in shapes.iter().enumerate() {
            for k in 0..r * c {
                let nudge = |net: &mut LstmNetwork, delta: f32| {
                    let mut t = 0;
                    net.visit_params(&mut |p, _| {
                        if t == tensor_i {
                            p.as_mut_slice()[k] += delta;
                        }
                        t += 1;
                    });
                };
                nudge(&mut net, eps);
                let up = Loss::Mse.value(&net.infer(&steps), &target);
                nudge(&mut net, -2.0 * eps);
                let down = Loss::Mse.value(&net.infer(&steps), &target);
                nudge(&mut net, eps);
                let numeric = (up - down) / (2.0 * eps);
                max_err = max_err.max((numeric - analytic[idx]).abs());
                idx += 1;
            }
        }
        assert!(max_err < 5e-3, "max BPTT gradient error {max_err}");
    }

    #[test]
    fn learns_a_simple_recurrence() {
        // Predict the next element of an alternating +0.5/-0.5 sequence,
        // which requires at least one step of memory.
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = LstmNetwork::new(1, 1, 8, 1, &mut rng);
        let mut adam = Adam::new(5e-3);
        let window = 6;
        let series: Vec<f32> = (0..200)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();

        let mut final_loss = f32::MAX;
        for epoch in 0..60 {
            let mut total = 0.0;
            let mut count = 0;
            for start in (0..series.len() - window - 1).step_by(7) {
                let steps = scalar_steps(&series[start..start + window]);
                let target = Matrix::row_vector(&[series[start + window]]);
                net.zero_grad();
                let pred = net.forward(&steps);
                total += Loss::Mse.value(&pred, &target);
                count += 1;
                let dy = Loss::Mse.gradient(&pred, &target);
                net.backward(&dy);
                adam.step(&mut net);
            }
            final_loss = total / count as f32;
            if epoch == 0 {
                assert!(final_loss.is_finite());
            }
        }
        assert!(final_loss < 0.01, "final loss {final_loss} too high");
    }

    #[test]
    fn paper_predictor_has_30_hidden_units() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = LstmNetwork::paper_predictor(&mut rng);
        assert_eq!(net.hidden_size(), 30);
        assert_eq!(net.input_size(), 1);
        assert_eq!(net.output_size(), 1);
    }

    #[test]
    fn state_starts_at_zero() {
        let s = LstmState::zeros(2, 3);
        assert!(s.h.as_slice().iter().all(|&x| x == 0.0));
        assert!(s.c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one time step")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = LstmNetwork::new(1, 1, 2, 1, &mut rng);
        let _ = net.infer(&[]);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = LstmNetwork::new(1, 1, 4, 1, &mut rng);
        let json = serde_json::to_string(&net).unwrap();
        let restored: LstmNetwork = serde_json::from_str(&json).unwrap();
        let w = [0.2, 0.4, 0.1];
        assert_eq!(net.predict_next(&w), restored.predict_next(&w));
    }
}
