//! Fully-connected layers with built-in activations.

use crate::activation::Activation;
use crate::init::Init;
use crate::matrix::Matrix;
use crate::optim::Trainable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-call cache used by back-propagation.
#[derive(Debug, Clone, Default)]
struct DenseCache {
    input: Matrix,
    pre: Matrix,
    post: Matrix,
}

/// Scratch buffers for the workspace training path
/// ([`Dense::forward_ws`] / [`Dense::backward_ws`]): every per-call
/// temporary the plain path allocates lives here instead and is resized in
/// place, so steady-state training does not allocate.
#[derive(Debug, Clone, Default)]
struct DenseWorkspace {
    /// Pre-activation gradient (`dy * act'`).
    dz: Matrix,
    /// Bias-gradient staging buffer (`dz` summed over rows).
    rowsum: Matrix,
    /// Transposed weights for the input-gradient GEMM.
    w_t: Matrix,
    /// Input gradient (`dz * W^T`), returned by reference.
    dx: Matrix,
}

/// A fully-connected layer `y = act(x W + b)`.
///
/// Weights are stored input-major (`in x out`), so a batch `x` of shape
/// `n x in` produces `n x out`.
///
/// Forward calls in training mode push onto an internal cache stack and
/// backward calls pop it, so the *same* layer object can be applied several
/// times per step (weight sharing): gradients from every application
/// accumulate into the shared parameter gradients. This is exactly the
/// semantics the paper's shared autoencoders and Sub-Q networks need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    activation: Activation,
    grad_w: Matrix,
    grad_b: Matrix,
    #[serde(skip)]
    cache: Vec<DenseCache>,
    #[serde(skip)]
    spare: Vec<DenseCache>,
    #[serde(skip)]
    ws: DenseWorkspace,
}

impl Dense {
    /// Creates a layer with the given fan-in/fan-out, activation, and weight
    /// initialization. Biases start at zero.
    pub fn new(
        input: usize,
        output: usize,
        activation: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w: init.sample(input, output, rng),
            b: Matrix::zeros(1, output),
            activation,
            grad_w: Matrix::zeros(input, output),
            grad_b: Matrix::zeros(1, output),
            cache: Vec::new(),
            spare: Vec::new(),
            ws: DenseWorkspace::default(),
        }
    }

    /// Creates a layer with explicit bias initialization (the paper sets
    /// LSTM in/out layer biases to the constant 0.1).
    pub fn with_bias(
        input: usize,
        output: usize,
        activation: Activation,
        weight_init: Init,
        bias_init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        let mut layer = Self::new(input, output, activation, weight_init, rng);
        layer.b = bias_init.sample(1, output, rng);
        layer
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weights (`in x out`).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Immutable view of the bias (`1 x out`).
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Inference pass without caching; usable through `&self`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_size()`.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        self.activation.apply_slice(z.as_mut_slice());
        z
    }

    /// Inference pass into a caller-provided buffer (resized in place), so
    /// hot loops can reuse one allocation per layer output. Bitwise
    /// identical to [`Dense::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_size()`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(&self.b);
        self.activation.apply_slice(out.as_mut_slice());
    }

    /// Training-mode forward pass; caches intermediates for [`Dense::backward`].
    ///
    /// Each call pushes one cache entry; calls must be matched by backward
    /// calls in reverse order.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let mut post = pre.clone();
        self.activation.apply_slice(post.as_mut_slice());
        self.cache.push(DenseCache {
            input: x.clone(),
            pre: pre.clone(),
            post: post.clone(),
        });
        post
    }

    /// Training-mode forward pass that recycles cache tensors instead of
    /// cloning them: the cache entry comes from an internal spare pool
    /// (returned to it by the matching workspace backward call) and its
    /// buffers are overwritten in place. Bitwise identical to
    /// [`Dense::forward`], which stays as the allocating reference path.
    ///
    /// The returned reference is the cached activation output; it stays
    /// valid until the matching backward (or [`Dense::clear_cache`]) pops
    /// the entry.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_size()`.
    pub fn forward_ws(&mut self, x: &Matrix) -> &Matrix {
        let mut cache = self.spare.pop().unwrap_or_default();
        cache.input.copy_from(x);
        x.matmul_into(&self.w, &mut cache.pre);
        cache.pre.add_row_broadcast(&self.b);
        cache.post.copy_from(&cache.pre);
        self.activation.apply_slice(cache.post.as_mut_slice());
        self.cache.push(cache);
        self.last_output()
    }

    /// Output of the most recent un-consumed forward call.
    ///
    /// # Panics
    ///
    /// Panics if no forward call is pending.
    pub fn last_output(&self) -> &Matrix {
        &self
            .cache
            .last()
            .expect("Dense::last_output called with no pending forward")
            .post
    }

    /// Back-propagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output) through the most recent un-consumed forward call, accumulates
    /// parameter gradients, and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call, or on shape mismatch.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let dz = self.backward_accumulate(grad_out);
        dz.matmul_nt(&self.w)
    }

    /// Workspace counterpart of [`Dense::backward`]: accumulates the same
    /// parameter gradients and returns the input gradient, but every
    /// temporary (`dz`, the transposed weights, the input gradient
    /// itself) lives in recycled buffers.
    /// Bitwise identical to [`Dense::backward`].
    ///
    /// The returned reference aliases an internal buffer overwritten by the
    /// *next* workspace backward call on this layer; read or copy it before
    /// then (see [`Dense::grad_input`]).
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call, or on shape mismatch.
    pub fn backward_ws(&mut self, grad_out: &Matrix) -> &Matrix {
        self.backward_accumulate_ws(grad_out);
        // dx = dz * W^T: `matmul_nt` materializes the transpose and runs
        // the plain kernel, so staging W^T through a recycled buffer and
        // calling the same kernel is bitwise identical.
        self.w.transpose_into(&mut self.ws.w_t);
        self.ws.dz.matmul_into(&self.ws.w_t, &mut self.ws.dx);
        &self.ws.dx
    }

    /// Input gradient left by the most recent [`Dense::backward_ws`] call.
    pub fn grad_input(&self) -> &Matrix {
        &self.ws.dx
    }

    /// Like [`Dense::backward`], but skips the input-gradient GEMM
    /// (`dz * W^T`) — for bottom layers whose upstream gradient nobody
    /// consumes. Parameter gradients are accumulated identically.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call, or on shape mismatch.
    pub fn backward_params_only(&mut self, grad_out: &Matrix) {
        let _ = self.backward_accumulate(grad_out);
    }

    /// Workspace counterpart of [`Dense::backward_params_only`]: identical
    /// gradient accumulation through recycled buffers, no input-gradient
    /// GEMM.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward call, or on shape mismatch.
    pub fn backward_params_only_ws(&mut self, grad_out: &Matrix) {
        self.backward_accumulate_ws(grad_out);
    }

    /// Pops the most recent forward cache, accumulates the parameter
    /// gradients, and returns `dz` (the pre-activation gradient).
    fn backward_accumulate(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self
            .cache
            .pop()
            .expect("Dense::backward called without a matching forward");
        assert_eq!(
            grad_out.shape(),
            cache.post.shape(),
            "gradient shape {:?} does not match output shape {:?}",
            grad_out.shape(),
            cache.post.shape()
        );
        // dz = dy * act'(pre, post)
        let mut dz = grad_out.clone();
        for i in 0..dz.rows() {
            let pre = cache.pre.row(i);
            let post = cache.post.row(i);
            let row = dz.row_mut(i);
            for ((g, &p), &q) in row.iter_mut().zip(pre).zip(post) {
                *g *= self.activation.derivative(p, q);
            }
        }
        // The accumulating GEMM continues each gradient element's fused
        // product chain across calls, so N single-row accumulations and one
        // N-row accumulation land on identical bits (see `simd` module doc).
        self.grad_w.add_matmul_tn(&cache.input, &dz);
        self.grad_b.axpy(1.0, &dz.sum_rows());
        dz
    }

    /// Workspace twin of [`Dense::backward_accumulate`]: same operations in
    /// the same order, but `dz` and the bias-gradient staging row live in
    /// recycled buffers and the consumed cache entry returns to the spare
    /// pool. Leaves `dz` in the workspace for [`Dense::backward_ws`].
    fn backward_accumulate_ws(&mut self, grad_out: &Matrix) {
        let cache = self
            .cache
            .pop()
            .expect("Dense::backward called without a matching forward");
        assert_eq!(
            grad_out.shape(),
            cache.post.shape(),
            "gradient shape {:?} does not match output shape {:?}",
            grad_out.shape(),
            cache.post.shape()
        );
        // dz = dy * act'(pre, post)
        self.ws.dz.copy_from(grad_out);
        for i in 0..self.ws.dz.rows() {
            let pre = cache.pre.row(i);
            let post = cache.post.row(i);
            let row = self.ws.dz.row_mut(i);
            for ((g, &p), &q) in row.iter_mut().zip(pre).zip(post) {
                *g *= self.activation.derivative(p, q);
            }
        }
        self.grad_w.add_matmul_tn(&cache.input, &self.ws.dz);
        self.ws.dz.sum_rows_into(&mut self.ws.rowsum);
        self.grad_b.axpy(1.0, &self.ws.rowsum);
        self.spare.push(cache);
    }

    /// Number of pending (cached, not yet back-propagated) forward calls.
    pub fn pending_backwards(&self) -> usize {
        self.cache.len()
    }

    /// Drops any cached forward state without touching gradients. Buffers
    /// from workspace forward calls return to the spare pool.
    pub fn clear_cache(&mut self) {
        self.spare.append(&mut self.cache);
    }
}

impl Trainable for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }

    fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.fill_zero();
    }
}

/// A feed-forward stack of [`Dense`] layers (multi-layer perceptron).
///
/// # Examples
///
/// ```
/// use hierdrl_neural::prelude::*;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[4, 8, 2], Activation::ELU, Activation::Linear,
///                    Init::XavierUniform, &mut rng);
/// let y = mlp.infer(&Matrix::zeros(3, 4));
/// assert_eq!(y.shape(), (3, 2));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths. `dims` lists the input
    /// width followed by each layer's output width; hidden layers use
    /// `hidden_activation` and the last layer uses `output_activation`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2`.
    pub fn new(
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, init, rng));
        }
        Self { layers }
    }

    /// Builds an MLP from pre-constructed layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive widths do not match.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_size(),
                pair[1].input_size(),
                "consecutive layer widths must match"
            );
        }
        Self { layers }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers[0].input_size()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers[self.layers.len() - 1].output_size()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Inference pass without caching.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].infer(x);
        for layer in &self.layers[1..] {
            h = layer.infer(&h);
        }
        h
    }

    /// Inference pass that ping-pongs between two caller-provided buffers,
    /// leaving the result in `out`; per-step workspaces use this to run the
    /// whole stack without allocating. Bitwise identical to [`Mlp::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_size()`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix, scratch: &mut Matrix) {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            // The last layer must land in `out`; alternate backwards from it.
            let to_out = (n - 1 - i).is_multiple_of(2);
            let (src, dst): (&Matrix, &mut Matrix) = match (i, to_out) {
                (0, true) => (x, &mut *out),
                (0, false) => (x, &mut *scratch),
                (_, true) => (&*scratch, &mut *out),
                (_, false) => (&*out, &mut *scratch),
            };
            layer.infer_into(src, dst);
        }
    }

    /// Training-mode forward pass (caches intermediates; may be called
    /// repeatedly before backward for weight-shared application).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Training-mode forward pass through the workspace path: each layer
    /// reads its input straight out of the previous layer's cache entry, so
    /// no inter-layer copies or per-call clones happen at all. Bitwise
    /// identical to [`Mlp::forward`], which stays as the allocating
    /// reference path. The returned reference is the top layer's cached
    /// output, valid until the matching backward call.
    pub fn forward_ws(&mut self, x: &Matrix) -> &Matrix {
        for i in 0..self.layers.len() {
            let (prev, rest) = self.layers.split_at_mut(i);
            if i == 0 {
                rest[0].forward_ws(x);
            } else {
                rest[0].forward_ws(prev[i - 1].last_output());
            }
        }
        self.layers.last().expect("MLP has layers").last_output()
    }

    /// Back-propagates through the most recent un-consumed forward call and
    /// returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if no forward call is pending.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Back-propagates like [`Mlp::backward`] but never computes the
    /// gradient w.r.t. the network *input* (the bottom layer's `dz * W^T`
    /// GEMM — the largest one), for callers that do not chain into an
    /// upstream network. Parameter gradients are bitwise identical to
    /// [`Mlp::backward`]'s.
    ///
    /// # Panics
    ///
    /// Panics if no forward call is pending.
    pub fn backward_params_only(&mut self, grad_out: &Matrix) {
        let mut g = grad_out.clone();
        let (bottom, upper) = self.layers.split_first_mut().expect("MLP has layers");
        for layer in upper.iter_mut().rev() {
            g = layer.backward(&g);
        }
        bottom.backward_params_only(&g);
    }

    /// Workspace counterpart of [`Mlp::backward`]: full back-propagation
    /// with each layer reading the upstream gradient straight from the
    /// layer above's recycled input-gradient buffer, returning the
    /// gradient w.r.t. the network input (borrowed from the bottom
    /// layer's buffer, valid until its next backward call). Gradients are
    /// bitwise identical to [`Mlp::backward`]'s.
    ///
    /// # Panics
    ///
    /// Panics if no forward call is pending.
    pub fn backward_ws(&mut self, grad_out: &Matrix) -> &Matrix {
        let n = self.layers.len();
        for i in (0..n).rev() {
            let (_, rest) = self.layers.split_at_mut(i);
            let (cur, upper) = rest.split_first_mut().expect("MLP has layers");
            let g: &Matrix = if i == n - 1 {
                grad_out
            } else {
                upper[0].grad_input()
            };
            cur.backward_ws(g);
        }
        self.layers[0].grad_input()
    }

    /// Workspace counterpart of [`Mlp::backward_params_only`]: identical
    /// gradient accumulation, but each layer reads the upstream gradient
    /// directly from the layer above's recycled input-gradient buffer —
    /// nothing is cloned anywhere in the sweep. Bitwise identical to
    /// [`Mlp::backward_params_only`].
    ///
    /// # Panics
    ///
    /// Panics if no forward call is pending.
    pub fn backward_params_only_ws(&mut self, grad_out: &Matrix) {
        let n = self.layers.len();
        for i in (0..n).rev() {
            let (_, rest) = self.layers.split_at_mut(i);
            let (cur, upper) = rest.split_first_mut().expect("MLP has layers");
            let g: &Matrix = if i == n - 1 {
                grad_out
            } else {
                upper[0].grad_input()
            };
            if i == 0 {
                cur.backward_params_only_ws(g);
            } else {
                cur.backward_ws(g);
            }
        }
    }

    /// Total number of learnable scalars.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights().len() + l.bias().len())
            .sum()
    }

    /// Drops cached forward state in every layer.
    pub fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }
}

impl Trainable for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check(mlp: &mut Mlp, x: &Matrix, target: &Matrix) {
        // Analytic gradients.
        mlp.zero_grad();
        let pred = mlp.forward(x);
        let dy = Loss::Mse.gradient(&pred, target);
        mlp.backward(&dy);

        // Collect analytic grads.
        let mut analytic: Vec<f32> = Vec::new();
        mlp.visit_params(&mut |_, g| analytic.extend_from_slice(g.as_slice()));

        // Numeric gradients.
        let eps = 1e-3_f32;
        let mut idx = 0;
        let mut max_err = 0.0_f32;
        // Perturb each parameter in turn.
        let mut param_shapes = Vec::new();
        mlp.visit_params(&mut |p, _| param_shapes.push(p.shape()));
        for (tensor_i, &(r, c)) in param_shapes.iter().enumerate() {
            for k in 0..r * c {
                let set = |mlp: &mut Mlp, delta: f32| {
                    let mut t = 0;
                    mlp.visit_params(&mut |p, _| {
                        if t == tensor_i {
                            p.as_mut_slice()[k] += delta;
                        }
                        t += 1;
                    });
                };
                set(mlp, eps);
                let up = Loss::Mse.value(&mlp.infer(x), target);
                set(mlp, -2.0 * eps);
                let down = Loss::Mse.value(&mlp.infer(x), target);
                set(mlp, eps);
                let numeric = (up - down) / (2.0 * eps);
                let err = (numeric - analytic[idx]).abs();
                max_err = max_err.max(err);
                idx += 1;
            }
        }
        assert!(max_err < 5e-3, "max gradient error {max_err}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(
            &[3, 5, 2],
            Activation::ELU,
            Activation::Linear,
            Init::XavierUniform,
            &mut rng,
        );
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.3, -0.6]]);
        let target = Matrix::from_rows(&[&[0.5, -0.5], &[1.0, 0.0]]);
        finite_diff_check(&mut mlp, &x, &target);
    }

    #[test]
    fn gradients_match_with_tanh_hidden() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp = Mlp::new(
            &[4, 6, 3],
            Activation::Tanh,
            Activation::Linear,
            Init::XavierUniform,
            &mut rng,
        );
        let x = Matrix::from_rows(&[&[0.1, 0.2, -0.3, 0.4]]);
        let target = Matrix::from_rows(&[&[1.0, 0.0, -1.0]]);
        finite_diff_check(&mut mlp, &x, &target);
    }

    #[test]
    fn weight_shared_double_application_accumulates_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::XavierUniform, &mut rng);
        let x1 = Matrix::row_vector(&[1.0, 0.0]);
        let x2 = Matrix::row_vector(&[0.0, 1.0]);
        let _ = layer.forward(&x1);
        let _ = layer.forward(&x2);
        assert_eq!(layer.pending_backwards(), 2);
        let g = Matrix::row_vector(&[1.0, 1.0]);
        let _ = layer.backward(&g); // consumes x2's cache
        let _ = layer.backward(&g); // consumes x1's cache
                                    // grad_w = x1^T g + x2^T g = ones(2,2)
        let mut grads = Vec::new();
        layer.visit_params(&mut |_, gm| grads.push(gm.clone()));
        assert_eq!(grads[0], Matrix::filled(2, 2, 1.0));
        assert_eq!(grads[1], Matrix::row_vector(&[2.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "without a matching forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::XavierUniform, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(
            &[3, 4, 2],
            Activation::ELU,
            Activation::Linear,
            Init::HeNormal,
            &mut rng,
        );
        let x = Matrix::from_rows(&[&[0.5, -1.0, 0.25]]);
        let a = mlp.infer(&x);
        let b = mlp.forward(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn infer_into_matches_infer_for_odd_and_even_depths() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[0.1, 0.2, 0.3]]);
        for dims in [vec![3, 4, 2], vec![3, 5, 4, 2], vec![3, 2]] {
            let mlp = Mlp::new(
                &dims,
                Activation::ELU,
                Activation::Linear,
                Init::HeNormal,
                &mut rng,
            );
            let mut out = Matrix::filled(1, 1, 3.0);
            let mut scratch = Matrix::filled(9, 9, 3.0);
            mlp.infer_into(&x, &mut out, &mut scratch);
            assert_eq!(out, mlp.infer(&x), "depth {}", dims.len());
        }
    }

    #[test]
    fn workspace_training_path_is_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[0.1, 0.2, 0.3]]);
        let dy = Matrix::from_rows(&[&[0.3, -0.9], &[-0.2, 0.7]]);
        for dims in [vec![3, 4, 2], vec![3, 5, 4, 2], vec![3, 2]] {
            let mut plain = Mlp::new(
                &dims,
                Activation::ELU,
                Activation::Linear,
                Init::HeNormal,
                &mut rng,
            );
            let mut ws = plain.clone();
            // Several rounds so the second and later ones exercise recycled
            // (dirty) cache entries and workspace buffers.
            for round in 0..3 {
                let a = plain.forward(&x);
                let b = ws.forward_ws(&x).clone();
                assert_eq!(a, b, "depth {} round {round}: outputs", dims.len());
                plain.backward_params_only(&dy);
                ws.backward_params_only_ws(&dy);
                let mut ga = Vec::new();
                plain.visit_params(&mut |_, g| ga.push(g.clone()));
                let mut gb = Vec::new();
                ws.visit_params(&mut |_, g| gb.push(g.clone()));
                assert_eq!(ga, gb, "depth {} round {round}: grads", dims.len());
            }
        }
    }

    #[test]
    fn backward_ws_input_gradient_matches_backward() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut plain = Dense::new(5, 3, Activation::Tanh, Init::XavierUniform, &mut rng);
        let mut ws = plain.clone();
        let x = Matrix::from_rows(&[&[0.1, -0.5, 0.9, 0.0, 0.4], &[1.0, 0.2, -0.3, 0.6, -0.8]]);
        let dy = Matrix::from_rows(&[&[0.5, -0.1, 0.2], &[-0.4, 0.8, 0.3]]);
        for round in 0..3 {
            let _ = plain.forward(&x);
            let _ = ws.forward_ws(&x);
            let dx_plain = plain.backward(&dy);
            let dx_ws = ws.backward_ws(&dy);
            assert_eq!(&dx_plain, dx_ws, "round {round}: input grads diverged");
        }
        let mut ga = Vec::new();
        plain.visit_params(&mut |_, g| ga.push(g.clone()));
        let mut gb = Vec::new();
        ws.visit_params(&mut |_, g| gb.push(g.clone()));
        assert_eq!(ga, gb);
    }

    #[test]
    fn mlp_backward_ws_matches_backward() {
        // The full workspace backward (input gradient included) must chain
        // layer-to-layer exactly like the allocating reference, at every
        // depth and across recycled rounds.
        let mut rng = StdRng::seed_from_u64(24);
        for dims in [vec![6, 4], vec![6, 5, 3], vec![6, 8, 5, 2]] {
            let mut plain = Mlp::new(
                &dims,
                Activation::ELU,
                Activation::Linear,
                Init::XavierUniform,
                &mut rng,
            );
            let mut ws = plain.clone();
            let x = Matrix::from_rows(&[
                &[0.3, -0.7, 0.1, 0.9, -0.2, 0.5],
                &[-0.4, 0.6, -0.9, 0.2, 0.8, -0.1],
            ]);
            let mut dy = Matrix::zeros(2, *dims.last().unwrap());
            for (i, v) in dy.as_mut_slice().iter_mut().enumerate() {
                *v = (i as f32 * 0.37).sin();
            }
            for round in 0..3 {
                let _ = plain.forward(&x);
                let _ = ws.forward_ws(&x);
                let dx_plain = plain.backward(&dy);
                let dx_ws = ws.backward_ws(&dy);
                assert_eq!(
                    &dx_plain,
                    dx_ws,
                    "depth {} round {round}: input grads",
                    dims.len()
                );
                let mut ga = Vec::new();
                plain.visit_params(&mut |_, g| ga.push(g.clone()));
                let mut gb = Vec::new();
                ws.visit_params(&mut |_, g| gb.push(g.clone()));
                assert_eq!(ga, gb, "depth {} round {round}: grads", dims.len());
            }
        }
    }

    #[test]
    fn clear_cache_recycles_workspace_entries() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut layer = Dense::new(2, 2, Activation::Linear, Init::XavierUniform, &mut rng);
        let x = Matrix::row_vector(&[1.0, -1.0]);
        let _ = layer.forward_ws(&x);
        let _ = layer.forward_ws(&x);
        assert_eq!(layer.pending_backwards(), 2);
        layer.clear_cache();
        assert_eq!(layer.pending_backwards(), 0);
        // The recycled entries are reused and the path still agrees with
        // the plain one.
        let mut plain = layer.clone();
        let a = plain.forward(&x);
        let b = layer.forward_ws(&x);
        assert_eq!(&a, b);
    }

    #[test]
    fn training_reduces_loss_on_toy_regression() {
        use crate::optim::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(
            &[1, 16, 1],
            Activation::Tanh,
            Activation::Linear,
            Init::XavierUniform,
            &mut rng,
        );
        let mut adam = Adam::new(1e-2);
        // Fit y = 2x - 1 on [-1, 1].
        let xs: Vec<f32> = (0..32).map(|i| -1.0 + 2.0 * i as f32 / 31.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        let x = Matrix::from_vec(32, 1, xs);
        let y = Matrix::from_vec(32, 1, ys);
        let initial = Loss::Mse.value(&mlp.infer(&x), &y);
        for _ in 0..300 {
            mlp.zero_grad();
            let pred = mlp.forward(&x);
            let dy = Loss::Mse.gradient(&pred, &y);
            mlp.backward(&dy);
            adam.step(&mut mlp);
        }
        let fin = Loss::Mse.value(&mlp.infer(&x), &y);
        assert!(fin < initial * 0.05, "loss {initial} -> {fin} did not drop");
    }

    #[test]
    fn num_parameters_counts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &[3, 4, 2],
            Activation::ELU,
            Activation::Linear,
            Init::HeNormal,
            &mut rng,
        );
        assert_eq!(mlp.num_parameters(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn serde_round_trip_preserves_inference() {
        let mut rng = StdRng::seed_from_u64(13);
        let mlp = Mlp::new(
            &[2, 3, 1],
            Activation::ELU,
            Activation::Linear,
            Init::XavierUniform,
            &mut rng,
        );
        let json = serde_json::to_string(&mlp).unwrap();
        let restored: Mlp = serde_json::from_str(&json).unwrap();
        let x = Matrix::row_vector(&[0.3, -0.7]);
        assert_eq!(mlp.infer(&x), restored.infer(&x));
    }
}
