//! A minimal dense row-major `f32` matrix used throughout the neural substrate.
//!
//! The networks in this crate are tiny (at most a few hundred units per
//! layer), so a straightforward cache-friendly implementation is more than
//! fast enough and keeps the crate dependency-free.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
///
/// Rows are the batch dimension throughout this crate: a batch of `n`
/// feature vectors of width `d` is an `n x d` matrix.
///
/// # Examples
///
/// ```
/// use hierdrl_neural::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a new `1 x cols` matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::from_vec(1, self.cols, self.row(r).to_vec())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose into `out` (resized in place, reusing its
    /// allocation). Bitwise identical to [`Matrix::transpose`].
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize_to(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
    }

    /// Becomes an element-wise copy of `src`, adopting its shape while
    /// reusing the existing allocation — unlike [`Matrix::resize_to`] the
    /// previous contents are simply replaced, with no zeroing pass.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Reshapes to `rows x cols` in place, reusing the existing allocation
    /// when it is large enough. All elements are reset to zero; any previous
    /// contents are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs`, written into `out` (resized and zeroed
    /// first, reusing its allocation). Produces bitwise-identical results to
    /// [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        out.resize_to(self.rows, rhs.cols);
        // Narrow outputs (fewer columns than one SIMD lane-group) would run
        // almost entirely in the scalar tail; computing the transposed
        // product instead makes the wide `self.rows` dimension the
        // vectorized one. Every output element still accumulates its
        // products in ascending-`k` order, so the result is bitwise
        // identical (a zero operand skips a `±0.0` addition either way,
        // which cannot change a finite accumulation).
        if rhs.cols < 8 && self.rows >= 8 && self.cols >= 8 {
            let at = self.transpose();
            let mut out_t = Matrix::zeros(rhs.cols, self.rows);
            let mut j = 0;
            while j + 4 <= rhs.cols {
                crate::simd::gemm_row4(
                    &rhs.data[j..],
                    1,
                    rhs.cols,
                    rhs.rows,
                    &at.data,
                    at.cols,
                    &mut out_t.data[j * self.rows..(j + 4) * self.rows],
                );
                j += 4;
            }
            for j in j..rhs.cols {
                let o_row = &mut out_t.data[j * self.rows..(j + 1) * self.rows];
                crate::simd::gemm_row(&rhs.data[j..], rhs.cols, rhs.rows, &at.data, at.cols, o_row);
            }
            for i in 0..self.rows {
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] = out_t.data[j * self.rows + i];
                }
            }
            return;
        }
        // Register-blocked GEMM rows: each output element accumulates its
        // products in ascending-`k` order (zero coefficients skipped), so
        // the vectorized kernel is bitwise identical to the naive i-k-j
        // loop this replaces. Rows go four at a time so narrow outputs
        // still keep several independent add chains in flight (see
        // `simd::gemm_row4`).
        let mut i = 0;
        while i + 4 <= self.rows {
            crate::simd::gemm_row4(
                &self.data[i * self.cols..(i + 4) * self.cols],
                self.cols,
                1,
                self.cols,
                &rhs.data,
                rhs.cols,
                &mut out.data[i * rhs.cols..(i + 4) * rhs.cols],
            );
            i += 4;
        }
        for i in i..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            crate::simd::gemm_row(a_row, 1, self.cols, &rhs.data, rhs.cols, o_row);
        }
    }

    /// Computes `self^T * rhs` without materializing the transpose.
    ///
    /// Shapes: `self` is `n x a`, `rhs` is `n x b`, result is `a x b`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// Computes `self^T * rhs` into `out` (resized in place, reusing its
    /// allocation). Bitwise identical to [`Matrix::matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_tn shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        // Narrow outputs: same transposed-formulation trick as `matmul`
        // (e.g. the output layer's weight gradient, `out` columns = action
        // slots), bitwise identical per the in-order accumulation argument.
        if rhs.cols < 8 && self.cols >= 8 && self.rows >= 8 {
            let t = rhs.transpose().matmul(self);
            t.transpose_into(out);
            return;
        }
        out.resize_to(self.cols, rhs.cols);
        // Output row `i` accumulates column `i` of `self` against the rows
        // of `rhs`, in ascending row order — the same per-element order as
        // the naive n-outer loop, but with registers held across the
        // reduction (see `simd::gemm_row`), four columns per sweep (see
        // `simd::gemm_row4`).
        let mut i = 0;
        while i + 4 <= self.cols {
            crate::simd::gemm_row4(
                &self.data[i..],
                1,
                self.cols,
                self.rows,
                &rhs.data,
                rhs.cols,
                &mut out.data[i * rhs.cols..(i + 4) * rhs.cols],
            );
            i += 4;
        }
        for i in i..self.cols {
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            crate::simd::gemm_row(
                &self.data[i..],
                self.cols,
                self.rows,
                &rhs.data,
                rhs.cols,
                o_row,
            );
        }
    }

    /// Computes `self * rhs^T`.
    ///
    /// Shapes: `self` is `n x a`, `rhs` is `m x a`, result is `n x m`.
    ///
    /// Internally materializes `rhs^T` and runs the streaming `matmul`
    /// kernel: row-of-`rhs^T` axpys vectorize across output columns, where
    /// the direct row-dot formulation is latency-bound on the sequential
    /// FP-add chain (~2.5x slower at the DQN back-prop shapes). Each output
    /// element still accumulates its products in ascending shared-dimension
    /// order, so results are bitwise identical to the direct form.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_nt shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        self.matmul(&rhs.transpose())
    }

    /// Accumulates `a^T * b` into `self` without materializing the product
    /// (`self[i][j] += Σ_n a[n][i]·b[n][j]`, terms added in ascending `n`
    /// per element). For one-row `a`/`b` — the LSTM's per-step weight
    /// gradient — each element receives a single product, so this is
    /// bitwise identical to `axpy(1.0, &a.matmul_tn(b))` with no temporary.
    ///
    /// # Panics
    ///
    /// Panics if the row counts of `a` and `b` differ or `self` is not
    /// `a.cols x b.cols`.
    pub fn add_matmul_tn(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(a.rows, b.rows, "add_matmul_tn row count mismatch");
        assert_eq!(
            self.shape(),
            (a.cols, b.cols),
            "add_matmul_tn output shape mismatch"
        );
        // The gemm kernels accumulate into the output row, so they serve
        // the += contract directly: output row `i` is column `i` of `a`
        // against the rows of `b`, terms in ascending `n` with zero
        // coefficients skipped — the same per-element order and skip rule
        // as the rank-1 axpy sweep this replaces, but with `b`'s rows
        // loaded once per four output rows instead of once per output row.
        let mut i = 0;
        while i + 4 <= a.cols {
            crate::simd::gemm_row4(
                &a.data[i..],
                1,
                a.cols,
                a.rows,
                &b.data,
                b.cols,
                &mut self.data[i * b.cols..(i + 4) * b.cols],
            );
            i += 4;
        }
        for i in i..a.cols {
            crate::simd::gemm_row(
                &a.data[i..],
                a.cols,
                a.rows,
                &b.data,
                b.cols,
                &mut self.data[i * b.cols..(i + 1) * b.cols],
            );
        }
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped matrices element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "axpy shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        crate::simd::add_scaled(&mut self.data, &rhs.data, alpha);
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds a `1 x cols` row vector to every row (broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols`.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Sums the rows into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// Sums the rows into `out` as a `1 x cols` row vector (resized in
    /// place, reusing its allocation). Bitwise identical to
    /// [`Matrix::sum_rows`].
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.resize_to(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm (sum of squared elements).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Horizontally concatenates matrices with identical row counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat requires at least one matrix");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in parts {
                assert_eq!(m.rows, rows, "hcat row count mismatch");
                out.data[r * cols + offset..r * cols + offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Vertically stacks matrices with identical column counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vcat requires at least one matrix");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vcat column count mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Extracts columns `[start, start + width)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix width.
    pub fn slice_cols(&self, start: usize, width: usize) -> Matrix {
        assert!(
            start + width <= self.cols,
            "column slice {}..{} out of bounds (cols = {})",
            start,
            start + width,
            self.cols
        );
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + width]);
        }
        out
    }

    /// Index of the maximum element in row `r`, breaking ties toward the
    /// lowest index. Returns `None` for a zero-width matrix.
    pub fn argmax_row(&self, r: usize) -> Option<usize> {
        let row = self.row(r);
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in row.iter().enumerate() {
            match best {
                Some((_, b)) if x <= b => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix (useful as the initial state of reusable
    /// workspace buffers).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn add_matmul_tn_accumulates_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0, 7.0], &[8.0, 9.0, 10.0]]);
        let mut acc = Matrix::filled(2, 3, 1.0);
        acc.add_matmul_tn(&a, &b);
        let mut expected = Matrix::filled(2, 3, 1.0);
        expected.axpy(1.0, &a.matmul_tn(&b));
        assert_eq!(acc, expected);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[0.0, 1.0, -1.0], &[2.0, 2.0, 2.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_every_row() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&Matrix::row_vector(&[1.0, -2.0]));
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -2.0]);
        }
    }

    #[test]
    fn sum_rows_collapses_batch() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c, Matrix::from_rows(&[&[1.0, 3.0, 4.0], &[2.0, 5.0, 6.0]]));
    }

    #[test]
    fn vcat_stacks_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(
            Matrix::vcat(&[&a, &b]),
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
        );
    }

    #[test]
    fn slice_cols_extracts_block() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(
            a.slice_cols(1, 2),
            Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]])
        );
    }

    #[test]
    fn argmax_row_breaks_ties_low() {
        let a = Matrix::from_rows(&[&[1.0, 3.0, 3.0, 2.0]]);
        assert_eq!(a.argmax_row(0), Some(1));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        a.axpy(2.0, &Matrix::filled(2, 2, 3.0));
        assert_eq!(a, Matrix::filled(2, 2, 7.0));
    }

    #[test]
    fn norm_of_unit_vector() {
        let a = Matrix::row_vector(&[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "row 5 out of bounds")]
    fn row_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.row(5);
    }

    #[test]
    fn resize_to_reuses_allocation_and_zeroes() {
        let mut m = Matrix::filled(4, 4, 7.0);
        m.resize_to(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        m.resize_to(5, 5);
        assert_eq!(m.shape(), (5, 5));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::filled(7, 1, 9.0); // stale shape and contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_rows(&[&[1.5, -2.5], &[0.0, 4.25]]);
        let json = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }
}
