//! Suite-runner determinism: parallel execution must reproduce serial
//! execution byte-for-byte, and per-cell seeds must be independent.

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_exp::prelude::*;
use hierdrl_exp::scenario::Pretrain;

/// A cheap DRL variant so learned-policy cells stay fast in debug builds.
fn quick_drl() -> PolicySpec {
    PolicySpec::drl_variant(
        "drl-quick",
        DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            minibatch: 8,
            train_interval: 8,
            ..Default::default()
        },
        Pretrain {
            segments: 1,
            fraction: 0.5,
        },
    )
}

/// A small Table-I-style grid: cluster sizes × the baseline systems plus a
/// learned policy, over two seeds.
fn small_grid() -> Suite {
    Suite::builder("table1-small")
        .topologies([Topology::paper(3), Topology::paper(5)])
        .workloads([WorkloadSpec::paper().with_total_jobs(150)])
        .policies([
            PolicySpec::round_robin(),
            PolicySpec::static_pair(
                "first-fit+sleep",
                AllocatorKind::FirstFit,
                PowerKind::SleepImmediately,
            ),
            quick_drl(),
        ])
        .seeds([11, 12])
        .build()
}

#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let suite = small_grid();
    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    let parallel = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("parallel run");

    assert_eq!(serial.cells.len(), suite.len());
    assert_eq!(
        serial.report().to_json(),
        parallel.report().to_json(),
        "1-thread and 8-thread suite reports must be byte-identical"
    );
    // And a second parallel run reproduces itself.
    let again = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("parallel rerun");
    assert_eq!(parallel.report().to_json(), again.report().to_json());
}

#[test]
fn trace_cache_shares_traces_across_policies() {
    let suite = small_grid();
    let run = SuiteRunner::new().run(&suite).expect("run");
    // 2 topologies x 2 seeds = 4 evaluation traces shared by 3 policies
    // each, plus 2x2 single pre-training segments for the learned policy:
    // 8 distinct materializations instead of one per use.
    assert_eq!(run.traces_materialized, 8);
    assert!(
        run.trace_cache_hits >= 8,
        "expected >= 8 trace-cache hits, got {}",
        run.trace_cache_hits
    );
}

#[test]
fn changing_one_cells_seed_changes_only_that_cell() {
    let base = Suite::builder("seed-independence")
        .topologies([Topology::paper(4)])
        .workloads([WorkloadSpec::paper().with_total_jobs(150)])
        .policies([
            PolicySpec::round_robin(),
            PolicySpec::static_pair(
                "first-fit+sleep",
                AllocatorKind::FirstFit,
                PowerKind::SleepImmediately,
            ),
            quick_drl(),
        ])
        .seeds([11])
        .build();

    let mut perturbed = base.clone();
    // Change only the learned-policy cell's seed.
    let target = 2;
    assert_eq!(perturbed.scenarios[target].policy.name(), "drl-quick");
    perturbed.scenarios[target].seed = 99;

    let before = SuiteRunner::new().run(&base).expect("base run");
    let after = SuiteRunner::new().run(&perturbed).expect("perturbed run");

    for (i, (b, a)) in before.cells.iter().zip(&after.cells).enumerate() {
        let b = CellMetrics::from_result(&b.result);
        let a = CellMetrics::from_result(&a.result);
        if i == target {
            assert_ne!(b, a, "perturbed cell {i} must change");
        } else {
            assert_eq!(b, a, "untouched cell {i} must not change");
        }
    }
}

#[test]
fn learned_cells_restore_identical_pretraining_across_thread_counts() {
    // The pre-train cache is keyed by content; its hits must not depend on
    // scheduling. Run the same learned cell twice (two seeds share nothing,
    // same seed shares everything).
    let suite = Suite::builder("pretrain-cache")
        .topologies([Topology::paper(3)])
        .workloads([WorkloadSpec::paper().with_total_jobs(120)])
        .policies([quick_drl(), PolicySpec::round_robin()])
        .seeds([5])
        .build();
    let a = SuiteRunner::serial().run(&suite).expect("serial");
    let b = SuiteRunner::new()
        .with_threads(4)
        .run(&suite)
        .expect("parallel");
    let stats_a = a.cells[0].drl_stats.expect("learned cell has stats");
    let stats_b = b.cells[0].drl_stats.expect("learned cell has stats");
    assert_eq!(
        stats_a, stats_b,
        "pre-training must be schedule-independent"
    );
    assert!(stats_a.decisions > 0);
}
