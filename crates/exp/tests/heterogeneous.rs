//! Heterogeneous big/little fleets end-to-end: the capacity-aware DRL
//! stack must actually *win* on asymmetric fleets (not just run), and the
//! heterogeneity columns must land in the canonical report.

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_exp::prelude::*;
use hierdrl_exp::runner::CellRun;
use hierdrl_exp::scenario::Pretrain;

/// A cheap DRL variant so learned-policy cells stay fast in debug builds.
fn quick_drl() -> PolicySpec {
    PolicySpec::drl_variant(
        "drl-quick",
        DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            minibatch: 8,
            train_interval: 8,
            ..Default::default()
        },
        Pretrain {
            segments: 1,
            fraction: 0.5,
        },
    )
}

/// Power × latency operating point (J·s per job²): the Fig.-10-style
/// scalarization both axes of the trade-off feed into.
fn power_latency(cell: &CellRun) -> f64 {
    cell.result.energy_per_job_j() * cell.result.mean_latency_s()
}

#[test]
fn capacity_aware_drl_beats_round_robin_on_big_little() {
    // The acceptance criterion of the heterogeneity PR: on the canonical
    // big/little fleet (a quarter of servers at 2x capacity), the
    // capacity-aware DRL allocator must beat capacity-blind round-robin
    // on power x latency.
    let suite = Suite::builder("hetero-acceptance")
        .topologies([Topology::big_little(6, 0.25, 2.0)])
        .workloads([WorkloadSpec::paper().with_total_jobs(600)])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([9])
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let rr = run.find_policy("round-robin").expect("round-robin cell");
    let drl = run.find_policy("drl-quick").expect("drl cell");

    let (rr_pl, drl_pl) = (power_latency(rr), power_latency(drl));
    assert!(
        drl_pl < rr_pl,
        "capacity-aware DRL must beat round-robin on power x latency: \
         drl {drl_pl:.0} vs rr {rr_pl:.0} J·s/job²"
    );

    // And the win comes from using the fleet's asymmetry: the DRL cell
    // sleeps part of the fleet, which always-on round-robin never does.
    assert_eq!(rr.result.fleet.sleep_fraction, 0.0);
    assert!(drl.result.fleet.sleep_fraction > 0.0);
}

#[test]
fn report_carries_capacity_columns_for_every_preset_fleet() {
    // A one-policy slice of the heterogeneous preset's three fleets: the
    // capacity axes must land in the canonical report, and homogeneous
    // cells must stay skew-free.
    let suite = Suite::builder("hetero-columns")
        .topologies([
            Topology::paper(5),
            Topology::big_little(5, 0.25, 2.0),
            Topology::big_little(5, 0.2, 4.0),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(80)])
        .policies([PolicySpec::round_robin()])
        .seeds([3])
        .build();
    let report = SuiteRunner::new().run(&suite).expect("run").report();
    let by_topology: Vec<(f64, f64)> = report
        .cells
        .iter()
        .map(|c| (c.capacity_total, c.capacity_skew))
        .collect();
    // paper-m5; 1 big of 5 at 2x; 1 big of 5 at 4x.
    assert_eq!(by_topology, vec![(5.0, 1.0), (6.0, 2.0), (8.0, 4.0)]);

    // Energy on the skewed fleets reflects the capacity-scaled power
    // model: a bigger fleet at the same always-on load burns more energy.
    let energies: Vec<f64> = report.cells.iter().map(|c| c.metrics.energy_kwh).collect();
    assert!(
        energies[0] < energies[1] && energies[1] < energies[2],
        "capacity-scaled power must order always-on energy by fleet capacity: {energies:?}"
    );
}
