//! Integration tests for the real-trace grid: serial-vs-parallel
//! byte-identity over the committed fixtures, pinned provenance columns,
//! the demand gate's synthetic-demand fallback, and the online-vs-frozen
//! ablation on the trace's own wall-clock weeks.

use hierdrl_exp::prelude::*;
use hierdrl_exp::report::CellReport;
use hierdrl_trace::source::TraceFormat;

fn fixture(name: &str) -> String {
    format!(
        "{}/../trace/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn google_workload() -> WorkloadSpec {
    WorkloadSpec::real_trace(
        "real-google",
        fixture("google_task_events.csv"),
        TraceFormat::GoogleTaskEvents,
    )
}

fn alibaba_workload() -> WorkloadSpec {
    WorkloadSpec::real_trace(
        "real-alibaba",
        fixture("alibaba_batch_task.csv"),
        TraceFormat::AlibabaBatchTask,
    )
}

#[test]
fn realtrace_suite_is_byte_identical_serial_vs_parallel() {
    let suite = presets::realtrace(4, [google_workload(), alibaba_workload()]);
    let parallel = SuiteRunner::new().run(&suite).expect("parallel run");
    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    assert_eq!(parallel.report().to_json(), serial.report().to_json());
}

#[test]
fn realtrace_cells_carry_pinned_provenance_columns() {
    let suite = Suite::builder("prov")
        .topologies([Topology::paper(4)])
        .workloads([google_workload(), alibaba_workload()])
        .policies([PolicySpec::round_robin()])
        .seeds([1])
        .build();
    let run = SuiteRunner::serial().run(&suite).expect("run");
    let report = run.report();
    let by_workload = |name: &str| -> &CellReport {
        report
            .cells
            .iter()
            .find(|c| c.workload == name)
            .expect("workload cell present")
    };
    let google = by_workload("real-google")
        .trace
        .as_ref()
        .expect("provenance");
    assert_eq!(google.format, "google");
    assert_eq!(google.rows, 381);
    assert_eq!(google.jobs_kept, 120);
    assert_eq!(google.jobs_dropped, 9);
    assert_eq!(google.demand_defaulted, 8);
    assert!(
        !google.synthetic_demand,
        "8/120 stays under the default gate"
    );
    let alibaba = by_workload("real-alibaba")
        .trace
        .as_ref()
        .expect("provenance");
    assert_eq!(alibaba.format, "alibaba");
    assert_eq!(alibaba.rows, 152);
    assert_eq!(alibaba.jobs_kept, 130);
    assert_eq!(alibaba.jobs_dropped, 22);
    assert_eq!(alibaba.demand_defaulted, 7);
    assert!(!alibaba.synthetic_demand);
    // Synthetic cells never carry the block.
    let synth = Suite::builder("synth")
        .topologies([Topology::paper(4)])
        .workloads([WorkloadSpec::paper().with_total_jobs(100)])
        .policies([PolicySpec::round_robin()])
        .seeds([1])
        .build();
    let run = SuiteRunner::serial().run(&synth).expect("run");
    assert_eq!(run.report().cells[0].trace, None);
}

#[test]
fn tightened_demand_gate_falls_back_to_synthetic_demands() {
    // 8/120 defaulted ≈ 6.7%: over a 5% gate, under the 25% default. The
    // fallback must keep the file's arrival process (same jobs, same
    // count) while changing the run (different demands -> different
    // metrics).
    let trusted = Suite::builder("trusted")
        .topologies([Topology::paper(4)])
        .workloads([google_workload()])
        .policies([PolicySpec::round_robin()])
        .seeds([1])
        .build();
    let gated = Suite::builder("gated")
        .topologies([Topology::paper(4)])
        .workloads([google_workload().with_demand_gate(0.05)])
        .policies([PolicySpec::round_robin()])
        .seeds([1])
        .build();
    let trusted = SuiteRunner::serial().run(&trusted).expect("run");
    let gated = SuiteRunner::serial().run(&gated).expect("run");
    let (t, g) = (&trusted.report().cells[0], &gated.report().cells[0]);
    assert!(!t.trace.as_ref().unwrap().synthetic_demand);
    assert!(g.trace.as_ref().unwrap().synthetic_demand);
    assert_eq!(t.metrics.jobs_completed, g.metrics.jobs_completed);
    assert_ne!(
        t.metrics.energy_kwh, g.metrics.energy_kwh,
        "re-drawn demands change the energy integral"
    );
}

#[test]
fn real_weeks_cells_report_one_row_per_wall_clock_week() {
    let suite = Suite::builder("weeks")
        .topologies([Topology::paper(4)])
        .workloads([google_workload()])
        .drifts([DriftSpec::real_segments()])
        .policies([PolicySpec::round_robin()])
        .seeds([1])
        .build();
    let run = SuiteRunner::serial().run(&suite).expect("run");
    let cell = &run.report().cells[0];
    let segments = cell.segments.as_ref().expect("segment rows");
    // The 25-day fixture spans four weekly windows (sizes pinned in the
    // trace crate's fixture tests).
    assert_eq!(segments.len(), 4);
    let jobs: Vec<u64> = segments.iter().map(|s| s.metrics.jobs_completed).collect();
    assert_eq!(jobs, [35, 39, 29, 17]);
    for (i, seg) in segments.iter().enumerate() {
        assert_eq!(seg.shift, format!("week{i}"));
    }
}

#[test]
fn frozen_twin_stops_training_across_real_weeks() {
    let mk = |frozen: bool| {
        let drift = if frozen {
            DriftSpec::real_segments().with_frozen_learners()
        } else {
            DriftSpec::real_segments()
        };
        Suite::builder("ablate")
            .topologies([Topology::paper(4)])
            .workloads([google_workload()])
            .drifts([drift])
            .policies([PolicySpec::drl_only()])
            .seeds([1])
            .build()
    };
    let online = SuiteRunner::serial().run(&mk(false)).expect("online run");
    let frozen = SuiteRunner::serial().run(&mk(true)).expect("frozen run");
    let steps = |run: &SuiteRun| -> Vec<u64> {
        run.report().cells[0]
            .segments
            .as_ref()
            .expect("segment rows")
            .iter()
            .map(|s| s.drl.expect("learned policy stats").train_steps)
            .collect()
    };
    let online_steps = steps(&online);
    let frozen_steps = steps(&frozen);
    assert!(
        online_steps.windows(2).all(|w| w[0] < w[1]),
        "online training keeps accumulating across weeks: {online_steps:?}"
    );
    assert!(
        frozen_steps.windows(2).all(|w| w[0] == w[1]),
        "frozen learners stop at the pre-training step count: {frozen_steps:?}"
    );
}
