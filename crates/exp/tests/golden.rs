//! Golden-file test of the canonical [`SuiteReport`] JSON: downstream
//! tooling (plot scripts, the perf-trajectory tracker) parses this schema,
//! so renaming, reordering, or retyping a field must fail loudly here
//! instead of drifting silently.
//!
//! The report is built from fixed values (no simulation), so the golden
//! file only pins the *schema*, never simulator behaviour. To regenerate
//! after an intentional schema change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p hierdrl-exp --test golden
//! ```

use hierdrl_core::allocator::DrlStats;
use hierdrl_exp::report::{
    CellMetrics, CellReport, ExpectationRow, FleetSize, SegmentReport, ShardReport, SuiteReport,
};
use std::path::PathBuf;

fn metrics(scale: f64) -> CellMetrics {
    CellMetrics {
        jobs_completed: (100.0 * scale) as u64,
        energy_kwh: 1.25 * scale,
        latency_mega_s: 0.005 * scale,
        average_power_w: 450.0 * scale,
        mean_latency_s: 50.0,
        energy_per_job_j: 45_000.0,
        sleep_fraction: 0.25,
        wake_transitions: (12.0 * scale) as u64,
        span_hours: 10.0,
    }
}

fn drl_stats(train_steps: u64) -> DrlStats {
    DrlStats {
        decisions: 1500,
        train_steps,
        loss_ema: 0.125,
        autoencoder_trained: true,
        autoencoder_loss: 0.03125,
    }
}

/// A fixed report exercising every schema branch: a single-cluster cell
/// with learner statistics, a sharded cell with per-cluster rows, a
/// concept-drift cell with per-segment rows, a chaos cell with its fault
/// column and requeue counter, an autoscaled cell with its elastic column
/// and fleet-size bounds, and evaluated expectation rows.
fn canonical_report() -> SuiteReport {
    SuiteReport {
        suite: "golden".to_string(),
        cells: vec![
            CellReport {
                id: "paper-m5/paper/drl-only/s7".to_string(),
                topology: "paper-m5".to_string(),
                servers: 5,
                capacity_total: 5.0,
                capacity_skew: 1.0,
                workload: "paper".to_string(),
                fault: None,
                elastic: None,
                policy: "drl-only".to_string(),
                seed: 7,
                metrics: metrics(1.0),
                jobs_requeued: 0,
                fleet_size: Some(FleetSize::fixed(5)),
                drl: Some(drl_stats(550)),
                segments: None,
                clusters: None,
                trace: None,
            },
            CellReport {
                id: "paper-c2m6-rr/paper/round-robin/s7".to_string(),
                topology: "paper-c2m6-rr".to_string(),
                servers: 6,
                capacity_total: 9.0,
                capacity_skew: 2.0,
                workload: "paper".to_string(),
                fault: None,
                elastic: None,
                policy: "round-robin".to_string(),
                seed: 7,
                metrics: metrics(2.0),
                jobs_requeued: 0,
                fleet_size: Some(FleetSize::fixed(6)),
                drl: None,
                segments: None,
                trace: None,
                clusters: Some(vec![
                    ShardReport {
                        cluster: 0,
                        servers: 3,
                        jobs_routed: 100,
                        metrics: metrics(1.0),
                        drl: None,
                    },
                    ShardReport {
                        cluster: 1,
                        servers: 3,
                        jobs_routed: 100,
                        metrics: metrics(1.0),
                        drl: None,
                    },
                ]),
            },
            CellReport {
                id: "paper-m5/paper@rate-step-x2/drl-only/s7".to_string(),
                topology: "paper-m5".to_string(),
                servers: 5,
                capacity_total: 5.0,
                capacity_skew: 1.0,
                workload: "paper".to_string(),
                fault: None,
                elastic: None,
                policy: "drl-only".to_string(),
                seed: 7,
                metrics: metrics(2.0),
                jobs_requeued: 0,
                fleet_size: Some(FleetSize::fixed(5)),
                drl: Some(drl_stats(700)),
                segments: Some(vec![
                    SegmentReport {
                        segment: 0,
                        shift: "stationary".to_string(),
                        metrics: metrics(1.0),
                        drl: Some(drl_stats(620)),
                    },
                    SegmentReport {
                        segment: 1,
                        shift: "rate-x2".to_string(),
                        metrics: metrics(1.0),
                        drl: Some(drl_stats(700)),
                    },
                ]),
                clusters: None,
                trace: None,
            },
            CellReport {
                id: "paper-m5/paper%crash-storm/hierarchical/s7".to_string(),
                topology: "paper-m5".to_string(),
                servers: 5,
                capacity_total: 5.0,
                capacity_skew: 1.0,
                workload: "paper".to_string(),
                fault: Some("crash-storm".to_string()),
                elastic: None,
                policy: "hierarchical".to_string(),
                seed: 7,
                metrics: metrics(1.0),
                jobs_requeued: 17,
                fleet_size: Some(FleetSize::fixed(5)),
                drl: Some(drl_stats(550)),
                segments: None,
                clusters: None,
                trace: None,
            },
            CellReport {
                id: "paper-m5/paper~threshold/hierarchical/s7".to_string(),
                topology: "paper-m5".to_string(),
                servers: 5,
                capacity_total: 5.0,
                capacity_skew: 1.0,
                workload: "paper".to_string(),
                fault: None,
                elastic: Some("threshold".to_string()),
                policy: "hierarchical".to_string(),
                seed: 7,
                metrics: metrics(1.0),
                jobs_requeued: 4,
                fleet_size: Some(FleetSize {
                    min: 3,
                    max: 7,
                    mean: 4.75,
                }),
                drl: Some(drl_stats(550)),
                segments: None,
                clusters: None,
                trace: None,
            },
        ],
        expectations: vec![
            ExpectationRow {
                name: "jobs-conserved".to_string(),
                passed: true,
                detail: "500 jobs completed exactly once across 5 cells (21 crash requeues)"
                    .to_string(),
            },
            ExpectationRow {
                name: "autoscale-threshold".to_string(),
                passed: true,
                detail: "~threshold hierarchical energy/job 0.930x (tolerance 1), \
                         latency 1.020x (slack 1.1) vs fixed fleet"
                    .to_string(),
            },
            ExpectationRow {
                name: "graceful-under-crash-storm".to_string(),
                passed: true,
                detail: "hierarchical degrades 1.150x vs round-robin 1.400x under \
                         %crash-storm (tolerance 1)"
                    .to_string(),
            },
        ],
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("suite_report.json")
}

#[test]
fn suite_report_schema_matches_golden_file() {
    let rendered = canonical_report().to_json_pretty() + "\n";
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let committed =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert_eq!(
        rendered,
        committed,
        "SuiteReport JSON schema drifted from {}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn golden_report_round_trips_through_json() {
    let report = canonical_report();
    let back: SuiteReport =
        serde_json::from_str(&report.to_json()).expect("canonical JSON deserializes");
    assert_eq!(back, report);
}
