//! Online-learning / concept-drift sweeps: per-segment reporting, carried
//! learners, the serial/parallel byte-identity guarantee one level down
//! (sharded drift cells), and the acceptance bar — continued online
//! training must improve (or hold) post-drift segment metrics relative to
//! the frozen-learner ablation.

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_exp::prelude::*;
use hierdrl_exp::scenario::Pretrain;

/// A cheap DRL variant so learned-policy cells stay fast in debug builds.
fn quick_drl() -> PolicySpec {
    PolicySpec::drl_variant(
        "drl-quick",
        DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            minibatch: 8,
            train_interval: 8,
            ..Default::default()
        },
        Pretrain {
            segments: 1,
            fraction: 0.5,
        },
    )
}

const STREAM_JOBS: u64 = 150;

/// A sharded drift grid: multi-cluster topologies × drifting workloads,
/// with static and learned policies carrying state across both shard and
/// segment boundaries.
fn sharded_drift_grid() -> Suite {
    Suite::builder("drift-sharded")
        .topologies([
            Topology::sharded_paper(2, 6, RouterPolicy::RoundRobin),
            Topology::sharded_paper(3, 6, RouterPolicy::LeastLoaded),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(STREAM_JOBS)])
        .drifts([DriftSpec::rate_step(2.0), DriftSpec::stationary(3)])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([13])
        .build()
}

#[test]
fn sharded_drift_report_is_byte_identical_to_serial() {
    let suite = sharded_drift_grid();
    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    let sharded = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded run");
    assert_eq!(
        serial.report().to_json(),
        sharded.report().to_json(),
        "sharded drift suites must stay byte-identical to serial execution"
    );
    let again = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded rerun");
    assert_eq!(sharded.report().to_json(), again.report().to_json());
}

#[test]
fn drift_cells_report_consistent_per_segment_rows() {
    let suite = sharded_drift_grid();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let report = run.report();

    for (cell_run, cell) in run.cells.iter().zip(&report.cells) {
        let segments = cell
            .segments
            .as_ref()
            .expect("every drift cell reports per-segment rows");
        assert_eq!(segments.len(), cell_run.scenario.num_segments());

        // Segments partition the evaluation stream: no job lost at any
        // boundary, and the whole-cell aggregate is their sum.
        let seg_jobs: u64 = segments.iter().map(|s| s.metrics.jobs_completed).sum();
        assert_eq!(seg_jobs, STREAM_JOBS);
        assert_eq!(cell.metrics.jobs_completed, STREAM_JOBS);
        let seg_kwh: f64 = segments.iter().map(|s| s.metrics.energy_kwh).sum();
        assert!((cell.metrics.energy_kwh - seg_kwh).abs() < 1e-9);
        let seg_span: f64 = segments.iter().map(|s| s.metrics.span_hours).sum();
        assert!((cell.metrics.span_hours - seg_span).abs() < 1e-9);

        // Shift labels follow the drift spec.
        let drift = cell_run.scenario.drift.as_ref().unwrap();
        for (i, seg) in segments.iter().enumerate() {
            assert_eq!(seg.segment, i);
            assert_eq!(seg.shift, drift.shifts[i].label());
        }

        // Learned cells: cumulative decision counts are non-decreasing
        // across segments and end at the cell total.
        if let Some(fleet) = cell.drl {
            let per_seg: Vec<u64> = segments
                .iter()
                .map(|s| s.drl.expect("learned segments carry stats").decisions)
                .collect();
            assert!(per_seg.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(*per_seg.last().unwrap(), fleet.decisions);
        }

        // Sharded drift cells also carry per-cluster rows whose totals
        // agree with the fleet rows.
        let shards = cell.clusters.as_ref().expect("sharded cells have rows");
        let routed: u64 = shards.iter().map(|s| s.jobs_routed).sum();
        assert_eq!(routed, STREAM_JOBS);
    }
}

#[test]
fn stationary_drift_matches_cost_of_single_trace_cells() {
    // The stationary drift is the control row: segmentation itself (fresh
    // seeds aside) must not change what a policy can do. Jobs complete,
    // spans stay comparable, and the learner keeps training through every
    // boundary.
    let suite = Suite::builder("drift-control")
        .topologies([Topology::paper(4)])
        .workloads([WorkloadSpec::paper().with_total_jobs(240)])
        .drifts([DriftSpec::stationary(3)])
        .policies([quick_drl()])
        .seeds([7])
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let cell = &run.cells[0];
    assert_eq!(cell.result.outcome.totals.jobs_completed, 240);
    assert_eq!(cell.segments.len(), 3);
    let steps: Vec<u64> = cell
        .segments
        .iter()
        .map(|s| s.drl_stats.unwrap().train_steps)
        .collect();
    assert!(
        steps.windows(2).all(|w| w[0] < w[1]),
        "online training must continue across every segment boundary: {steps:?}"
    );
}

#[test]
fn single_segment_drift_still_reports_its_segment_row() {
    // A one-segment drift is degenerate but valid; it must not silently
    // demote to a non-drift cell (consumers key drift handling off the
    // id/spec, so `segments` must be present and consistent).
    let suite = Suite::builder("drift-one")
        .topologies([
            Topology::paper(3),
            Topology::sharded_paper(2, 4, RouterPolicy::RoundRobin),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(80)])
        .drifts([DriftSpec::stationary(1)])
        .policies([PolicySpec::round_robin()])
        .seeds([3])
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let report = run.report();
    for cell in &report.cells {
        let segments = cell.segments.as_ref().expect("drift cell reports rows");
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].metrics.jobs_completed, 80);
        assert_eq!(cell.metrics.jobs_completed, 80);
        assert!(cell.id.contains("@stationary-1"));
    }
}

/// The ablation pair's DRL variant: the first-fit guide annealed to zero
/// and a small constant exploration rate, so the online cell and its
/// frozen twin follow the *same* behaviour policy and differ only in
/// whether the network keeps training.
fn ablation_drl() -> PolicySpec {
    PolicySpec::drl_variant(
        "drl-ablate",
        DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            minibatch: 8,
            train_interval: 8,
            guide: hierdrl_rl::policy::EpsilonSchedule::Constant(0.0),
            epsilon: hierdrl_rl::policy::EpsilonSchedule::Constant(0.05),
            ..Default::default()
        },
        Pretrain {
            segments: 1,
            fraction: 0.5,
        },
    )
}

#[test]
fn continued_training_improves_or_holds_post_drift_metrics() {
    // The acceptance bar: on the rate-step drift, the DRL allocator with
    // continued online training must beat (or hold against) the same
    // pre-trained allocator frozen at evaluation start, on the post-drift
    // segment. Both cells derive identical seeds and share one memoized
    // pre-training (the drift axis is outside the pre-train cache key),
    // and the variant disables the first-fit guide, so the pair differs
    // *only* by continued training.
    let online = DriftSpec::rate_step(2.0);
    let frozen = online.clone().with_frozen_learners();
    let suite = Suite::builder("drift-ablation")
        .topologies([Topology::paper(5)])
        .workloads([WorkloadSpec::paper().with_total_jobs(2400)])
        .drifts([online, frozen])
        .policies([ablation_drl()])
        .seeds([42])
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let (online_cell, frozen_cell) = (&run.cells[0], &run.cells[1]);

    // Structural: the online cell keeps training after the drift; the
    // frozen ablation performs not a single update past pre-training.
    let online_steps: Vec<u64> = online_cell
        .segments
        .iter()
        .map(|s| s.drl_stats.unwrap().train_steps)
        .collect();
    assert!(online_steps[1] > online_steps[0]);
    let frozen_steps: Vec<u64> = frozen_cell
        .segments
        .iter()
        .map(|s| s.drl_stats.unwrap().train_steps)
        .collect();
    assert_eq!(frozen_steps[0], frozen_steps[1], "frozen means frozen");
    assert!(
        online_steps[1] > frozen_steps[1],
        "the pair must differ only by continued training"
    );

    // The headline metric is the allocator's own objective (Eqn. 4): the
    // time-average of normalized power + weighted queueing + overload over
    // the post-drift segment. (Raw energy or latency alone would hide the
    // trade the learner is *supposed* to make — e.g. waking a server to
    // absorb a doubled arrival rate.)
    let post_drift_cost = |cell: &CellRun| {
        let m = cell.scenario.topology.servers() as f64;
        let peak = m * cell.scenario.topology.clusters()[0].power.peak_watts;
        let w = hierdrl_core::reward::RewardWeights::balanced();
        let t = &cell.segments[1].result.outcome.totals;
        let span = t.time_s.max(1e-9);
        w.power * (t.energy_joules / span / peak)
            + w.vms * (t.queue_time_integral / span / m)
            + w.reliability * (t.overload_integral / span)
    };
    let (on, off) = (post_drift_cost(online_cell), post_drift_cost(frozen_cell));
    assert!(
        on <= off * 1.02,
        "continued training must improve or hold the post-drift segment \
         objective: online {on:.4} vs frozen {off:.4}"
    );
}
