//! Smoke-level execution of presets that have no binary consumer yet, so
//! they cannot bit-rot: `load_sweep` runs a 1-seed micro grid end to end
//! (a full `load_sweep` bin with the CSV cube stays a ROADMAP item).

use hierdrl_exp::prelude::*;
use hierdrl_exp::presets;

#[test]
fn load_sweep_micro_grid_runs_end_to_end() {
    // One cluster size x one rate factor x the three systems, 120 jobs.
    let suite = presets::load_sweep(&[3], &[1.0], 40.0);
    assert_eq!(suite.len(), 3);
    let run = SuiteRunner::new()
        .run(&suite)
        .expect("load_sweep micro grid");

    let report = run.report();
    assert_eq!(report.suite, "load_sweep");
    for cell in &report.cells {
        assert_eq!(cell.metrics.jobs_completed, 120);
        assert!(cell.metrics.energy_kwh > 0.0);
    }
    // The learned systems actually learned (their stats made it through).
    assert!(run.find_policy("drl-only").unwrap().drl_stats.is_some());
    assert!(run.find_policy("hierarchical").unwrap().drl_stats.is_some());
}
