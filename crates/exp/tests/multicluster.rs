//! Multi-cluster sharding: the sharded (multi-thread) suite run must be
//! byte-identical to the single-thread run, the router must conserve the
//! arrival stream across per-cluster rows, and shard seeds must be
//! independent — mirroring `determinism.rs` one level down.

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_exp::prelude::*;
use hierdrl_exp::scenario::Pretrain;
use hierdrl_sim::router::RouterPolicy;

/// A cheap DRL variant so learned-policy cells stay fast in debug builds.
fn quick_drl() -> PolicySpec {
    PolicySpec::drl_variant(
        "drl-quick",
        DrlAllocatorConfig {
            warmup_decisions: 20,
            ae_pretrain_samples: 50,
            ae_epochs: 2,
            minibatch: 8,
            train_interval: 8,
            ..Default::default()
        },
        Pretrain {
            segments: 1,
            fraction: 0.5,
        },
    )
}

const STREAM_JOBS: u64 = 150;

/// A grid over cluster counts and router policies, with static and learned
/// policies riding the same arrival stream.
fn sharded_grid() -> Suite {
    Suite::builder("multicluster-small")
        .topologies([
            Topology::sharded_paper(2, 6, RouterPolicy::RoundRobin),
            Topology::sharded_paper(3, 6, RouterPolicy::LeastLoaded),
            // Uneven split ([3, 2]) exercises capacity weighting.
            Topology::sharded_paper(2, 5, RouterPolicy::WeightedByCapacity),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(STREAM_JOBS)])
        .policies([
            PolicySpec::round_robin(),
            PolicySpec::static_pair(
                "first-fit+sleep",
                AllocatorKind::FirstFit,
                PowerKind::SleepImmediately,
            ),
            quick_drl(),
        ])
        .seeds([21])
        .build()
}

#[test]
fn sharded_report_is_byte_identical_to_single_thread() {
    let suite = sharded_grid();
    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    let sharded = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded run");

    assert_eq!(serial.cells.len(), suite.len());
    assert_eq!(
        serial.report().to_json(),
        sharded.report().to_json(),
        "single-thread and sharded multi-cluster reports must be byte-identical"
    );
    // And the sharded run reproduces itself.
    let again = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded rerun");
    assert_eq!(sharded.report().to_json(), again.report().to_json());
}

#[test]
fn router_conserves_the_stream_across_cluster_rows() {
    let suite = sharded_grid();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let report = run.report();

    for (cell_run, cell) in run.cells.iter().zip(&report.cells) {
        let shards = cell
            .clusters
            .as_ref()
            .expect("multi-cluster cells report per-cluster rows");
        assert_eq!(shards.len(), cell_run.scenario.topology.clusters().len());

        // No job lost, none duplicated: routed counts partition the stream
        // and every routed job arrives (and completes — shards drain).
        let routed: u64 = shards.iter().map(|s| s.jobs_routed).sum();
        assert_eq!(routed, STREAM_JOBS);
        let completed: u64 = shards.iter().map(|s| s.metrics.jobs_completed).sum();
        assert_eq!(completed, STREAM_JOBS);
        assert_eq!(cell.metrics.jobs_completed, STREAM_JOBS);
        let shard_servers: usize = shards.iter().map(|s| s.servers).sum();
        assert_eq!(cell.servers, shard_servers);

        // Round-robin routing splits an even stream evenly.
        if cell.topology.ends_with("-rr") {
            assert_eq!(shards[0].jobs_routed, STREAM_JOBS / 2);
            assert_eq!(shards[1].jobs_routed, STREAM_JOBS / 2);
        }
        // Capacity weighting tracks the 3:2 split within one job.
        if cell.topology.ends_with("-weighted") {
            let quota = STREAM_JOBS as f64 * 3.0 / 5.0;
            assert!((shards[0].jobs_routed as f64 - quota).abs() <= 1.0);
        }
    }
}

#[test]
fn shard_learners_are_independent_per_shard() {
    let suite = Suite::builder("shard-independence")
        .topologies([Topology::sharded_paper(2, 6, RouterPolicy::RoundRobin)])
        .workloads([WorkloadSpec::paper().with_total_jobs(120)])
        .policies([quick_drl()])
        .seeds([5])
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let cell = &run.cells[0];
    assert_eq!(cell.shards.len(), 2);

    // Each shard trained its own learner on its own routed sub-stream.
    let a = cell.shards[0].drl_stats.expect("shard 0 learner stats");
    let b = cell.shards[1].drl_stats.expect("shard 1 learner stats");
    assert!(a.decisions > 0 && b.decisions > 0);
    // Fleet-level stats sum the shard counters.
    let fleet = cell.drl_stats.expect("fleet learner stats");
    assert_eq!(fleet.decisions, a.decisions + b.decisions);
    assert_eq!(fleet.train_steps, a.train_steps + b.train_steps);

    // Changing the cell seed changes both shards' learner seeds (the
    // two-level derivation): the per-shard configs must differ.
    let s = &cell.scenario;
    assert_ne!(s.shard_policy_seed(0), s.shard_policy_seed(1));
    let t = Scenario::new(
        s.topology.clone(),
        s.workload.clone(),
        s.policy.clone(),
        s.seed + 1,
        s.max_jobs,
    );
    assert_ne!(t.shard_policy_seed(0), s.shard_policy_seed(0));
}

#[test]
fn heterogeneous_sharded_report_is_byte_identical_to_single_thread() {
    // Big/little member clusters, learned and static policies: sharded
    // heterogeneous suites must stay byte-identical to serial execution,
    // exactly like their homogeneous counterparts.
    let suite = Suite::builder("hetero-sharded")
        .topologies([
            Topology::sharded_big_little(2, 6, 0.34, 2.0, RouterPolicy::WeightedByCapacity),
            Topology::sharded_big_little(3, 6, 0.34, 2.0, RouterPolicy::LeastLoaded),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(STREAM_JOBS)])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([11])
        .build();
    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    let sharded = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded run");
    assert_eq!(
        serial.report().to_json(),
        sharded.report().to_json(),
        "heterogeneous sharded reports must be byte-identical to serial"
    );
    let again = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded rerun");
    assert_eq!(sharded.report().to_json(), again.report().to_json());

    // The capacity columns land in every cell: 2x skew, and one 2x server
    // per member cluster (capacity 8 for two clusters of three, 9 for
    // three clusters of two).
    for cell in &serial.report().cells {
        assert_eq!(cell.capacity_skew, 2.0);
        assert_eq!(cell.servers, 6);
        let expected = if cell.topology.starts_with("big-little-c2") {
            8.0
        } else {
            9.0
        };
        assert_eq!(cell.capacity_total, expected, "cell {}", cell.id);
    }
}

#[test]
fn capacity_weighted_router_weighs_capacity_not_server_counts() {
    // Cluster 0: two 2x servers (weight 4); cluster 1: two unit servers
    // (weight 2). Capacity-weighted routing must send a 2:1 split even
    // though the server counts are equal — the satellite bug this PR
    // fixes (`Router` used to weight by server count).
    use hierdrl_exp::scenario::big_little_config;
    use hierdrl_sim::config::ClusterConfig;
    let topo = Topology::multi(
        "big-vs-little",
        vec![big_little_config(2, 1.0, 2.0), ClusterConfig::paper(2)],
        RouterPolicy::WeightedByCapacity,
    );
    let suite = Suite::builder("capacity-weights")
        .topologies([topo])
        .workloads([WorkloadSpec::paper().with_total_jobs(90)])
        .policies([PolicySpec::round_robin()])
        .seeds([4])
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let cell = &run.cells[0];
    assert_eq!(cell.shards[0].shard.jobs_routed, 60);
    assert_eq!(cell.shards[1].shard.jobs_routed, 30);
}

#[test]
fn max_jobs_truncates_the_stream_before_routing() {
    let suite = Suite::builder("truncate")
        .topologies([Topology::sharded_paper(2, 4, RouterPolicy::RoundRobin)])
        .workloads([WorkloadSpec::paper().with_total_jobs(100)])
        .policies([PolicySpec::round_robin()])
        .seeds([3])
        .limit_jobs(40)
        .build();
    let run = SuiteRunner::new().run(&suite).expect("run");
    let cell = &run.cells[0];
    let routed: u64 = cell.shards.iter().map(|s| s.shard.jobs_routed).sum();
    assert_eq!(routed, 40);
    assert_eq!(cell.result.outcome.totals.jobs_completed, 40);
}
