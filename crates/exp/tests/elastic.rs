//! Elastic-fleet suites: the serial/parallel byte-identity guarantee
//! extended to autoscaled cells — including sharded ones, where the router
//! re-derives capacity weights at membership epochs — job conservation
//! through join/leave churn, and the acceptance bar of the elastic PR:
//! autoscale + DRL must beat (or at worst match) the fixed-fleet DRL twin
//! on energy-per-job at equal latency, enforced through the declarative
//! expectation layer.

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_exp::prelude::*;
use hierdrl_exp::scenario::Pretrain;

/// A cheap DRL variant so learned-policy cells stay fast in debug builds.
fn quick_config() -> DrlAllocatorConfig {
    DrlAllocatorConfig {
        warmup_decisions: 20,
        ae_pretrain_samples: 50,
        ae_epochs: 2,
        minibatch: 8,
        train_interval: 8,
        ..Default::default()
    }
}

fn quick_pretrain() -> Pretrain {
    Pretrain {
        segments: 1,
        fraction: 0.5,
    }
}

fn quick_drl() -> PolicySpec {
    PolicySpec::drl_variant("drl-quick", quick_config(), quick_pretrain())
}

/// The full hierarchical stack (DRL global tier + RL local tier) with a
/// training budget that converges at debug-build job counts; names itself
/// `hierarchical` like the paper preset.
fn quick_hierarchical() -> PolicySpec {
    PolicySpec::hierarchical_variant(0.5, quick_config(), quick_pretrain())
}

const STREAM_JOBS: u64 = 150;

#[test]
fn elastic_sharded_byte_identity() {
    // The byte-identity guarantee on the elastic axis: membership
    // schedules on multi-cluster cells lower per shard from the shard's
    // own sub-seed (`mix(shard_seed(k), 5)`) and the router re-derives
    // capacity weights at the scheduled epoch boundaries, so thread count
    // must not leak into any autoscaled cell's report.
    let suite = Suite::builder("elastic-sharded")
        .topologies([
            Topology::sharded_paper(2, 6, RouterPolicy::WeightedByCapacity),
            Topology::paper(5),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(STREAM_JOBS)])
        .elastics_with_baseline([ElasticSpec::threshold(), ElasticSpec::learned()])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([21])
        .build();
    assert_eq!(suite.len(), 12);

    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    let sharded = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded run");
    assert_eq!(
        serial.report().to_json(),
        sharded.report().to_json(),
        "elastic suites must stay byte-identical between serial and parallel execution"
    );
    let again = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded rerun");
    assert_eq!(sharded.report().to_json(), again.report().to_json());

    // The membership actually changed: some autoscaled cell's fleet-size
    // columns span more than the initial size, and every cell reports the
    // columns (fixed cells as min = max = M).
    let report = serial.report();
    assert!(report.cells.iter().all(|c| c.fleet_size.is_some()));
    assert!(
        report
            .cells
            .iter()
            .filter(|c| c.elastic.is_some())
            .any(|c| {
                let f = c.fleet_size.as_ref().unwrap();
                f.min < f.max
            }),
        "at least one autoscaled cell must actually resize its fleet"
    );
    for cell in report.cells.iter().filter(|c| c.elastic.is_none()) {
        let f = cell.fleet_size.as_ref().unwrap();
        assert_eq!((f.min, f.max), (f.mean as usize, f.mean as usize));
    }
}

#[test]
fn elastic_grid_conserves_jobs_under_churn() {
    // Every arrived job completes exactly once under membership churn:
    // leaves drain-and-requeue like crashes, joins add capacity, and the
    // conservation expectation holds across the whole grid — on top of a
    // fault schedule running in the same cells.
    let suite = Suite::builder("elastic-conservation")
        .topologies([Topology::paper(5)])
        .workloads([WorkloadSpec::paper_scaled(1.5).with_total_jobs(300)])
        .faults_with_baseline([FaultSpec::crash_storm()])
        .elastics_with_baseline([ElasticSpec::threshold()])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([31])
        .expect(Expectation::JobConservation {
            name: "jobs-conserved".into(),
        })
        .build();
    assert_eq!(suite.len(), 8);

    let run = SuiteRunner::new().run(&suite).expect("conservation run");
    for cell in &run.cells {
        assert_eq!(
            cell.result.outcome.totals.jobs_completed, 300,
            "cell {} lost or duplicated jobs",
            cell.scenario.id
        );
    }
    let row = &run.expectations[0];
    assert!(row.passed, "{}: {}", row.name, row.detail);
}

#[test]
fn autoscale_beats_fixed_fleet_or_holds() {
    // The committed acceptance bar of the elastic PR, enforced through
    // the declarative layer itself: the autoscaled hierarchical cells must
    // land at or below their fixed-fleet twins on energy-per-job while
    // holding mean latency within the slack — scaling servers away must
    // beat leaving them to DPM sleep.
    let suite = Suite::builder("elastic-acceptance")
        .topologies([Topology::paper(6)])
        .workloads([WorkloadSpec::paper_scaled(0.6).with_total_jobs(400)])
        .elastics_with_baseline([ElasticSpec::threshold()])
        .policies([PolicySpec::round_robin(), quick_hierarchical()])
        .seeds([42])
        .expect(Expectation::JobConservation {
            name: "jobs-conserved".into(),
        })
        .expect(Expectation::DeterminismPin {
            name: "pin-threshold".into(),
            cell_contains: "~threshold/round-robin".into(),
        })
        .expect(Expectation::AutoscaleEconomics {
            name: "autoscale-beats-fixed-fleet".into(),
            elastic: "threshold".into(),
            policy: "hierarchical".into(),
            energy_tolerance: 1.0,
            latency_slack: 1.10,
        })
        .build();
    assert_eq!(suite.len(), 4);

    let run = SuiteRunner::new().run(&suite).expect("acceptance run");
    assert_eq!(run.expectations.len(), 3);
    for row in &run.expectations {
        eprintln!(
            "[{}] {}: {}",
            if row.passed { "PASS" } else { "FAIL" },
            row.name,
            row.detail
        );
        assert!(
            row.passed,
            "expectation {} failed: {}",
            row.name, row.detail
        );
    }

    // The verdicts ride the canonical report and the bench artifact, and
    // the bench rows carry the fleet-size columns the perf gate requires.
    let report = run.report();
    assert_eq!(report.expectations, run.expectations);
    let bench = run.bench_report();
    assert_eq!(bench.expectations, run.expectations);
    assert!(bench.cells.iter().all(|c| c.fleet_size.is_some()));
}
