//! Chaos-axis suites: fault-schedule independence between cells (the
//! property the seed tree promises), the serial/parallel byte-identity
//! guarantee extended to fault cells — including sharded ones — and the
//! acceptance bar of the chaos PR: the hierarchical framework must lose
//! less of its Eqn.-4 objective under injected faults than round-robin,
//! enforced through the declarative expectation layer.

use std::sync::OnceLock;

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_exp::prelude::*;
use hierdrl_exp::scenario::Pretrain;
use proptest::prelude::*;

/// A cheap DRL variant so learned-policy cells stay fast in debug builds.
fn quick_config() -> DrlAllocatorConfig {
    DrlAllocatorConfig {
        warmup_decisions: 20,
        ae_pretrain_samples: 50,
        ae_epochs: 2,
        minibatch: 8,
        train_interval: 8,
        ..Default::default()
    }
}

fn quick_pretrain() -> Pretrain {
    Pretrain {
        segments: 1,
        fraction: 0.5,
    }
}

fn quick_drl() -> PolicySpec {
    PolicySpec::drl_variant("drl-quick", quick_config(), quick_pretrain())
}

/// The full hierarchical stack (DRL global tier + RL local tier) with a
/// training budget that converges at debug-build job counts; names itself
/// `hierarchical` like the paper preset.
fn quick_hierarchical() -> PolicySpec {
    PolicySpec::hierarchical_variant(0.5, quick_config(), quick_pretrain())
}

const STREAM_JOBS: u64 = 150;

/// The grid the independence property runs on: every fault cell next to
/// its fault-free twin, one static and one learned policy.
fn independence_grid() -> Suite {
    Suite::builder("fault-independence")
        .topologies([Topology::paper(4)])
        .workloads([WorkloadSpec::paper().with_total_jobs(STREAM_JOBS)])
        .faults_with_baseline([FaultSpec::crash_storm()])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([11])
        .build()
}

/// Per-cell canonical JSON of a suite run.
fn cell_json(run: &SuiteRun) -> Vec<String> {
    run.report()
        .cells
        .iter()
        .map(|c| serde_json::to_string(c).expect("cell json"))
        .collect()
}

/// The unperturbed grid's per-cell reports, computed once for all
/// property cases.
fn baseline_cells() -> &'static [String] {
    static BASE: OnceLock<Vec<String>> = OnceLock::new();
    BASE.get_or_init(|| {
        let run = SuiteRunner::new()
            .run(&independence_grid())
            .expect("baseline run");
        cell_json(&run)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Perturbing one cell's `FaultSpec` — any crash-storm or
    /// straggler-wave parameters, either the static or the learned fault
    /// cell — leaves every *other* cell's report byte-identical, and
    /// changes the perturbed cell itself.
    #[test]
    fn perturbing_one_cells_fault_leaves_every_other_cell_byte_identical(
        which in 0usize..2,
        kind in 0usize..2,
        fraction in 0.1f64..0.7,
        start in 0.0f64..0.5,
        stagger in 0.0f64..0.1,
        length in 0.05f64..0.5,
        scale in 0.2f64..0.8,
    ) {
        let mut suite = independence_grid();
        let fault_cells: Vec<usize> = suite
            .scenarios
            .iter()
            .enumerate()
            .filter(|(_, s)| s.fault.is_some())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(fault_cells.len(), 2);
        let target = fault_cells[which];

        let shape = if kind == 0 {
            FaultShape::CrashStorm {
                fraction,
                start,
                stagger,
                outage: length,
            }
        } else {
            FaultShape::StragglerWave {
                fraction,
                scale,
                start,
                duration: length,
            }
        };
        // Same schedule *name* (ids — and hence twin lookups — stay
        // stable); entirely different fault behaviour.
        suite.scenarios[target].fault = Some(FaultSpec::new("crash-storm", vec![shape]));

        let perturbed = SuiteRunner::new().run(&suite).expect("perturbed run");
        let cells = cell_json(&perturbed);
        prop_assert_eq!(cells.len(), baseline_cells().len());
        for (i, (base, cell)) in baseline_cells().iter().zip(&cells).enumerate() {
            if i == target {
                prop_assert_ne!(base, cell, "perturbed cell {} must change", i);
            } else {
                prop_assert_eq!(base, cell, "untouched cell {} must not change", i);
            }
        }
    }
}

#[test]
fn sharded_chaos_report_is_byte_identical_to_serial() {
    // The byte-identity guarantee, one level down: fault schedules on
    // multi-cluster cells derive per shard (`mix(shard_seed(k), 4)`), so
    // thread count must not leak into any fault cell's report.
    let suite = Suite::builder("chaos-sharded")
        .topologies([
            Topology::sharded_paper(2, 6, RouterPolicy::RoundRobin),
            Topology::paper(5),
        ])
        .workloads([WorkloadSpec::paper().with_total_jobs(STREAM_JOBS)])
        .faults_with_baseline([FaultSpec::crash_storm(), FaultSpec::straggler_wave()])
        .policies([PolicySpec::round_robin(), quick_drl()])
        .seeds([21])
        .build();
    assert_eq!(suite.len(), 12);

    let serial = SuiteRunner::serial().run(&suite).expect("serial run");
    let sharded = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded run");
    assert_eq!(
        serial.report().to_json(),
        sharded.report().to_json(),
        "chaos suites must stay byte-identical between serial and parallel execution"
    );
    let again = SuiteRunner::new()
        .with_threads(8)
        .run(&suite)
        .expect("sharded rerun");
    assert_eq!(sharded.report().to_json(), again.report().to_json());

    // And the chaos actually happened: the sharded crash-storm cell
    // requeued jobs on both shards' fleets without losing any.
    let report = serial.report();
    let crash = report
        .cells
        .iter()
        .find(|c| c.id.contains("%crash-storm/round-robin") && c.id.contains("c2-m3"))
        .or_else(|| {
            report
                .cells
                .iter()
                .find(|c| c.fault.as_deref() == Some("crash-storm"))
        })
        .expect("a sharded crash-storm cell");
    assert!(crash.jobs_requeued > 0, "crash storm must requeue jobs");
    assert_eq!(crash.metrics.jobs_completed, STREAM_JOBS);
}

#[test]
fn graceful_degradation_acceptance_via_expectation_layer() {
    // The committed acceptance bar of the chaos PR, enforced through the
    // declarative layer itself: under both a crash storm and a straggler
    // wave, the full hierarchical framework's Eqn.-4 objective must
    // degrade (relative to its own fault-free twin) by no more than
    // round-robin's does — alongside conservation-through-requeue, a
    // requeue-count bound, and a determinism pin on a fault cell.
    let suite = Suite::builder("chaos-acceptance")
        .topologies([Topology::paper(6)])
        .workloads([WorkloadSpec::paper_scaled(2.2).with_total_jobs(400)])
        .faults_with_baseline([FaultSpec::crash_storm(), FaultSpec::straggler_wave()])
        .policies([PolicySpec::round_robin(), quick_hierarchical()])
        .seeds([42])
        .expect(Expectation::JobConservation {
            name: "jobs-conserved".into(),
        })
        .expect(Expectation::MetricBound {
            name: "crash-storm-requeues".into(),
            cell_contains: "%crash-storm/round-robin".into(),
            metric: "jobs_requeued".into(),
            min: 1.0,
            max: 1e18,
        })
        .expect(Expectation::DeterminismPin {
            name: "pin-straggler-wave".into(),
            cell_contains: "%straggler-wave/round-robin".into(),
        })
        .expect(Expectation::GracefulDegradation {
            name: "graceful-under-crash-storm".into(),
            fault: "crash-storm".into(),
            policy: "hierarchical".into(),
            baseline: "round-robin".into(),
            tolerance: 1.0,
        })
        .expect(Expectation::GracefulDegradation {
            name: "graceful-under-straggler-wave".into(),
            fault: "straggler-wave".into(),
            policy: "hierarchical".into(),
            baseline: "round-robin".into(),
            tolerance: 1.0,
        })
        .build();
    assert_eq!(suite.len(), 6);

    let run = SuiteRunner::new().run(&suite).expect("acceptance run");
    assert_eq!(run.expectations.len(), 5);
    for row in &run.expectations {
        eprintln!(
            "[{}] {}: {}",
            if row.passed { "PASS" } else { "FAIL" },
            row.name,
            row.detail
        );
        assert!(
            row.passed,
            "expectation {} failed: {}",
            row.name, row.detail
        );
    }

    // The verdicts ride the canonical report and the bench artifact.
    let report = run.report();
    assert_eq!(report.expectations, run.expectations);
    assert_eq!(run.bench_report().expectations, run.expectations);
}
