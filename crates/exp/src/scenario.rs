//! The atomic unit of experiment orchestration: one [`Scenario`] names one
//! (topology, workload, policy, seed, limit) cell of a sweep grid.

use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_core::dpm::RlPowerConfig;
use hierdrl_core::hierarchical::{AllocatorKind, PowerKind};
use hierdrl_rl::qtable::QTable;
use hierdrl_rl::smdp::SmdpParams;
use hierdrl_sim::cluster::RunLimit;
use hierdrl_sim::config::ClusterConfig;
use hierdrl_sim::events::{FleetOp, ServerSpec};
use hierdrl_sim::job::{Job, JobId, ServerId};
use hierdrl_sim::router::RouterPolicy;
use hierdrl_sim::time::SimTime;
use hierdrl_trace::drift::{SegmentShift, SegmentedTraceSpec};
use hierdrl_trace::generator::WorkloadConfig;
use hierdrl_trace::materialize::TraceSpec;
use hierdrl_trace::pattern::SECS_PER_WEEK;
use hierdrl_trace::source::{RealTraceSource, TraceFormat};
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: decorrelates derived seeds so that per-cell seed
/// streams are independent (changing one scenario's seed perturbs only that
/// scenario's trace and policy randomness). This is the one mixing
/// function used at every derivation level — cells, shards, pre-training
/// rollouts, and drift segments ([`hierdrl_trace::drift::mix_seed`]).
pub use hierdrl_trace::drift::mix_seed;

/// A named cluster topology under test: either the paper's single cluster,
/// or a fleet of independent clusters behind a deterministic front-end
/// router (the multi-cluster scaling axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// One cluster fed directly by the arrival stream.
    Single {
        /// Display name (used in scenario ids and reports).
        name: String,
        /// Full cluster configuration.
        cluster: ClusterConfig,
    },
    /// Several independent clusters sharing one arrival stream through a
    /// front-end [`Router`](hierdrl_sim::router::Router). Each cluster
    /// runs its own control planes; the suite runner simulates every
    /// cluster on its own worker thread and merges results in shard order.
    MultiCluster {
        /// Display name (used in scenario ids and reports).
        name: String,
        /// The member clusters, in shard order.
        clusters: Vec<ClusterConfig>,
        /// The front-end routing policy.
        router: RouterPolicy,
    },
}

/// The big-tier size of a big/little fleet: `round(m * big_fraction)`,
/// clamped to at least one big server.
///
/// # Panics
///
/// Panics if `m == 0` or `big_fraction` is outside `(0, 1]`.
pub fn num_big_servers(m: usize, big_fraction: f64) -> usize {
    assert!(m > 0, "need at least one server");
    assert!(
        big_fraction > 0.0 && big_fraction <= 1.0,
        "big_fraction must be in (0, 1], got {big_fraction}"
    );
    ((m as f64 * big_fraction).round() as usize).clamp(1, m)
}

/// A paper-style cluster config whose first [`num_big_servers`] servers
/// are `big_scale`x machines — capacity scaled in every resource
/// dimension — and the rest unit "little" machines. The big servers take
/// the low indices, so consolidation-style policies pack them first.
///
/// # Panics
///
/// Panics if `m == 0`, `big_fraction` is outside `(0, 1]`, or
/// `big_scale <= 0`.
pub fn big_little_config(m: usize, big_fraction: f64, big_scale: f64) -> ClusterConfig {
    assert!(
        big_scale.is_finite() && big_scale > 0.0,
        "big_scale must be positive, got {big_scale}"
    );
    let mut cluster = ClusterConfig::paper(m);
    let num_big = num_big_servers(m, big_fraction);
    let dims = cluster.resource_dims;
    let big = hierdrl_sim::resources::ResourceVec::new(&vec![big_scale; dims]);
    let little = hierdrl_sim::resources::ResourceVec::ones(dims);
    cluster.server_capacities = Some(
        (0..m)
            .map(|i| {
                if i < num_big {
                    big.clone()
                } else {
                    little.clone()
                }
            })
            .collect(),
    );
    cluster
}

impl Topology {
    /// The paper's homogeneous cluster at `m` servers.
    pub fn paper(m: usize) -> Self {
        Topology::Single {
            name: format!("paper-m{m}"),
            cluster: ClusterConfig::paper(m),
        }
    }

    /// A heterogeneous big/little fleet: `round(m * big_fraction)` servers
    /// (at least one) at `big_scale`x capacity, the rest little
    /// (unit-capacity) machines — the 2-tier topology warehouse fleets
    /// actually run. `big_little(m, 0.25, 2.0)` is the canonical preset:
    /// a quarter of the fleet at twice the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `big_fraction` is outside `(0, 1]`, or
    /// `big_scale <= 0`.
    pub fn big_little(m: usize, big_fraction: f64, big_scale: f64) -> Self {
        let cluster = big_little_config(m, big_fraction, big_scale);
        let num_big = num_big_servers(m, big_fraction);
        Topology::Single {
            name: format!("big-little-m{m}-b{num_big}x{big_scale}"),
            cluster,
        }
    }

    /// A big/little fleet sharded across `num_clusters` independent
    /// clusters behind `router`: servers split as evenly as possible (as
    /// in [`Topology::sharded_paper`]), with each cluster getting its own
    /// big tier of `round(size * big_fraction)` servers.
    pub fn sharded_big_little(
        num_clusters: usize,
        total_servers: usize,
        big_fraction: f64,
        big_scale: f64,
        router: RouterPolicy,
    ) -> Self {
        assert!(num_clusters > 0, "multi-cluster needs >= 1 cluster");
        assert!(
            total_servers >= num_clusters,
            "need >= 1 server per cluster ({total_servers} servers, {num_clusters} clusters)"
        );
        let base = total_servers / num_clusters;
        let extra = total_servers % num_clusters;
        let clusters: Vec<ClusterConfig> = (0..num_clusters)
            .map(|k| big_little_config(base + usize::from(k < extra), big_fraction, big_scale))
            .collect();
        // Name the big tier explicitly (summed across clusters) so two
        // shardings that differ only in big_fraction get distinct
        // topology names — and therefore distinct cell ids.
        let total_big: usize = (0..num_clusters)
            .map(|k| num_big_servers(base + usize::from(k < extra), big_fraction))
            .sum();
        Self::multi(
            format!(
                "big-little-c{num_clusters}m{total_servers}-b{total_big}x{big_scale}-{}",
                router.name()
            ),
            clusters,
            router,
        )
    }

    /// A custom single-cluster topology.
    pub fn custom(name: impl Into<String>, cluster: ClusterConfig) -> Self {
        Topology::Single {
            name: name.into(),
            cluster,
        }
    }

    /// A multi-cluster topology behind the given router.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or the members disagree on resource
    /// dimensionality — one arrival stream must be routable to any member.
    pub fn multi(
        name: impl Into<String>,
        clusters: Vec<ClusterConfig>,
        router: RouterPolicy,
    ) -> Self {
        assert!(!clusters.is_empty(), "multi-cluster needs >= 1 cluster");
        let dims = clusters[0].resource_dims;
        assert!(
            clusters.iter().all(|c| c.resource_dims == dims),
            "clusters must agree on resource dims"
        );
        Topology::MultiCluster {
            name: name.into(),
            clusters,
            router,
        }
    }

    /// `total_servers` paper-style servers split as evenly as possible
    /// across `num_clusters` independent clusters behind `router` (the
    /// first `total_servers % num_clusters` clusters get one extra).
    pub fn sharded_paper(num_clusters: usize, total_servers: usize, router: RouterPolicy) -> Self {
        assert!(num_clusters > 0, "multi-cluster needs >= 1 cluster");
        assert!(
            total_servers >= num_clusters,
            "need >= 1 server per cluster ({total_servers} servers, {num_clusters} clusters)"
        );
        let base = total_servers / num_clusters;
        let extra = total_servers % num_clusters;
        let clusters = (0..num_clusters)
            .map(|k| ClusterConfig::paper(base + usize::from(k < extra)))
            .collect();
        Self::multi(
            format!("paper-c{num_clusters}m{total_servers}-{}", router.name()),
            clusters,
            router,
        )
    }

    /// Display name (used in scenario ids and reports).
    pub fn name(&self) -> &str {
        match self {
            Topology::Single { name, .. } | Topology::MultiCluster { name, .. } => name,
        }
    }

    /// Total number of servers `M` across all clusters.
    pub fn servers(&self) -> usize {
        self.clusters().iter().map(|c| c.num_servers).sum()
    }

    /// Aggregate fleet CPU capacity in unit-server equivalents (equals
    /// [`Topology::servers`] for homogeneous fleets).
    pub fn total_capacity(&self) -> f64 {
        self.clusters()
            .iter()
            .map(ClusterConfig::routing_weight)
            .sum()
    }

    /// Fleet-wide per-server capacity skew: the ratio of the largest to
    /// the smallest CPU capacity across every server of every cluster
    /// (`1.0` for homogeneous fleets, `2.0` for a 2x big/little tier).
    pub fn capacity_skew(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for cluster in self.clusters() {
            let (c_lo, c_hi) = cluster.capacity_cpu_range();
            lo = lo.min(c_lo);
            hi = hi.max(c_hi);
        }
        hi / lo
    }

    /// The member clusters, in shard order (one entry for a single
    /// cluster).
    pub fn clusters(&self) -> &[ClusterConfig] {
        match self {
            Topology::Single { cluster, .. } => std::slice::from_ref(cluster),
            Topology::MultiCluster { clusters, .. } => clusters,
        }
    }

    /// The front-end routing policy, for multi-cluster topologies.
    pub fn router(&self) -> Option<RouterPolicy> {
        match self {
            Topology::Single { .. } => None,
            Topology::MultiCluster { router, .. } => Some(*router),
        }
    }

    /// Whether this topology shards the arrival stream across clusters.
    pub fn is_multi_cluster(&self) -> bool {
        matches!(self, Topology::MultiCluster { .. })
    }
}

/// How many jobs a scenario evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobsBudget {
    /// Jobs proportional to cluster size (constant per-server work), as in
    /// Table I where the job count scales with `M`.
    PerServer(f64),
    /// A fixed total, as in Figs. 8/9 which both report at job 95,000.
    Total(u64),
}

/// A workload recipe: either a synthetic generator law resolved against a
/// topology so that per-server load stays comparable across cluster sizes
/// (the paper's convention, and the default), or an on-disk real trace
/// replayed through [`hierdrl_trace::source::RealTraceSource`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A synthetic generator recipe ([`WorkloadConfig::google_like`] at a
    /// per-server rate), seeded per cell.
    Synthetic {
        /// Display name (used in scenario ids and reports).
        name: String,
        /// Weekly task arrivals per server. The paper's setup is 95,000
        /// tasks per week for 30 machines.
        weekly_jobs_per_server: f64,
        /// Evaluation length.
        eval_jobs: JobsBudget,
    },
    /// An on-disk real trace (Google `task_events` or Alibaba v2017
    /// `batch_task`), parsed with the paper's duration window. Arrival
    /// times, durations, and demands come from the file; the drift axis
    /// replays the trace's own wall-clock segments instead of synthetic
    /// shifts, and the runner gates the demand columns on the parser's
    /// [`hierdrl_trace::google::ParseStats`] provenance.
    RealTrace {
        /// Display name (used in scenario ids and reports).
        name: String,
        /// Path to the trace file.
        path: String,
        /// Which parser reads the file.
        format: TraceFormat,
        /// Wall-clock window (seconds) the drift axis splits the trace at;
        /// `None` uses [`SECS_PER_WEEK`] (the paper's week-long segments).
        segment_wall_clock_s: Option<f64>,
        /// Demand columns are trusted only while
        /// `demand_defaulted / jobs_kept` stays at or below this fraction;
        /// above it the runner swaps in deterministic synthetic demands
        /// ([`hierdrl_trace::source::with_synthetic_demands`]) and flags
        /// the cell's provenance row.
        demand_gate: f64,
        /// Optional cap: replay only the first `n` jobs of the trace.
        max_jobs: Option<u64>,
        /// Per-server weekly rate of the *synthetic* pre-training rollouts
        /// (learned policies still pre-train on generated workload — the
        /// trace is held out for evaluation).
        pretrain_weekly_jobs_per_server: f64,
    },
}

/// The paper's per-server weekly arrival volume (95,000 jobs / 30 servers).
pub const PAPER_WEEKLY_JOBS_PER_SERVER: f64 = 95_000.0 / 30.0;

/// Default [`WorkloadSpec::RealTrace`] demand gate: demand columns are
/// trusted while at most a quarter of kept jobs had defaulted demands.
pub const DEFAULT_DEMAND_GATE: f64 = 0.25;

impl WorkloadSpec {
    /// The paper's workload: per-server load matching the 95k-jobs-per-week
    /// 30-machine setup, evaluation length scaling with `M`.
    pub fn paper() -> Self {
        Self::Synthetic {
            name: "paper".into(),
            weekly_jobs_per_server: PAPER_WEEKLY_JOBS_PER_SERVER,
            eval_jobs: JobsBudget::PerServer(PAPER_WEEKLY_JOBS_PER_SERVER),
        }
    }

    /// The paper's workload with the arrival rate scaled by `factor`
    /// (arrival-rate sweeps; `1.0` is the paper's load).
    pub fn paper_scaled(factor: f64) -> Self {
        Self::Synthetic {
            name: format!("paper-x{factor}"),
            weekly_jobs_per_server: PAPER_WEEKLY_JOBS_PER_SERVER * factor,
            eval_jobs: JobsBudget::PerServer(PAPER_WEEKLY_JOBS_PER_SERVER),
        }
    }

    /// A real-trace workload replaying `path` with the paper's duration
    /// window, weekly drift segments, the default demand gate, and
    /// paper-rate synthetic pre-training.
    pub fn real_trace(
        name: impl Into<String>,
        path: impl Into<String>,
        format: TraceFormat,
    ) -> Self {
        Self::RealTrace {
            name: name.into(),
            path: path.into(),
            format,
            segment_wall_clock_s: None,
            demand_gate: DEFAULT_DEMAND_GATE,
            max_jobs: None,
            pretrain_weekly_jobs_per_server: PAPER_WEEKLY_JOBS_PER_SERVER,
        }
    }

    /// Caps the evaluation length: for synthetic workloads, a fixed total
    /// job budget; for real traces, replay only the first `jobs` jobs.
    #[must_use]
    pub fn with_total_jobs(mut self, jobs: u64) -> Self {
        match &mut self {
            Self::Synthetic { eval_jobs, .. } => *eval_jobs = JobsBudget::Total(jobs),
            Self::RealTrace { max_jobs, .. } => *max_jobs = Some(jobs),
        }
        self
    }

    /// Replaces the evaluation length with a per-server budget.
    ///
    /// # Panics
    ///
    /// Panics for real-trace workloads, whose length is the trace itself.
    #[must_use]
    pub fn with_jobs_per_server(mut self, jobs: f64) -> Self {
        match &mut self {
            Self::Synthetic { eval_jobs, .. } => *eval_jobs = JobsBudget::PerServer(jobs),
            Self::RealTrace { name, .. } => {
                panic!("workload {name:?} is a real trace: its length is the trace itself")
            }
        }
        self
    }

    /// Replaces the real-trace demand gate.
    ///
    /// # Panics
    ///
    /// Panics for synthetic workloads (generated demands are never gated).
    #[must_use]
    pub fn with_demand_gate(mut self, gate: f64) -> Self {
        match &mut self {
            Self::RealTrace { demand_gate, .. } => *demand_gate = gate,
            Self::Synthetic { name, .. } => {
                panic!("workload {name:?} is synthetic: demand gating does not apply")
            }
        }
        self
    }

    /// Replaces the real-trace wall-clock segmentation window (seconds).
    ///
    /// # Panics
    ///
    /// Panics for synthetic workloads (their segments come from
    /// [`SegmentShift`]s, not wall-clock splitting).
    #[must_use]
    pub fn with_segment_window(mut self, window_s: f64) -> Self {
        match &mut self {
            Self::RealTrace {
                segment_wall_clock_s,
                ..
            } => *segment_wall_clock_s = Some(window_s),
            Self::Synthetic { name, .. } => {
                panic!("workload {name:?} is synthetic: wall-clock segmentation does not apply")
            }
        }
        self
    }

    /// Display name (used in scenario ids and reports).
    pub fn name(&self) -> &str {
        match self {
            Self::Synthetic { name, .. } | Self::RealTrace { name, .. } => name,
        }
    }

    /// Whether this workload replays an on-disk real trace.
    pub fn is_real(&self) -> bool {
        matches!(self, Self::RealTrace { .. })
    }

    /// Per-server weekly arrival rate: the generator law for synthetic
    /// workloads, the synthetic *pre-training* rate for real traces (whose
    /// evaluation arrivals come from the file).
    pub fn weekly_jobs_per_server(&self) -> f64 {
        match self {
            Self::Synthetic {
                weekly_jobs_per_server,
                ..
            } => *weekly_jobs_per_server,
            Self::RealTrace {
                pretrain_weekly_jobs_per_server,
                ..
            } => *pretrain_weekly_jobs_per_server,
        }
    }

    /// Weekly arrival volume for a cluster of `m` servers (see
    /// [`WorkloadSpec::weekly_jobs_per_server`] for the real-trace
    /// meaning).
    pub fn jobs_per_week_for(&self, m: usize) -> f64 {
        self.weekly_jobs_per_server() * m as f64
    }

    /// Evaluation job count for a cluster of `m` servers. For real traces
    /// the evaluation length is the trace itself, so this returns the
    /// configured cap (or 0 when uncapped) — pre-training budgets derived
    /// from it then fall back to their fixed floor.
    pub fn jobs_for(&self, m: usize) -> u64 {
        match self {
            Self::Synthetic { eval_jobs, .. } => match eval_jobs {
                JobsBudget::PerServer(per) => (per * m as f64).round() as u64,
                JobsBudget::Total(n) => *n,
            },
            Self::RealTrace { max_jobs, .. } => max_jobs.unwrap_or(0),
        }
    }

    /// One cluster's share of the evaluation stream inside a fleet:
    /// `shard_m` of `total_m` servers. A fixed [`JobsBudget::Total`]
    /// prorates by server share (the slice a capacity-weighted router
    /// would send the cluster); a per-server budget already scales.
    pub fn shard_jobs_for(&self, shard_m: usize, total_m: usize) -> u64 {
        match self {
            Self::Synthetic {
                eval_jobs: JobsBudget::PerServer(_),
                ..
            } => self.jobs_for(shard_m),
            _ => {
                let n = self.jobs_for(total_m);
                (n as f64 * shard_m as f64 / total_m.max(1) as f64).round() as u64
            }
        }
    }

    /// The real-trace source behind this workload, if any.
    pub fn real_source(&self) -> Option<RealTraceSource> {
        match self {
            Self::Synthetic { .. } => None,
            Self::RealTrace { path, format, .. } => Some(RealTraceSource::from_path(path, *format)),
        }
    }

    /// The real-trace demand gate ([`DEFAULT_DEMAND_GATE`] unless
    /// overridden); `None` for synthetic workloads.
    pub fn demand_gate(&self) -> Option<f64> {
        match self {
            Self::Synthetic { .. } => None,
            Self::RealTrace { demand_gate, .. } => Some(*demand_gate),
        }
    }

    /// The wall-clock window (seconds) real-trace drift cells split at
    /// ([`SECS_PER_WEEK`] unless overridden).
    pub fn segment_window_s(&self) -> f64 {
        match self {
            Self::Synthetic { .. } => SECS_PER_WEEK,
            Self::RealTrace {
                segment_wall_clock_s,
                ..
            } => segment_wall_clock_s.unwrap_or(SECS_PER_WEEK),
        }
    }

    /// The deterministic trace recipe for this workload on `topology`.
    ///
    /// # Panics
    ///
    /// Panics for real-trace workloads, which have no generator recipe —
    /// they resolve through [`WorkloadSpec::real_source`] instead.
    pub fn trace_spec(&self, topology: &Topology, trace_seed: u64) -> TraceSpec {
        assert!(
            !self.is_real(),
            "workload {:?} is a real trace: resolve it through real_source()",
            self.name()
        );
        let m = topology.servers();
        TraceSpec::new(
            WorkloadConfig::google_like(trace_seed, self.jobs_per_week_for(m)),
            self.jobs_for(m) as usize,
        )
    }
}

/// Offline pre-training rollout budget (Section VII-A uses five workload
/// segments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pretrain {
    /// Number of rollout segments.
    pub segments: usize,
    /// Each segment's length as a fraction of the evaluation length
    /// (minimum 200 jobs).
    pub fraction: f64,
}

impl Default for Pretrain {
    fn default() -> Self {
        Self {
            segments: 5,
            fraction: 0.15,
        }
    }
}

impl Pretrain {
    /// The trace recipes for the rollout segments, scaled to a cluster of
    /// `m` servers evaluating `eval_jobs` jobs (for multi-cluster cells,
    /// each shard pre-trains at its own cluster's size and its own —
    /// prorated — share of the evaluation stream).
    pub fn segment_specs(
        &self,
        m: usize,
        eval_jobs: u64,
        workload: &WorkloadSpec,
        policy_seed: u64,
    ) -> Vec<TraceSpec> {
        let n = ((eval_jobs as f64 * self.fraction) as usize).max(200);
        (0..self.segments)
            .map(|i| {
                let seed = mix_seed(policy_seed, 100 + i as u64);
                TraceSpec::new(
                    WorkloadConfig::google_like(seed, workload.jobs_per_week_for(m)),
                    n,
                )
            })
            .collect()
    }
}

/// The concept-drift axis of a scenario: an ordered list of workload
/// segments (each a [`SegmentShift`] of the cell's base workload), run
/// under *one* set of carried learners that continue training online
/// across segment boundaries — unless `online` is off, the
/// no-continued-training ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSpec {
    /// Display name (joined into the scenario id as `workload@drift`).
    pub name: String,
    /// Per-segment departures from the base workload, in drift order.
    pub shifts: Vec<SegmentShift>,
    /// `true` (the default mode): learners keep training online across
    /// segments. `false`: learners are frozen after pre-training — the
    /// ablation that measures what continued training buys under drift.
    pub online: bool,
}

impl DriftSpec {
    /// A named drift from explicit shifts.
    ///
    /// # Panics
    ///
    /// Panics if `shifts` is empty or any shift is invalid.
    pub fn new(name: impl Into<String>, shifts: Vec<SegmentShift>) -> Self {
        assert!(!shifts.is_empty(), "drift needs >= 1 segment");
        for (i, shift) in shifts.iter().enumerate() {
            shift
                .validate()
                .unwrap_or_else(|e| panic!("drift segment {i}: {e}"));
        }
        Self {
            name: name.into(),
            shifts,
            online: true,
        }
    }

    /// `k` segments of the *same* law under fresh per-segment seeds — the
    /// drift-free control row of a drift grid.
    pub fn stationary(k: usize) -> Self {
        Self::new(format!("stationary-{k}"), vec![SegmentShift::Stationary; k])
    }

    /// One stationary segment, then the arrival rate stepped to `factor`
    /// (a tenant launch).
    pub fn rate_step(factor: f64) -> Self {
        Self::new(
            format!("rate-step-x{factor}"),
            vec![SegmentShift::Stationary, SegmentShift::RateScale(factor)],
        )
    }

    /// The arrival rate ramping through the given factors, one segment
    /// each (organic growth).
    pub fn rate_ramp(factors: &[f64]) -> Self {
        Self::new(
            format!(
                "rate-ramp-{}",
                factors
                    .iter()
                    .map(f64::to_string)
                    .collect::<Vec<_>>()
                    .join("-")
            ),
            factors
                .iter()
                .map(|&f| SegmentShift::RateScale(f))
                .collect(),
        )
    }

    /// One stationary segment, then a regime change: the diurnal peak
    /// jumps twelve hours, the swing deepens, and weekends get *busier* —
    /// the same mean volume with an inverted shape.
    pub fn pattern_flip() -> Self {
        Self::new(
            "pattern-flip",
            vec![
                SegmentShift::Stationary,
                SegmentShift::Pattern {
                    diurnal_amplitude: 0.8,
                    peak_hour: 3.0,
                    weekend_factor: 1.25,
                },
            ],
        )
    }

    /// The drift axis for a [`WorkloadSpec::RealTrace`] cell: segments are
    /// the trace's own wall-clock windows (weeks by default), replayed
    /// under carried learners — the online-vs-frozen ablation on *real*
    /// regime changes. The single [`SegmentShift::Stationary`] entry is a
    /// placeholder; the actual segment count comes from the data.
    pub fn real_segments() -> Self {
        Self::new("real-weeks", vec![SegmentShift::Stationary])
    }

    /// The no-continued-training ablation of this drift: same segments,
    /// learners frozen after pre-training.
    #[must_use]
    pub fn with_frozen_learners(mut self) -> Self {
        self.online = false;
        self.name.push_str("-frozen");
        self
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.shifts.len()
    }
}

/// One injected fault shape. Every time, duration, and spread is a
/// *fraction of the evaluation span* (the segment's last arrival time), so
/// one spec scales unchanged from smoke runs to paper-length traces; the
/// schedule is lowered to absolute event times per segment by
/// [`FaultSpec::lower`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultShape {
    /// Crash one explicit server at `at`, recovering after `outage`.
    Crash {
        /// Server index within the (shard's) cluster.
        server: usize,
        /// Crash time as a fraction of the span.
        at: f64,
        /// Outage length as a fraction of the span.
        outage: f64,
    },
    /// Crash `fraction` of the fleet — seed-drawn distinct servers — one
    /// every `stagger`, starting at `start`, each out for `outage`.
    CrashStorm {
        /// Fraction of the fleet to crash, in `(0, 1)`.
        fraction: f64,
        /// First crash time as a fraction of the span.
        start: f64,
        /// Gap between consecutive crashes as a fraction of the span.
        stagger: f64,
        /// Per-server outage length as a fraction of the span.
        outage: f64,
    },
    /// Degrade `fraction` of the fleet (seed-drawn distinct servers) to
    /// `scale`x capacity over `[start, start + duration)` — transient
    /// stragglers, not crashes: degraded servers keep running.
    StragglerWave {
        /// Fraction of the fleet to degrade, in `(0, 1]`.
        fraction: f64,
        /// Degraded capacity multiplier, in `(0, 1)`.
        scale: f64,
        /// Window start as a fraction of the span.
        start: f64,
        /// Window length as a fraction of the span.
        duration: f64,
    },
    /// Power-cap the *whole* fleet to `scale`x capacity over a window.
    CapWindow {
        /// Capped capacity multiplier, in `(0, 1)`.
        scale: f64,
        /// Window start as a fraction of the span.
        start: f64,
        /// Window length as a fraction of the span.
        duration: f64,
    },
    /// Inject `fraction` (of the stream length) extra arrivals around
    /// `at`, spread over `spread` of the span — a flash crowd. Lowered at
    /// the trace level ([`FaultSpec::spike_jobs`]), before routing.
    ArrivalSpike {
        /// Spike start as a fraction of the span.
        at: f64,
        /// Extra arrivals as a fraction of the stream length, in `(0, 1]`.
        fraction: f64,
        /// Spike width as a fraction of the span.
        spread: f64,
    },
}

impl FaultShape {
    /// Validates one shape's parameters (server ids are range-checked at
    /// lowering time, when the fleet size is known).
    fn validate(&self) -> Result<(), String> {
        let time_ok = |t: f64| t.is_finite() && (0.0..=1.0).contains(&t);
        let check_time = |label: &str, t: f64| {
            if time_ok(t) {
                Ok(())
            } else {
                Err(format!("{label} fault time must be in [0, 1], got {t}"))
            }
        };
        let check_len = |label: &str, d: f64| {
            if d.is_finite() && d > 0.0 {
                Ok(())
            } else {
                Err(format!("{label} must be positive and finite, got {d}"))
            }
        };
        let check_fraction = |f: f64| {
            if f.is_finite() && f > 0.0 && f <= 1.0 {
                Ok(())
            } else {
                Err(format!("fault fraction must be in (0, 1], got {f}"))
            }
        };
        let check_scale = |s: f64| {
            if s.is_finite() && s > 0.0 && s < 1.0 {
                Ok(())
            } else {
                Err(format!("degraded scale must be in (0, 1), got {s}"))
            }
        };
        match *self {
            FaultShape::Crash { at, outage, .. } => {
                check_time("crash", at)?;
                check_len("crash outage", outage)
            }
            FaultShape::CrashStorm {
                fraction,
                start,
                stagger,
                outage,
            } => {
                check_fraction(fraction)?;
                if fraction >= 1.0 {
                    return Err(format!(
                        "crash-storm fraction must leave a healthy remainder, got {fraction}"
                    ));
                }
                check_time("crash-storm start", start)?;
                if !(stagger.is_finite() && stagger >= 0.0) {
                    return Err(format!(
                        "crash-storm stagger must be non-negative, got {stagger}"
                    ));
                }
                check_len("crash-storm outage", outage)
            }
            FaultShape::StragglerWave {
                fraction,
                scale,
                start,
                duration,
            } => {
                check_fraction(fraction)?;
                check_scale(scale)?;
                check_time("straggler-wave start", start)?;
                check_len("straggler-wave duration", duration)
            }
            FaultShape::CapWindow {
                scale,
                start,
                duration,
            } => {
                check_scale(scale)?;
                check_time("cap-window start", start)?;
                check_len("cap-window duration", duration)
            }
            FaultShape::ArrivalSpike {
                at,
                fraction,
                spread,
            } => {
                check_time("arrival-spike", at)?;
                check_fraction(fraction)?;
                check_len("arrival-spike spread", spread)
            }
        }
    }
}

/// Draws `count` distinct server indices from `0..n` with a SplitMix64
/// partial Fisher–Yates shuffle — the one deterministic selection every
/// seed-drawn fault shape uses.
fn draw_distinct_servers(seed: u64, count: usize, n: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let mut picked = Vec::with_capacity(count);
    for i in 0..count.min(n) {
        let draw = mix_seed(seed, 1 + i as u64);
        picked.push(pool.swap_remove(draw as usize % pool.len()));
    }
    picked
}

/// The chaos axis of a scenario: a named, deterministic, seed-derived
/// schedule of injected faults, lowered to event-level
/// [`FleetOp`]s per evaluation segment. Everything about the schedule —
/// which servers crash, when, for how long — derives from the cell's
/// fault seed (`mix(seed, 4)`), so fault cells are exactly as reproducible
/// and mutually independent as every other axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Display name (joined into the scenario id as `workload%fault`).
    pub name: String,
    /// The fault shapes, all active on every evaluation segment.
    pub shapes: Vec<FaultShape>,
}

impl FaultSpec {
    /// A named fault schedule from explicit shapes.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty, any shape's parameters are out of
    /// range (negative or >1 fractional times, non-positive durations,
    /// fractions outside `(0, 1]`, scales outside `(0, 1)`), or two
    /// [`FaultShape::CapWindow`]s overlap in time.
    pub fn new(name: impl Into<String>, shapes: Vec<FaultShape>) -> Self {
        assert!(!shapes.is_empty(), "fault spec needs >= 1 shape");
        for (i, shape) in shapes.iter().enumerate() {
            shape
                .validate()
                .unwrap_or_else(|e| panic!("fault shape {i}: {e}"));
        }
        let windows: Vec<(usize, f64, f64)> = shapes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match *s {
                FaultShape::CapWindow {
                    start, duration, ..
                } => Some((i, start, start + duration)),
                _ => None,
            })
            .collect();
        for (a, &(i, ai, af)) in windows.iter().enumerate() {
            for &(j, bi, bf) in &windows[a + 1..] {
                assert!(
                    af <= bi || bf <= ai,
                    "cap windows {i} and {j} overlap ([{ai}, {af}) vs [{bi}, {bf}))"
                );
            }
        }
        Self {
            name: name.into(),
            shapes,
        }
    }

    /// The canonical crash storm: just over a third of the fleet crashes,
    /// staggered, each server out for almost half the evaluation span.
    pub fn crash_storm() -> Self {
        Self::new(
            "crash-storm",
            vec![FaultShape::CrashStorm {
                fraction: 0.35,
                start: 0.15,
                stagger: 0.04,
                outage: 0.45,
            }],
        )
    }

    /// The canonical straggler wave: 40% of the fleet at 0.35x capacity
    /// for half the span.
    pub fn straggler_wave() -> Self {
        Self::new(
            "straggler-wave",
            vec![FaultShape::StragglerWave {
                fraction: 0.4,
                scale: 0.35,
                start: 0.2,
                duration: 0.5,
            }],
        )
    }

    /// The canonical power-cap window: the whole fleet at 0.6x capacity
    /// for a third of the span.
    pub fn cap_window() -> Self {
        Self::new(
            "cap-window",
            vec![FaultShape::CapWindow {
                scale: 0.6,
                start: 0.3,
                duration: 0.3,
            }],
        )
    }

    /// The canonical arrival spike: a quarter extra arrivals concentrated
    /// over a tenth of the span.
    pub fn arrival_spike() -> Self {
        Self::new(
            "arrival-spike",
            vec![FaultShape::ArrivalSpike {
                at: 0.4,
                fraction: 0.25,
                spread: 0.1,
            }],
        )
    }

    /// Whether any shape injects extra arrivals (handled at the trace
    /// level, before routing, unlike the event-lowered shapes).
    pub fn has_spikes(&self) -> bool {
        self.shapes
            .iter()
            .any(|s| matches!(s, FaultShape::ArrivalSpike { .. }))
    }

    /// Lowers the schedule to absolute-time [`FleetOp`] events for one
    /// evaluation segment of `num_servers` servers spanning `span_s`
    /// seconds of arrivals, sorted by time (ties keep shape order). Every
    /// seed-drawn choice derives from `fault_seed` via per-shape SplitMix64
    /// sub-streams. [`FaultShape::ArrivalSpike`]s lower to no events.
    ///
    /// # Panics
    ///
    /// Panics if an explicit [`FaultShape::Crash`] names a server outside
    /// `0..num_servers`, or a crash storm targets a fleet too small to
    /// leave a healthy remainder.
    pub fn lower(&self, fault_seed: u64, num_servers: usize, span_s: f64) -> Vec<(f64, FleetOp)> {
        assert!(num_servers > 0, "fault lowering needs >= 1 server");
        let mut events: Vec<(f64, FleetOp)> = Vec::new();
        for (i, shape) in self.shapes.iter().enumerate() {
            let shape_seed = mix_seed(fault_seed, i as u64);
            match *shape {
                FaultShape::Crash { server, at, outage } => {
                    assert!(
                        server < num_servers,
                        "fault shape {i} crashes server {server} out of {num_servers} servers"
                    );
                    events.push((at * span_s, FleetOp::Crash(ServerId(server))));
                    events.push(((at + outage) * span_s, FleetOp::Recover(ServerId(server))));
                }
                FaultShape::CrashStorm {
                    fraction,
                    start,
                    stagger,
                    outage,
                } => {
                    assert!(
                        num_servers > 1,
                        "fault shape {i}: a crash storm needs >= 2 servers to leave one healthy"
                    );
                    let count = ((fraction * num_servers as f64).round() as usize)
                        .clamp(1, num_servers - 1);
                    for (k, sid) in draw_distinct_servers(shape_seed, count, num_servers)
                        .into_iter()
                        .enumerate()
                    {
                        let t = (start + k as f64 * stagger) * span_s;
                        events.push((t, FleetOp::Crash(ServerId(sid))));
                        events.push((t + outage * span_s, FleetOp::Recover(ServerId(sid))));
                    }
                }
                FaultShape::StragglerWave {
                    fraction,
                    scale,
                    start,
                    duration,
                } => {
                    let count =
                        ((fraction * num_servers as f64).round() as usize).clamp(1, num_servers);
                    for sid in draw_distinct_servers(shape_seed, count, num_servers) {
                        let server = ServerId(sid);
                        events.push((start * span_s, FleetOp::SetScale { server, scale }));
                        events.push((
                            (start + duration) * span_s,
                            FleetOp::SetScale { server, scale: 1.0 },
                        ));
                    }
                }
                FaultShape::CapWindow {
                    scale,
                    start,
                    duration,
                } => {
                    for sid in 0..num_servers {
                        let server = ServerId(sid);
                        events.push((start * span_s, FleetOp::SetScale { server, scale }));
                        events.push((
                            (start + duration) * span_s,
                            FleetOp::SetScale { server, scale: 1.0 },
                        ));
                    }
                }
                FaultShape::ArrivalSpike { .. } => {}
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("fault times are finite"));
        events
    }

    /// The extra arrivals [`FaultShape::ArrivalSpike`]s inject into one
    /// segment's stream: deterministic clones of seed-picked template jobs
    /// with fresh ids past the template's largest, arrival times drawn in
    /// the spike window. Returned sorted by arrival; the caller merges
    /// them into the stream before routing.
    pub fn spike_jobs(&self, fault_seed: u64, template: &[Job], span_s: f64) -> Vec<Job> {
        let mut extra: Vec<Job> = Vec::new();
        if template.is_empty() {
            return extra;
        }
        let mut next_id = template.iter().map(|j| j.id.0).max().unwrap_or(0) + 1;
        for (i, shape) in self.shapes.iter().enumerate() {
            let FaultShape::ArrivalSpike {
                at,
                fraction,
                spread,
            } = *shape
            else {
                continue;
            };
            let shape_seed = mix_seed(fault_seed, i as u64);
            let count = ((fraction * template.len() as f64).round() as usize).max(1);
            for k in 0..count {
                let draw = mix_seed(shape_seed, 1 + k as u64);
                let source = &template[draw as usize % template.len()];
                // A uniform draw in [0, 1) from the high 53 bits.
                let u = (mix_seed(draw, 1) >> 11) as f64 / (1u64 << 53) as f64;
                let arrival = (at + u * spread).min(1.0) * span_s;
                extra.push(Job::new(
                    JobId(next_id),
                    SimTime::from_secs(arrival),
                    source.duration,
                    source.demand.clone(),
                ));
                next_id += 1;
            }
        }
        extra.sort_by_key(|j| (j.arrival, j.id));
        extra
    }
}

/// How the autoscaler tier picks a scaling action at each epoch boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AutoscalePolicy {
    /// The classic reactive baseline: scale out above the high-water
    /// utilization mark, scale in below the low-water mark.
    Threshold {
        /// High-water offered utilization (scale out above).
        high: f64,
        /// Low-water offered utilization (scale in below).
        low: f64,
    },
    /// A learned tabular policy: epsilon-greedy SMDP Q-learning (reusing
    /// [`hierdrl_rl::qtable::QTable`]) over offered-utilization bins with
    /// actions {scale-in, hold, scale-out}, trained online during the
    /// feed-forward lowering pass against a cost of fleet fraction plus
    /// overload overshoot.
    Learned {
        /// Number of utilization bins (states).
        bins: usize,
        /// Exploration rate in `[0, 1)`.
        epsilon: f64,
    },
}

impl AutoscalePolicy {
    fn validate(&self) -> Result<(), String> {
        match *self {
            AutoscalePolicy::Threshold { high, low } => {
                if !(low.is_finite() && high.is_finite() && 0.0 < low && low < high) {
                    return Err(format!(
                        "threshold autoscaler needs 0 < low < high, got low {low} high {high}"
                    ));
                }
                Ok(())
            }
            AutoscalePolicy::Learned { bins, epsilon } => {
                if bins < 2 {
                    return Err(format!("learned autoscaler needs >= 2 bins, got {bins}"));
                }
                if !(epsilon.is_finite() && (0.0..1.0).contains(&epsilon)) {
                    return Err(format!(
                        "learned autoscaler epsilon must be in [0, 1), got {epsilon}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// The scheduled fleet-membership trajectory one [`ElasticSpec`] lowers to
/// for one evaluation segment: the event-level [`FleetOp`]s plus the
/// piecewise-constant live-count timeline behind them (consumed by the
/// front-end router's epoch weights and the `fleet_size` report columns).
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSchedule {
    /// Scheduled membership changes, sorted by time.
    pub events: Vec<(f64, FleetOp)>,
    /// Piecewise-constant scheduled live-server count: `(start_s, live)`,
    /// first entry at `0.0` with the initial size.
    pub sizes: Vec<(f64, usize)>,
}

impl ElasticSchedule {
    /// A schedule that never changes membership.
    pub fn fixed(num_servers: usize) -> Self {
        Self {
            events: Vec::new(),
            sizes: vec![(0.0, num_servers)],
        }
    }

    /// The scheduled live count at time `t`.
    pub fn size_at(&self, t: f64) -> usize {
        self.sizes
            .iter()
            .take_while(|(start, _)| *start <= t)
            .last()
            .map_or(0, |&(_, n)| n)
    }

    /// `(min, max, time-weighted mean)` of the scheduled live count over
    /// `[0, end_s]`. Degenerates to the initial size when `end_s <= 0`.
    pub fn size_stats(&self, end_s: f64) -> (usize, usize, f64) {
        let first = self.sizes.first().map_or(0, |&(_, n)| n);
        if end_s <= 0.0 {
            return (first, first, first as f64);
        }
        let (mut min, mut max, mut weighted) = (usize::MAX, 0usize, 0.0f64);
        for (i, &(start, n)) in self.sizes.iter().enumerate() {
            let next = self.sizes.get(i + 1).map_or(end_s, |&(t, _)| t.min(end_s));
            min = min.min(n);
            max = max.max(n);
            weighted += n as f64 * (next - start.min(end_s)).max(0.0);
        }
        (min, max, weighted / end_s)
    }
}

/// The elastic axis of a scenario: a named autoscaler tier that grows and
/// shrinks fleet membership at deterministic epoch boundaries. Like the
/// chaos axis, the spec lowers *feed-forward* — the schedule is a pure
/// function of the elastic seed (`mix(seed, 5)`) and the segment's arrival
/// stream, never of live simulation state — so elastic cells keep every
/// byte-identity guarantee (sharded vs. serial, re-run vs. suite run).
///
/// Lowering simulates the autoscaler against the *offered* utilization
/// trajectory: per epoch, arrival-windowed `cpu x duration` demand divided
/// by the epoch's live unit-capacity. Scale-out joins a unit server
/// ([`ServerSpec::unit`]); scale-in retires the highest-index live member
/// (LIFO), mirroring the cluster's lowest-departed-slot reuse on rejoin so
/// the scheduled slot bookkeeping matches the simulator's exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticSpec {
    /// Display name (joined into the scenario id as `workload~elastic`).
    pub name: String,
    /// The autoscaler's decision rule.
    pub policy: AutoscalePolicy,
    /// Number of equal decision epochs across each evaluation segment.
    pub epochs: usize,
    /// Fleet floor as a fraction of the initial size (rounded, >= 1).
    pub min_frac: f64,
    /// Fleet ceiling as a fraction of the initial size (rounded up).
    pub max_frac: f64,
    /// Boundaries to hold after a scaling action before the next one.
    pub cooldown: usize,
}

impl ElasticSpec {
    /// A named elastic schedule from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the policy parameters are out of range, `epochs < 2`,
    /// `min_frac` is outside `(0, 1]`, or `max_frac < 1`.
    pub fn new(
        name: impl Into<String>,
        policy: AutoscalePolicy,
        epochs: usize,
        min_frac: f64,
        max_frac: f64,
        cooldown: usize,
    ) -> Self {
        policy.validate().unwrap_or_else(|e| panic!("{e}"));
        assert!(epochs >= 2, "elastic spec needs >= 2 epochs, got {epochs}");
        assert!(
            min_frac.is_finite() && min_frac > 0.0 && min_frac <= 1.0,
            "min_frac must be in (0, 1], got {min_frac}"
        );
        assert!(
            max_frac.is_finite() && max_frac >= 1.0,
            "max_frac must be >= 1, got {max_frac}"
        );
        Self {
            name: name.into(),
            policy,
            epochs,
            min_frac,
            max_frac,
            cooldown,
        }
    }

    /// The canonical threshold autoscaler: 75%/30% water marks, 12 epochs,
    /// half-to-1.5x fleet range, one-boundary cooldown.
    pub fn threshold() -> Self {
        Self::new(
            "threshold",
            AutoscalePolicy::Threshold {
                high: 0.75,
                low: 0.30,
            },
            12,
            0.5,
            1.5,
            1,
        )
    }

    /// The canonical learned autoscaler: 8 utilization bins, 20%
    /// exploration, same range and cadence as [`ElasticSpec::threshold`].
    pub fn learned() -> Self {
        Self::new(
            "learned",
            AutoscalePolicy::Learned {
                bins: 8,
                epsilon: 0.2,
            },
            12,
            0.5,
            1.5,
            1,
        )
    }

    /// The fleet ceiling in slots for an initial size of `num_servers`.
    pub fn max_slots(&self, num_servers: usize) -> usize {
        ((num_servers as f64 * self.max_frac).ceil() as usize).max(num_servers)
    }

    /// The fleet floor in slots for an initial size of `num_servers`.
    pub fn min_slots(&self, num_servers: usize) -> usize {
        ((num_servers as f64 * self.min_frac).round() as usize).clamp(1, num_servers)
    }

    /// The cell's cluster configuration with join headroom: `max_servers`
    /// raised to this spec's ceiling so mid-run [`FleetOp::Join`]s have
    /// slots to land in. Learners size their padded slot width from the
    /// same `effective_max`, keeping batched paths bitwise stable.
    pub fn cluster_with_headroom(&self, cluster: &ClusterConfig) -> ClusterConfig {
        let mut grown = cluster.clone();
        grown.max_servers = Some(
            self.max_slots(cluster.num_servers)
                .max(cluster.effective_max()),
        );
        grown
    }

    /// Lowers the autoscaler to membership events for one evaluation
    /// segment: `num_servers` initial servers of `resource_dims` resource
    /// dimensions, fed `jobs` over `span_s` seconds, this unit seeing
    /// `demand_share` of the stream's offered demand (1.0 for
    /// single-cluster cells; a shard's initial capacity share when the
    /// cell-level stream is lowered per shard). Decisions fire at epoch
    /// boundaries from the utilization observed over the *previous* epoch,
    /// so the schedule is causal as well as feed-forward.
    pub fn lower(
        &self,
        elastic_seed: u64,
        num_servers: usize,
        resource_dims: usize,
        jobs: &[Job],
        span_s: f64,
        demand_share: f64,
    ) -> ElasticSchedule {
        assert!(num_servers > 0, "elastic lowering needs >= 1 server");
        let mut schedule = ElasticSchedule::fixed(num_servers);
        if span_s <= 0.0 || span_s.is_nan() || jobs.is_empty() {
            return schedule;
        }
        let epoch_s = span_s / self.epochs as f64;
        // Offered demand per epoch: arrival-windowed cpu x duration, in
        // unit-server-seconds (the share scales multi-cluster lowering).
        let mut demand = vec![0.0f64; self.epochs];
        for job in jobs {
            let e = ((job.arrival.as_secs() / epoch_s) as usize).min(self.epochs - 1);
            demand[e] += job.demand.cpu() * job.duration * demand_share;
        }
        let (min, max) = (self.min_slots(num_servers), self.max_slots(num_servers));
        // Mirror of the cluster's slot bookkeeping: joins reuse the
        // lowest-index departed slot before appending, leaves retire the
        // highest-index live slot (LIFO).
        let mut slots = vec![true; num_servers];
        let mut live = num_servers;
        let mut cooldown_left = 0usize;
        // Learned-policy state (unused by the threshold baseline).
        let mut qtable: QTable<u64> = QTable::new(3, 0.0);
        let params = SmdpParams::new(0.5, 1e-3);
        let mut prev: Option<(u64, usize)> = None;
        for e in 1..self.epochs {
            let t = e as f64 * epoch_s;
            let util = demand[e - 1] / (epoch_s * live as f64);
            // Action encoding: 0 = scale in, 1 = hold, 2 = scale out.
            let action = match self.policy {
                AutoscalePolicy::Threshold { high, low } => {
                    if util > high {
                        2
                    } else if util < low {
                        0
                    } else {
                        1
                    }
                }
                AutoscalePolicy::Learned { bins, epsilon } => {
                    // Bin offered utilization over [0, 2) (>= 2x live
                    // capacity saturates the top bin).
                    let state = (((util / 2.0) * bins as f64) as u64).min(bins as u64 - 1);
                    // Cost rate of the epoch that just elapsed: fleet
                    // fraction (energy proxy) plus overload overshoot
                    // (latency proxy), credited to the previous decision.
                    let cost = live as f64 / num_servers as f64 + 4.0 * (util - 1.0).max(0.0);
                    if let Some((ps, pa)) = prev {
                        qtable.update_smdp(&params, &ps, pa, -cost, epoch_s, &state);
                    }
                    let draw = mix_seed(elastic_seed, e as u64);
                    // A uniform draw in [0, 1) from the high 53 bits.
                    let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
                    let action = if u < epsilon {
                        mix_seed(draw, 1) as usize % 3
                    } else {
                        qtable.best_action(&state)
                    };
                    prev = Some((state, action));
                    action
                }
            };
            if cooldown_left > 0 {
                cooldown_left -= 1;
                continue;
            }
            match action {
                0 if live > min => {
                    let idx = slots.iter().rposition(|&l| l).expect("live slot exists");
                    slots[idx] = false;
                    live -= 1;
                    schedule.events.push((t, FleetOp::Leave(ServerId(idx))));
                    schedule.sizes.push((t, live));
                    cooldown_left = self.cooldown;
                }
                2 if live < max => {
                    match slots.iter().position(|&l| !l) {
                        Some(idx) => slots[idx] = true,
                        None => slots.push(true),
                    }
                    live += 1;
                    schedule
                        .events
                        .push((t, FleetOp::Join(ServerSpec::unit(resource_dims, true))));
                    schedule.sizes.push((t, live));
                    cooldown_left = self.cooldown;
                }
                _ => {}
            }
        }
        schedule
    }
}

/// A named policy recipe: which control planes run the cell and how the
/// learners are pre-trained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// A fully-specified static pair (no pre-training).
    Static {
        /// Display name.
        name: String,
        /// Global tier.
        allocator: AllocatorKind,
        /// Local tier.
        power: PowerKind,
    },
    /// "DRL-based resource allocation only": pre-trained DRL global tier +
    /// ad-hoc sleep-immediately local behaviour.
    DrlOnly {
        /// Pre-training budget.
        pretrain: Pretrain,
    },
    /// Fig. 10 baseline: pre-trained DRL global tier + fixed local timeout.
    DrlTimeout {
        /// Timeout in seconds.
        timeout_s: f64,
        /// Pre-training budget.
        pretrain: Pretrain,
    },
    /// The full hierarchical framework; `weight` is Eqn. 5's
    /// power-vs-latency `w`.
    Hierarchical {
        /// Power-vs-latency weight in `[0, 1]`.
        weight: f64,
        /// Pre-training budget.
        pretrain: Pretrain,
        /// `true`: co-pre-train both tiers (the Table I / Figs. 8–9
        /// setup). `false`: pre-train only the global tier with ad-hoc
        /// local behaviour and start the local tier fresh — the Fig. 10
        /// setup, where every sweep point (and the fixed-timeout
        /// baselines) must restore the *same* pre-trained global tier.
        co_pretrain: bool,
        /// Optional explicit global-tier configuration (ablations and
        /// quick test builds); `None` runs the paper's default. The
        /// config's RNG seed is replaced by the scenario's derived
        /// policy seed either way.
        #[serde(default)]
        config: Option<Box<DrlAllocatorConfig>>,
    },
    /// A DRL global-tier ablation with an explicit configuration
    /// (+ sleep-immediately local behaviour). The config's RNG seed is
    /// replaced by the scenario's derived policy seed.
    DrlVariant {
        /// Display name.
        name: String,
        /// Explicit allocator configuration.
        config: Box<DrlAllocatorConfig>,
        /// Pre-training budget.
        pretrain: Pretrain,
    },
}

impl PolicySpec {
    /// The round-robin + always-on baseline of Figs. 8/9.
    pub fn round_robin() -> Self {
        PolicySpec::Static {
            name: "round-robin".into(),
            allocator: AllocatorKind::RoundRobin,
            power: PowerKind::AlwaysOn,
        }
    }

    /// A named static pair.
    pub fn static_pair(
        name: impl Into<String>,
        allocator: AllocatorKind,
        power: PowerKind,
    ) -> Self {
        PolicySpec::Static {
            name: name.into(),
            allocator,
            power,
        }
    }

    /// DRL-only with the default pre-training budget.
    pub fn drl_only() -> Self {
        PolicySpec::DrlOnly {
            pretrain: Pretrain::default(),
        }
    }

    /// DRL + fixed timeout with the default pre-training budget.
    pub fn drl_timeout(timeout_s: f64) -> Self {
        PolicySpec::DrlTimeout {
            timeout_s,
            pretrain: Pretrain::default(),
        }
    }

    /// The hierarchical framework at the given weight, tiers co-pre-trained.
    pub fn hierarchical(weight: f64) -> Self {
        PolicySpec::Hierarchical {
            weight,
            pretrain: Pretrain::default(),
            co_pretrain: true,
            config: None,
        }
    }

    /// The hierarchical framework with only the global tier pre-trained and
    /// a fresh local tier (one Fig. 10 operating point).
    pub fn hierarchical_cold_local(weight: f64) -> Self {
        PolicySpec::Hierarchical {
            weight,
            pretrain: Pretrain::default(),
            co_pretrain: false,
            config: None,
        }
    }

    /// The hierarchical framework with an explicit global-tier
    /// configuration and pre-training budget (quick test builds and
    /// ablations), tiers co-pre-trained. Keeps the `hierarchical` display
    /// name at `weight = 0.5`, like [`PolicySpec::hierarchical`].
    pub fn hierarchical_variant(
        weight: f64,
        config: DrlAllocatorConfig,
        pretrain: Pretrain,
    ) -> Self {
        PolicySpec::Hierarchical {
            weight,
            pretrain,
            co_pretrain: true,
            config: Some(Box::new(config)),
        }
    }

    /// A global-tier ablation variant.
    pub fn drl_variant(
        name: impl Into<String>,
        config: DrlAllocatorConfig,
        pretrain: Pretrain,
    ) -> Self {
        PolicySpec::DrlVariant {
            name: name.into(),
            config: Box::new(config),
            pretrain,
        }
    }

    /// Display name (used in scenario ids, reports, and result rows).
    pub fn name(&self) -> String {
        match self {
            PolicySpec::Static { name, .. } | PolicySpec::DrlVariant { name, .. } => name.clone(),
            PolicySpec::DrlOnly { .. } => "drl-only".into(),
            PolicySpec::DrlTimeout { timeout_s, .. } => format!("drl+timeout-{timeout_s}s"),
            PolicySpec::Hierarchical { weight, .. } => {
                if (*weight - 0.5).abs() < 1e-12 {
                    "hierarchical".into()
                } else {
                    format!("hierarchical w={weight}")
                }
            }
        }
    }

    /// Whether this policy carries a DRL global tier (and hence pre-trains).
    pub fn is_learned(&self) -> bool {
        !matches!(self, PolicySpec::Static { .. })
    }
}

/// One cell of an experiment grid: everything needed to reproduce a single
/// run, including its RNG seeding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Stable identifier:
    /// `topology/workload[@drift][%fault][~elastic]/policy/s<seed>`.
    pub id: String,
    /// Cluster under test.
    pub topology: Topology,
    /// Workload recipe.
    pub workload: WorkloadSpec,
    /// Concept-drift axis: segmented evaluation with carried learners
    /// (`None` = the classic single-trace cell).
    pub drift: Option<DriftSpec>,
    /// Chaos axis: a deterministic fault schedule applied to every
    /// evaluation segment (`None` = the classic fault-free cell).
    #[serde(default)]
    pub fault: Option<FaultSpec>,
    /// Elastic axis: an autoscaler tier scheduling membership changes at
    /// deterministic epoch boundaries (`None` = the classic fixed fleet).
    #[serde(default)]
    pub elastic: Option<ElasticSpec>,
    /// Control planes.
    pub policy: PolicySpec,
    /// The cell's base seed; every random stream in the cell derives from
    /// it, so two scenarios with different seeds are independent.
    pub seed: u64,
    /// Stop after this many completed jobs — per segment for drift cells
    /// (`None` = run the whole trace).
    pub max_jobs: Option<u64>,
}

impl Scenario {
    /// Builds a scenario with its canonical id.
    pub fn new(
        topology: Topology,
        workload: WorkloadSpec,
        policy: PolicySpec,
        seed: u64,
        max_jobs: Option<u64>,
    ) -> Self {
        let mut scenario = Self {
            id: String::new(),
            topology,
            workload,
            drift: None,
            fault: None,
            elastic: None,
            policy,
            seed,
            max_jobs,
        };
        scenario.id = scenario.compute_id();
        scenario
    }

    /// The canonical id:
    /// `topology/workload[@drift][%fault][~elastic]/policy/s<seed>` —
    /// byte-identical to the historical format when no axis is set, so
    /// perf-gate baselines keyed on ids stay stable.
    fn compute_id(&self) -> String {
        let mut workload = self.workload.name().to_string();
        if let Some(drift) = &self.drift {
            workload = format!("{workload}@{}", drift.name);
        }
        if let Some(fault) = &self.fault {
            workload = format!("{workload}%{}", fault.name);
        }
        if let Some(elastic) = &self.elastic {
            workload = format!("{workload}~{}", elastic.name);
        }
        format!(
            "{}/{}/{}/s{}",
            self.topology.name(),
            workload,
            self.policy.name(),
            self.seed
        )
    }

    /// Attaches a drift axis, rebuilding the id as
    /// `topology/workload@drift[%fault]/policy/s<seed>`.
    ///
    /// # Panics
    ///
    /// Panics when a synthetic-shift drift is attached to a real-trace
    /// workload: real traces drift on their own wall-clock segments
    /// ([`DriftSpec::real_segments`]), not on generator shifts.
    #[must_use]
    pub fn with_drift(mut self, drift: DriftSpec) -> Self {
        if self.workload.is_real() {
            assert!(
                drift
                    .shifts
                    .iter()
                    .all(|s| matches!(s, SegmentShift::Stationary)),
                "drift {:?} applies generator shifts, but workload {:?} is a real trace \
                 (use DriftSpec::real_segments to replay its wall-clock segments)",
                drift.name,
                self.workload.name()
            );
        }
        self.drift = Some(drift);
        self.id = self.compute_id();
        self
    }

    /// Attaches a chaos axis, rebuilding the id as
    /// `topology/workload[@drift]%fault[~elastic]/policy/s<seed>`.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self.id = self.compute_id();
        self
    }

    /// Attaches an elastic axis, rebuilding the id as
    /// `topology/workload[@drift][%fault]~elastic/policy/s<seed>`.
    #[must_use]
    pub fn with_elastic(mut self, elastic: ElasticSpec) -> Self {
        self.elastic = Some(elastic);
        self.id = self.compute_id();
        self
    }

    /// Seed of the evaluation trace.
    pub fn trace_seed(&self) -> u64 {
        mix_seed(self.seed, 1)
    }

    /// Seed of the global-tier learner (and pre-training segments).
    pub fn policy_seed(&self) -> u64 {
        mix_seed(self.seed, 2)
    }

    /// Seed of the local-tier learner.
    pub fn dpm_seed(&self) -> u64 {
        mix_seed(self.seed, 3)
    }

    /// Seed of the fault schedule (which servers crash/straggle and when
    /// the seed-drawn shapes fire) — stream 4, disjoint from trace (1),
    /// policy (2), and local-tier (3) streams.
    pub fn fault_seed(&self) -> u64 {
        mix_seed(self.seed, 4)
    }

    /// Seed of the elastic schedule (the learned autoscaler's exploration
    /// and every seed-drawn scaling choice) — stream 5, disjoint from
    /// trace (1), policy (2), local-tier (3), and fault (4) streams.
    pub fn elastic_seed(&self) -> u64 {
        mix_seed(self.seed, 5)
    }

    /// Base seed of shard `k` of a multi-cluster cell — the second level of
    /// the two-level derivation scheme: the cell seed spawns one SplitMix64
    /// sub-seed per shard (streams `0x100 + k`, disjoint from the cell's
    /// own 1–3), and each shard then derives its learner seeds from its
    /// sub-seed exactly like a single-cluster cell does from the cell seed.
    /// Shards are therefore mutually independent *and* independent of the
    /// cell-level streams.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        mix_seed(self.seed, 0x100 + shard as u64)
    }

    /// Seed of shard `k`'s global-tier learner (and pre-training segments).
    pub fn shard_policy_seed(&self, shard: usize) -> u64 {
        mix_seed(self.shard_seed(shard), 2)
    }

    /// Seed of shard `k`'s local-tier learner.
    pub fn shard_dpm_seed(&self, shard: usize) -> u64 {
        mix_seed(self.shard_seed(shard), 3)
    }

    /// Seed of shard `k`'s fault schedule: each shard lowers the cell's
    /// [`FaultSpec`] independently against its own cluster size, so
    /// sharded execution stays byte-identical to serial.
    pub fn shard_fault_seed(&self, shard: usize) -> u64 {
        mix_seed(self.shard_seed(shard), 4)
    }

    /// Seed of shard `k`'s elastic schedule: each shard's membership
    /// trajectory lowers from its own sub-seed (and its capacity share of
    /// the cell stream), so sharded elastic cells stay byte-identical to
    /// serial execution.
    pub fn shard_elastic_seed(&self, shard: usize) -> u64 {
        mix_seed(self.shard_seed(shard), 5)
    }

    /// The evaluation trace recipe (the whole stream for non-drift cells;
    /// drift cells materialize through
    /// [`Scenario::segment_trace_specs`] instead).
    ///
    /// # Panics
    ///
    /// Panics for real-trace cells, which resolve through
    /// [`WorkloadSpec::real_source`] in the runner instead.
    pub fn trace_spec(&self) -> TraceSpec {
        self.workload.trace_spec(&self.topology, self.trace_seed())
    }

    /// The evaluation stream as ordered segment recipes: one entry (the
    /// plain [`Scenario::trace_spec`]) for non-drift cells; for drift
    /// cells, one per [`SegmentShift`], with per-segment seeds derived
    /// from the cell's trace seed (`mix(trace_seed, i)`) and the cell's
    /// total job budget split evenly across segments — so a drift cell
    /// evaluates the same volume as its stationary counterpart.
    ///
    /// # Panics
    ///
    /// Panics for real-trace cells: their segments come from wall-clock
    /// splitting of the on-disk trace (see the runner), not from recipes.
    pub fn segment_trace_specs(&self) -> Vec<TraceSpec> {
        assert!(
            !self.workload.is_real(),
            "cell {:?} replays a real trace: segments come from wall-clock splitting",
            self.id
        );
        match &self.drift {
            None => vec![self.trace_spec()],
            Some(drift) => {
                let m = self.topology.servers();
                let base = WorkloadConfig::google_like(
                    self.trace_seed(),
                    self.workload.jobs_per_week_for(m),
                );
                SegmentedTraceSpec::from_shifts(
                    &base,
                    &drift.shifts,
                    self.workload.jobs_for(m) as usize,
                    self.trace_seed(),
                )
                .segments
            }
        }
    }

    /// Number of evaluation segments (1 for non-drift cells).
    pub fn num_segments(&self) -> usize {
        self.drift.as_ref().map_or(1, DriftSpec::num_segments)
    }

    /// Whether learners keep training online during evaluation (`false`
    /// only for frozen-ablation drift cells).
    pub fn online_learning(&self) -> bool {
        self.drift.as_ref().is_none_or(|d| d.online)
    }

    /// Display label of segment `i` (used in per-segment report rows):
    /// the shift's label for synthetic drift cells, a wall-clock window
    /// label (`week0`, `week1`, … — or `seg<i>` for non-week windows) for
    /// real-trace drift cells whose segment count is data-driven.
    pub fn segment_label(&self, i: usize) -> String {
        match &self.drift {
            None => "full".into(),
            Some(_) if self.workload.is_real() => {
                if (self.workload.segment_window_s() - SECS_PER_WEEK).abs() < 1e-9 {
                    format!("week{i}")
                } else {
                    format!("seg{i}")
                }
            }
            Some(drift) => drift.shifts[i].label(),
        }
    }

    /// The run limit.
    pub fn run_limit(&self) -> RunLimit {
        match self.max_jobs {
            Some(n) => RunLimit::jobs(n),
            None => RunLimit::unbounded(),
        }
    }

    fn drl_config_with_seed(&self, policy_seed: u64) -> Option<DrlAllocatorConfig> {
        let seeded = |mut config: DrlAllocatorConfig| {
            config.seed = policy_seed;
            config
        };
        match &self.policy {
            PolicySpec::Static { .. } => None,
            PolicySpec::DrlVariant { config, .. }
            | PolicySpec::Hierarchical {
                config: Some(config),
                ..
            } => Some(seeded((**config).clone())),
            _ => Some(seeded(DrlAllocatorConfig::default())),
        }
    }

    fn dpm_config_with_seed(&self, dpm_seed: u64) -> Option<RlPowerConfig> {
        match &self.policy {
            PolicySpec::Hierarchical { weight, .. } => Some(RlPowerConfig {
                weight: *weight,
                seed: dpm_seed,
                ..Default::default()
            }),
            _ => None,
        }
    }

    /// The global-tier configuration this cell trains (learned policies).
    pub fn drl_config(&self) -> Option<DrlAllocatorConfig> {
        self.drl_config_with_seed(self.policy_seed())
    }

    /// Shard `k`'s global-tier configuration (multi-cluster cells; every
    /// shard trains its own learner from its own derived seed).
    pub fn shard_drl_config(&self, shard: usize) -> Option<DrlAllocatorConfig> {
        self.drl_config_with_seed(self.shard_policy_seed(shard))
    }

    /// The local-tier configuration this cell runs (hierarchical only).
    pub fn dpm_config(&self) -> Option<RlPowerConfig> {
        self.dpm_config_with_seed(self.dpm_seed())
    }

    /// Shard `k`'s local-tier configuration (multi-cluster hierarchical
    /// cells).
    pub fn shard_dpm_config(&self, shard: usize) -> Option<RlPowerConfig> {
        self.dpm_config_with_seed(self.shard_dpm_seed(shard))
    }

    /// The local-tier configuration *included in pre-training* — `None`
    /// for `co_pretrain: false` hierarchical cells, which keeps them out
    /// of the pre-train cache key so every Fig. 10 operating point (and
    /// the fixed-timeout baselines) shares one pre-trained global tier.
    pub fn co_pretrain_dpm_config(&self) -> Option<RlPowerConfig> {
        match &self.policy {
            PolicySpec::Hierarchical {
                co_pretrain: true, ..
            } => self.dpm_config(),
            _ => None,
        }
    }

    /// Shard `k`'s pre-training local-tier configuration (the shard-level
    /// analogue of [`Scenario::co_pretrain_dpm_config`]).
    pub fn shard_co_pretrain_dpm_config(&self, shard: usize) -> Option<RlPowerConfig> {
        match &self.policy {
            PolicySpec::Hierarchical {
                co_pretrain: true, ..
            } => self.shard_dpm_config(shard),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdrl_trace::source::TraceSource;

    #[test]
    fn workload_scales_with_cluster_size() {
        let w = WorkloadSpec::paper();
        assert_eq!(w.jobs_for(30), 95_000);
        assert!((w.jobs_per_week_for(30) - 95_000.0).abs() < 1e-9);
        assert!((w.jobs_per_week_for(40) - 95_000.0 * 40.0 / 30.0).abs() < 1e-6);
        let fixed = w.with_total_jobs(1234);
        assert_eq!(fixed.jobs_for(40), 1234);
    }

    #[test]
    fn shard_share_prorates_fixed_totals() {
        // A fixed total prorates by server share; a 3-of-10 shard of a
        // 1000-job cell gets 300 jobs, not the full 1000.
        let fixed = WorkloadSpec::paper().with_total_jobs(1000);
        assert_eq!(fixed.shard_jobs_for(3, 10), 300);
        assert_eq!(fixed.shard_jobs_for(10, 10), 1000);
        // Per-server budgets already scale with the shard's size.
        let per = WorkloadSpec::paper().with_jobs_per_server(100.0);
        assert_eq!(per.shard_jobs_for(3, 10), per.jobs_for(3));
    }

    #[test]
    fn scenario_ids_are_stable_and_unique_per_coordinate() {
        let s = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper(),
            PolicySpec::round_robin(),
            7,
            None,
        );
        assert_eq!(s.id, "paper-m5/paper/round-robin/s7");
        let t = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper(),
            PolicySpec::round_robin(),
            8,
            None,
        );
        assert_ne!(s.id, t.id);
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let s = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper(),
            PolicySpec::drl_only(),
            7,
            None,
        );
        assert_ne!(s.trace_seed(), s.policy_seed());
        assert_ne!(s.policy_seed(), s.dpm_seed());
        // Neighbouring base seeds produce unrelated trace seeds.
        let t = Scenario {
            seed: 8,
            ..s.clone()
        };
        assert_ne!(s.trace_seed(), t.trace_seed());
    }

    #[test]
    fn learned_policies_get_cell_derived_rng_seeds() {
        let s = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper(),
            PolicySpec::hierarchical(0.3),
            7,
            None,
        );
        assert_eq!(s.drl_config().unwrap().seed, s.policy_seed());
        let dpm = s.dpm_config().unwrap();
        assert_eq!(dpm.seed, s.dpm_seed());
        assert!((dpm.weight - 0.3).abs() < 1e-12);
        assert!(s.policy.is_learned());
    }

    #[test]
    fn policy_names_match_paper_conventions() {
        assert_eq!(PolicySpec::round_robin().name(), "round-robin");
        assert_eq!(PolicySpec::drl_only().name(), "drl-only");
        assert_eq!(PolicySpec::drl_timeout(60.0).name(), "drl+timeout-60s");
        assert_eq!(PolicySpec::hierarchical(0.5).name(), "hierarchical");
        assert_eq!(PolicySpec::hierarchical(0.2).name(), "hierarchical w=0.2");
    }

    #[test]
    fn cold_local_hierarchical_pretrains_without_the_local_tier() {
        let cold = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper(),
            PolicySpec::hierarchical_cold_local(0.2),
            7,
            None,
        );
        // Fig. 10 cells still *run* a local tier at their weight, but keep
        // it out of pre-training so the global tier is shared across the
        // sweep (its pre-train inputs match a DrlTimeout cell's).
        assert!(cold.co_pretrain_dpm_config().is_none());
        assert!((cold.dpm_config().unwrap().weight - 0.2).abs() < 1e-12);

        let warm = Scenario {
            policy: PolicySpec::hierarchical(0.2),
            ..cold.clone()
        };
        assert_eq!(warm.co_pretrain_dpm_config(), warm.dpm_config());
    }

    #[test]
    fn pretrain_segments_differ_and_scale() {
        let w = WorkloadSpec::paper().with_total_jobs(2000);
        let specs = Pretrain::default().segment_specs(10, w.jobs_for(10), &w, 99);
        assert_eq!(specs.len(), 5);
        assert_eq!(specs[0].jobs, 300);
        assert_ne!(specs[0].workload.seed, specs[1].workload.seed);
    }

    #[test]
    fn sharded_topology_splits_servers_evenly() {
        let topo = Topology::sharded_paper(4, 10, RouterPolicy::RoundRobin);
        assert_eq!(topo.name(), "paper-c4m10-rr");
        assert_eq!(topo.servers(), 10);
        let sizes: Vec<usize> = topo.clusters().iter().map(|c| c.num_servers).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(topo.router(), Some(RouterPolicy::RoundRobin));
        assert!(topo.is_multi_cluster());

        let single = Topology::paper(5);
        assert_eq!(single.clusters().len(), 1);
        assert_eq!(single.router(), None);
        assert!(!single.is_multi_cluster());
    }

    #[test]
    fn big_little_topology_builds_two_tiers() {
        let topo = Topology::big_little(10, 0.25, 2.0);
        assert_eq!(topo.name(), "big-little-m10-b3x2");
        assert_eq!(topo.servers(), 10);
        // 3 big at 2x + 7 little: 13 unit-server equivalents, skew 2.
        assert_eq!(topo.total_capacity(), 13.0);
        assert_eq!(topo.capacity_skew(), 2.0);
        let cluster = &topo.clusters()[0];
        assert!(cluster.validate().is_ok());
        let caps = cluster.server_capacities.as_ref().unwrap();
        assert!(caps[..3].iter().all(|c| c.cpu() == 2.0));
        assert!(caps[3..].iter().all(|c| c.cpu() == 1.0));

        // Homogeneous fleets stay skew-free with capacity == servers.
        assert_eq!(Topology::paper(5).capacity_skew(), 1.0);
        assert_eq!(Topology::paper(5).total_capacity(), 5.0);
    }

    #[test]
    fn sharded_big_little_keeps_tiers_per_cluster() {
        let topo = Topology::sharded_big_little(2, 6, 0.34, 4.0, RouterPolicy::WeightedByCapacity);
        assert_eq!(topo.servers(), 6);
        assert!(topo.is_multi_cluster());
        // Each cluster of 3 has one 4x machine: weight 6 per cluster.
        assert_eq!(topo.total_capacity(), 12.0);
        assert_eq!(topo.capacity_skew(), 4.0);
        for c in topo.clusters() {
            assert!(c.validate().is_ok());
            assert_eq!(c.routing_weight(), 6.0);
        }
    }

    #[test]
    #[should_panic(expected = "big_fraction must be in (0, 1]")]
    fn big_little_rejects_bad_fraction() {
        let _ = Topology::big_little(10, 0.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "clusters must agree on resource dims")]
    fn mixed_dims_multi_cluster_rejected() {
        let mut odd = ClusterConfig::paper(2);
        odd.resource_dims = 2;
        let _ = Topology::multi(
            "bad",
            vec![ClusterConfig::paper(2), odd],
            RouterPolicy::RoundRobin,
        );
    }

    #[test]
    fn drift_cells_split_the_budget_and_rename_the_id() {
        let s = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper().with_total_jobs(1000),
            PolicySpec::drl_only(),
            7,
            None,
        )
        .with_drift(DriftSpec::rate_step(2.0));
        assert_eq!(s.id, "paper-m5/paper@rate-step-x2/drl-only/s7");
        assert_eq!(s.num_segments(), 2);
        assert!(s.online_learning());
        assert_eq!(s.segment_label(0), "stationary");
        assert_eq!(s.segment_label(1), "rate-x2");

        let specs = s.segment_trace_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs.iter().map(|t| t.jobs).sum::<usize>(), 1000);
        // Per-segment seeds derive from the trace seed; the shifted
        // segment runs at twice the base rate.
        assert_eq!(specs[0].workload.seed, mix_seed(s.trace_seed(), 0));
        assert_ne!(specs[0].workload.seed, specs[1].workload.seed);
        assert!(
            (specs[1].workload.arrivals.base_rate - 2.0 * specs[0].workload.arrivals.base_rate)
                .abs()
                < 1e-12
        );

        // Non-drift cells keep the single-spec path and the old id.
        let plain = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper().with_total_jobs(1000),
            PolicySpec::drl_only(),
            7,
            None,
        );
        assert_eq!(plain.num_segments(), 1);
        assert_eq!(plain.segment_trace_specs(), vec![plain.trace_spec()]);
    }

    #[test]
    fn frozen_ablation_flips_online_and_suffixes_the_name() {
        let online = DriftSpec::pattern_flip();
        let frozen = online.clone().with_frozen_learners();
        assert!(online.online);
        assert!(!frozen.online);
        assert_eq!(frozen.name, "pattern-flip-frozen");
        assert_eq!(frozen.shifts, online.shifts, "same segments either way");

        let s = Scenario::new(
            Topology::paper(4),
            WorkloadSpec::paper().with_total_jobs(400),
            PolicySpec::hierarchical(0.5),
            3,
            None,
        );
        let a = s.clone().with_drift(online);
        let b = s.with_drift(frozen);
        assert!(!b.online_learning());
        assert_ne!(a.id, b.id, "ablation cells need distinct ids");
        assert_eq!(
            a.segment_trace_specs(),
            b.segment_trace_specs(),
            "ablation pairs must evaluate identical segment traces"
        );
    }

    #[test]
    fn shard_seeds_are_decorrelated_from_cell_streams() {
        let s = Scenario::new(
            Topology::sharded_paper(3, 9, RouterPolicy::LeastLoaded),
            WorkloadSpec::paper(),
            PolicySpec::hierarchical(0.5),
            7,
            None,
        );
        // Shard sub-seeds differ from each other and from the cell streams.
        let mut seen = vec![s.trace_seed(), s.policy_seed(), s.dpm_seed()];
        for k in 0..3 {
            seen.push(s.shard_seed(k));
            seen.push(s.shard_policy_seed(k));
            seen.push(s.shard_dpm_seed(k));
        }
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "derived seeds must not collide");

        // Shard configs carry the shard-derived seeds.
        assert_eq!(s.shard_drl_config(1).unwrap().seed, s.shard_policy_seed(1));
        assert_eq!(s.shard_dpm_config(2).unwrap().seed, s.shard_dpm_seed(2));
        assert_eq!(
            s.shard_co_pretrain_dpm_config(0),
            s.shard_dpm_config(0),
            "co-pre-trained hierarchical shards restore their local tier"
        );
    }

    #[test]
    fn fault_cells_rename_the_id_and_derive_a_disjoint_seed() {
        let base = Scenario::new(
            Topology::paper(5),
            WorkloadSpec::paper(),
            PolicySpec::round_robin(),
            7,
            None,
        );
        let faulted = base.clone().with_fault(FaultSpec::crash_storm());
        assert_eq!(faulted.id, "paper-m5/paper%crash-storm/round-robin/s7");
        // The fault seed is its own stream, disjoint from every other.
        let seeds = [
            faulted.trace_seed(),
            faulted.policy_seed(),
            faulted.dpm_seed(),
            faulted.fault_seed(),
            faulted.shard_fault_seed(0),
        ];
        let mut dedup = seeds.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
        // The fault axis changes nothing about the evaluation stream.
        assert_eq!(faulted.segment_trace_specs(), base.segment_trace_specs());

        // Drift and fault compose: `workload@drift%fault`.
        let both = base
            .with_drift(DriftSpec::rate_step(2.0))
            .with_fault(FaultSpec::straggler_wave());
        assert_eq!(
            both.id,
            "paper-m5/paper@rate-step-x2%straggler-wave/round-robin/s7"
        );
    }

    #[test]
    fn fault_lowering_is_deterministic_and_span_scaled() {
        let spec = FaultSpec::crash_storm();
        let a = spec.lower(99, 10, 1000.0);
        let b = spec.lower(99, 10, 1000.0);
        assert_eq!(a, b, "lowering is a pure function of its inputs");
        assert_ne!(
            a,
            spec.lower(100, 10, 1000.0),
            "a different fault seed draws different servers"
        );
        // round(0.35 * 10) crashes, each paired with exactly one recover.
        let crashes: Vec<ServerId> = a
            .iter()
            .filter_map(|(_, op)| match op {
                FleetOp::Crash(sid) => Some(*sid),
                _ => None,
            })
            .collect();
        let recovers: Vec<ServerId> = a
            .iter()
            .filter_map(|(_, op)| match op {
                FleetOp::Recover(sid) => Some(*sid),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), 4);
        let mut unique = crashes.clone();
        unique.sort_unstable_by_key(|s| s.0);
        unique.dedup();
        assert_eq!(unique.len(), 4, "storm servers are distinct");
        let mut rec = recovers;
        rec.sort_unstable_by_key(|s| s.0);
        assert_eq!(rec, unique, "every crash pairs with one recover");
        // Events are time-sorted and scale with the span.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        let doubled = spec.lower(99, 10, 2000.0);
        assert!((doubled[0].0 - 2.0 * a[0].0).abs() < 1e-9);

        // A cap window scales every server and restores every server.
        let cap = FaultSpec::cap_window().lower(1, 3, 100.0);
        assert_eq!(cap.len(), 6);
        assert!(cap[..3]
            .iter()
            .all(|(t, op)| *t == 30.0
                && matches!(op, FleetOp::SetScale { scale, .. } if *scale == 0.6)));
        assert!(cap[3..]
            .iter()
            .all(|(t, op)| *t == 60.0
                && matches!(op, FleetOp::SetScale { scale, .. } if *scale == 1.0)));
    }

    #[test]
    fn spike_jobs_extend_the_stream_without_colliding_ids() {
        let template: Vec<Job> = (0..40)
            .map(|i| {
                Job::new(
                    JobId(i),
                    SimTime::from_secs(i as f64 * 10.0),
                    60.0,
                    hierdrl_sim::resources::ResourceVec::cpu_mem_disk(0.2, 0.1, 0.05),
                )
            })
            .collect();
        let spec = FaultSpec::arrival_spike();
        let extra = spec.spike_jobs(5, &template, 390.0);
        assert_eq!(extra.len(), 10, "a quarter of 40 template jobs");
        assert_eq!(extra, spec.spike_jobs(5, &template, 390.0));
        let window = (0.4 * 390.0, (0.4 + 0.1) * 390.0);
        for (i, job) in extra.iter().enumerate() {
            assert!(job.id.0 >= 40, "spike ids continue past the template's");
            assert!(job.arrival.as_secs() >= window.0 && job.arrival.as_secs() <= window.1);
            if i > 0 {
                assert!(extra[i - 1].arrival <= job.arrival, "sorted by arrival");
            }
        }
        // Non-spike shapes inject nothing.
        assert!(FaultSpec::crash_storm()
            .spike_jobs(5, &template, 390.0)
            .is_empty());
        assert!(!FaultSpec::crash_storm().has_spikes());
        assert!(spec.has_spikes());
    }

    #[test]
    #[should_panic(expected = "fault time must be in [0, 1], got -0.1")]
    fn negative_fault_time_rejected() {
        let _ = FaultSpec::new(
            "bad",
            vec![FaultShape::Crash {
                server: 0,
                at: -0.1,
                outage: 0.2,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "crashes server 9 out of 4 servers")]
    fn out_of_range_crash_server_rejected_at_lowering() {
        let spec = FaultSpec::new(
            "bad",
            vec![FaultShape::Crash {
                server: 9,
                at: 0.5,
                outage: 0.2,
            }],
        );
        let _ = spec.lower(1, 4, 100.0);
    }

    #[test]
    #[should_panic(expected = "cap windows 0 and 1 overlap")]
    fn overlapping_cap_windows_rejected() {
        let _ = FaultSpec::new(
            "bad",
            vec![
                FaultShape::CapWindow {
                    scale: 0.5,
                    start: 0.2,
                    duration: 0.3,
                },
                FaultShape::CapWindow {
                    scale: 0.7,
                    start: 0.4,
                    duration: 0.2,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "must be positive and finite")]
    fn non_positive_outage_rejected() {
        let _ = FaultSpec::new(
            "bad",
            vec![FaultShape::Crash {
                server: 0,
                at: 0.5,
                outage: 0.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "fault spec needs >= 1 shape")]
    fn empty_fault_spec_rejected() {
        let _ = FaultSpec::new("bad", Vec::new());
    }

    fn real_workload() -> WorkloadSpec {
        WorkloadSpec::real_trace("real-g", "some/trace.csv", TraceFormat::GoogleTaskEvents)
    }

    #[test]
    fn real_workload_defaults_and_overrides() {
        let w = real_workload();
        assert!(w.is_real());
        assert_eq!(w.name(), "real-g");
        assert_eq!(w.demand_gate(), Some(DEFAULT_DEMAND_GATE));
        assert_eq!(w.segment_window_s(), SECS_PER_WEEK);
        assert_eq!(w.jobs_for(10), 0, "uncapped replay runs the whole file");
        assert_eq!(
            w.weekly_jobs_per_server(),
            PAPER_WEEKLY_JOBS_PER_SERVER,
            "pre-training stays at the paper's synthetic rate"
        );
        let w = w
            .with_total_jobs(500)
            .with_demand_gate(0.1)
            .with_segment_window(2.0 * SECS_PER_WEEK);
        assert_eq!(w.jobs_for(10), 500);
        assert_eq!(w.shard_jobs_for(5, 10), 250, "caps prorate by server share");
        assert_eq!(w.demand_gate(), Some(0.1));
        assert_eq!(w.segment_window_s(), 2.0 * SECS_PER_WEEK);
        let source = w.real_source().expect("real workload has a source");
        assert_eq!(source.label(), "google:some/trace.csv");
    }

    #[test]
    #[should_panic(expected = "resolve it through real_source()")]
    fn real_workload_has_no_generator_recipe() {
        let _ = real_workload().trace_spec(&Topology::paper(4), 1);
    }

    #[test]
    #[should_panic(expected = "demand gating does not apply")]
    fn synthetic_workload_rejects_demand_gate() {
        let _ = WorkloadSpec::paper().with_demand_gate(0.1);
    }

    #[test]
    #[should_panic(expected = "DriftSpec::real_segments")]
    fn real_workload_rejects_generator_drift() {
        let scenario = Scenario::new(
            Topology::paper(4),
            real_workload(),
            PolicySpec::round_robin(),
            1,
            None,
        );
        let _ = scenario.with_drift(DriftSpec::rate_step(2.0));
    }

    #[test]
    fn real_segment_labels_follow_the_window() {
        let weekly = Scenario::new(
            Topology::paper(4),
            real_workload(),
            PolicySpec::round_robin(),
            1,
            None,
        )
        .with_drift(DriftSpec::real_segments());
        assert_eq!(weekly.segment_label(0), "week0");
        assert_eq!(weekly.segment_label(3), "week3");
        let daily = Scenario::new(
            Topology::paper(4),
            real_workload().with_segment_window(86_400.0),
            PolicySpec::round_robin(),
            1,
            None,
        )
        .with_drift(DriftSpec::real_segments());
        assert_eq!(daily.segment_label(2), "seg2");
        assert!(weekly.id.contains("@real-weeks/"));
    }

    #[test]
    fn elastic_axis_joins_the_id_after_the_fault_component() {
        let s = Scenario::new(
            Topology::paper(4),
            WorkloadSpec::paper(),
            PolicySpec::round_robin(),
            7,
            None,
        )
        .with_fault(FaultSpec::cap_window())
        .with_elastic(ElasticSpec::threshold());
        assert_eq!(s.id, "paper-m4/paper%cap-window~threshold/round-robin/s7");
        // The fixed-fleet twin differs only by the `~elastic` component —
        // the strip the autoscale-economics expectation relies on.
        assert_eq!(
            s.id.replace("~threshold", ""),
            "paper-m4/paper%cap-window/round-robin/s7"
        );
        // Stream 5 is disjoint from the other per-cell streams.
        assert_ne!(s.elastic_seed(), s.fault_seed());
        assert_ne!(s.elastic_seed(), s.trace_seed());
        assert_ne!(s.shard_elastic_seed(0), s.shard_elastic_seed(1));
    }

    /// A saturating-then-quiet stream: heavy demand in the first half of
    /// the span, nothing afterwards.
    fn front_loaded_jobs(n: usize, span_s: f64) -> Vec<Job> {
        (0..n)
            .map(|i| {
                Job::new(
                    JobId(i as u64),
                    SimTime::from_secs(i as f64 * (span_s / 2.0) / n as f64),
                    600.0,
                    hierdrl_sim::resources::ResourceVec::cpu_mem_disk(0.9, 0.1, 0.01),
                )
            })
            .chain(std::iter::once(Job::new(
                JobId(n as u64),
                SimTime::from_secs(span_s),
                1.0,
                hierdrl_sim::resources::ResourceVec::cpu_mem_disk(0.01, 0.01, 0.01),
            )))
            .collect()
    }

    #[test]
    fn threshold_lowering_scales_out_under_load_and_back_in_when_quiet() {
        let spec = ElasticSpec::threshold();
        let jobs = front_loaded_jobs(200, 12_000.0);
        let schedule = spec.lower(99, 4, 3, &jobs, 12_000.0, 1.0);
        assert!(!schedule.events.is_empty(), "autoscaler never acted");
        let joins = schedule
            .events
            .iter()
            .filter(|(_, op)| matches!(op, FleetOp::Join(_)))
            .count();
        let leaves = schedule
            .events
            .iter()
            .filter(|(_, op)| matches!(op, FleetOp::Leave(_)))
            .count();
        assert!(joins >= 1, "heavy first half should trigger scale-out");
        assert!(leaves >= 1, "quiet second half should trigger scale-in");
        // The scheduled size stays inside the configured range.
        let (min, max, mean) = schedule.size_stats(12_000.0);
        assert!(min >= spec.min_slots(4) && max <= spec.max_slots(4));
        assert!(mean >= min as f64 && mean <= max as f64);
        // Events arrive in time order, sizes start at the initial fleet.
        assert!(schedule.events.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(schedule.sizes[0], (0.0, 4));
    }

    #[test]
    fn elastic_lowering_is_deterministic_and_seed_sensitive() {
        let spec = ElasticSpec::learned();
        let jobs = front_loaded_jobs(200, 12_000.0);
        let a = spec.lower(5, 4, 3, &jobs, 12_000.0, 1.0);
        let b = spec.lower(5, 4, 3, &jobs, 12_000.0, 1.0);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        // An empty or zero-span segment lowers to a fixed fleet.
        let empty = spec.lower(5, 4, 3, &[], 12_000.0, 1.0);
        assert_eq!(empty, ElasticSchedule::fixed(4));
    }

    #[test]
    fn schedule_size_stats_are_time_weighted() {
        let schedule = ElasticSchedule {
            events: Vec::new(),
            sizes: vec![(0.0, 4), (100.0, 5), (300.0, 3)],
        };
        assert_eq!(schedule.size_at(0.0), 4);
        assert_eq!(schedule.size_at(150.0), 5);
        assert_eq!(schedule.size_at(1000.0), 3);
        let (min, max, mean) = schedule.size_stats(400.0);
        assert_eq!((min, max), (3, 5));
        // 100s at 4, 200s at 5, 100s at 3 over 400s.
        assert!((mean - (400.0 + 1000.0 + 300.0) / 400.0).abs() < 1e-12);
    }

    #[test]
    fn elastic_headroom_raises_max_servers() {
        let spec = ElasticSpec::threshold();
        let grown = spec.cluster_with_headroom(&ClusterConfig::paper(4));
        assert_eq!(grown.effective_max(), 6);
        assert_eq!(grown.num_servers, 4);
    }

    #[test]
    #[should_panic(expected = "0 < low < high")]
    fn inverted_thresholds_are_rejected() {
        let _ = ElasticSpec::new(
            "bad",
            AutoscalePolicy::Threshold {
                high: 0.2,
                low: 0.8,
            },
            12,
            0.5,
            1.5,
            1,
        );
    }
}
