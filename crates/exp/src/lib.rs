//! # hierdrl-exp
//!
//! Declarative experiment orchestration for the hierarchical DRL framework:
//! the **Topology → Scenario → Suite → Runner** pipeline that every table
//! and figure of the paper's evaluation — and every future sweep — is
//! expressed through.
//!
//! - [`scenario::Topology`] names a cluster configuration — a single
//!   cluster, or several independent clusters sharing one arrival stream
//!   behind a deterministic front-end router
//!   ([`hierdrl_sim::router::Router`]), in which case the runner simulates
//!   each cluster on its own worker thread and merges in shard order;
//! - [`scenario::WorkloadSpec`] is a workload recipe resolved against a
//!   topology, so per-server load stays comparable across cluster sizes;
//! - [`scenario::PolicySpec`] names the control planes (static baselines or
//!   pre-trained learners) and their pre-training budget;
//! - a [`scenario::Scenario`] is one fully-seeded grid cell;
//! - a [`suite::Suite`] is a cartesian grid of cells, built with
//!   [`suite::SuiteBuilder`] or taken from the paper [`presets`];
//! - the [`runner::SuiteRunner`] executes cells in parallel (rayon) with
//!   per-cell seed derivation, shared trace materialization
//!   ([`hierdrl_trace::materialize::TraceCache`]), and memoized
//!   pre-training, producing a canonical [`report::SuiteReport`] that is
//!   **byte-identical** between serial and parallel execution.
//!
//! # Building a grid
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! // Policy × cluster-size grid at a smoke-test workload.
//! let suite = Suite::builder("demo")
//!     .topologies([Topology::paper(4), Topology::paper(6)])
//!     .workloads([WorkloadSpec::paper().with_total_jobs(120)])
//!     .policies([
//!         PolicySpec::round_robin(),
//!         PolicySpec::static_pair(
//!             "first-fit+sleep",
//!             AllocatorKind::FirstFit,
//!             PowerKind::SleepImmediately,
//!         ),
//!     ])
//!     .seeds([1])
//!     .build();
//! assert_eq!(suite.len(), 4);
//!
//! let run = SuiteRunner::new().run(&suite)?;
//! for cell in &run.cells {
//!     assert_eq!(cell.result.outcome.totals.jobs_completed, 120);
//! }
//! # Ok::<(), String>(())
//! ```
//!
//! # Determinism
//!
//! Every random stream in a cell derives from the scenario's own seed via
//! a SplitMix64 mix, so cells are independent: rerunning a suite with any
//! thread count reproduces the same canonical report, and changing one
//! cell's seed perturbs only that cell.
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! let suite = Suite::builder("determinism")
//!     .topologies([Topology::paper(3)])
//!     .workloads([WorkloadSpec::paper().with_total_jobs(80)])
//!     .policies([PolicySpec::round_robin()])
//!     .seeds([7, 8])
//!     .build();
//!
//! let parallel = SuiteRunner::new().with_threads(4).run(&suite)?;
//! let serial = SuiteRunner::serial().run(&suite)?;
//! assert_eq!(parallel.report().to_json(), serial.report().to_json());
//! # Ok::<(), String>(())
//! ```
//!
//! # Multi-cluster sharding
//!
//! A [`scenario::Topology::MultiCluster`] cell splits its arrival stream
//! across independent clusters with a deterministic front-end router and
//! simulates each cluster on its own worker thread; per-shard learner
//! seeds derive from the cell seed (two-level SplitMix64), so the sharded
//! run stays byte-identical to serial execution.
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! let suite = Suite::builder("sharded")
//!     .topologies([Topology::sharded_paper(2, 6, RouterPolicy::RoundRobin)])
//!     .workloads([WorkloadSpec::paper().with_total_jobs(100)])
//!     .policies([PolicySpec::round_robin()])
//!     .seeds([1])
//!     .build();
//!
//! let run = SuiteRunner::new().run(&suite)?;
//! let cell = &run.cells[0];
//! assert_eq!(cell.shards.len(), 2);
//! let routed: u64 = cell.shards.iter().map(|s| s.shard.jobs_routed).sum();
//! assert_eq!(routed, 100);
//! # Ok::<(), String>(())
//! ```
//!
//! # Online learning under concept drift
//!
//! A [`scenario::DriftSpec`] adds the concept-drift axis: the cell's
//! workload becomes an ordered list of segments (arrival-rate steps and
//! ramps, pattern regime changes, burstiness shifts — see
//! [`hierdrl_trace::drift::SegmentShift`]), and the runner carries one set
//! of learners across all of them, interleaving evaluation with continued
//! online training. Per-segment rows land in the report next to the
//! whole-run aggregate; `DriftSpec::with_frozen_learners` produces the
//! no-continued-training ablation twin of any drift.
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! let suite = Suite::builder("drifting")
//!     .topologies([Topology::paper(3)])
//!     .workloads([WorkloadSpec::paper().with_total_jobs(120)])
//!     .drifts([DriftSpec::rate_step(2.0)])
//!     .policies([PolicySpec::round_robin()])
//!     .seeds([1])
//!     .build();
//!
//! let run = SuiteRunner::new().run(&suite)?;
//! let report = run.report();
//! let segments = report.cells[0].segments.as_ref().unwrap();
//! assert_eq!(segments.len(), 2);
//! assert_eq!(segments[1].shift, "rate-x2");
//! let total: u64 = segments.iter().map(|s| s.metrics.jobs_completed).sum();
//! assert_eq!(total, 120);
//! # Ok::<(), String>(())
//! ```
//!
//! # Chaos axis and expectations
//!
//! A [`scenario::FaultSpec`] adds the chaos axis: a named, deterministic,
//! seed-derived fault schedule — server crashes with recovery, transient
//! stragglers, fleet-wide power-cap windows, arrival spikes — lowered to
//! event-level fleet changes the simulator applies between arrivals. Jobs
//! on a crashed server are requeued through the allocator exactly once,
//! and the degraded fleet is what routing, state encoding, and the
//! Eqn.-4/5 rewards see. Declarative [`suite::Expectation`]s (metric
//! bounds, conservation invariants, determinism pins, and the
//! graceful-degradation headline) attach to the suite and land as
//! pass/fail rows in the report.
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! let suite = Suite::builder("chaotic")
//!     .topologies([Topology::paper(4)])
//!     .workloads([WorkloadSpec::paper().with_total_jobs(150)])
//!     .faults_with_baseline([FaultSpec::crash_storm()])
//!     .policies([PolicySpec::round_robin()])
//!     .seeds([1])
//!     .expect(Expectation::JobConservation {
//!         name: "conserved".into(),
//!     })
//!     .build();
//!
//! let run = SuiteRunner::new().run(&suite)?;
//! let report = run.report();
//! // The fault cell rode next to its fault-free twin...
//! assert_eq!(report.cells[1].fault.as_deref(), Some("crash-storm"));
//! assert!(report.cells[1].jobs_requeued > 0);
//! // ...and every arrived job still completed exactly once.
//! assert!(report.expectations[0].passed, "{}", report.expectations[0].detail);
//! # Ok::<(), String>(())
//! ```
//!
//! # Elastic fleets and the autoscaler tier
//!
//! An [`scenario::ElasticSpec`] adds the elastic axis: a named,
//! deterministic membership schedule — `Join`/`Leave` fleet ops lowered at
//! epoch boundaries from the cell's own arrival stream by a reactive
//! threshold autoscaler or a learned tabular policy
//! ([`scenario::AutoscalePolicy`]) — applied between arrivals exactly like
//! fault events. Departing servers drain-and-requeue like crashes, joins
//! add capacity-scaled slots under the spec's headroom ceiling, and on
//! multi-cluster cells the front-end router re-derives capacity weights at
//! the scheduled membership epochs, so sharded elastic cells stay
//! byte-identical to serial execution. Every fresh cell reports
//! [`report::FleetSize`] columns (fixed fleets as `min = max = M`), and
//! the [`suite::Expectation::AutoscaleEconomics`] headline pins the
//! economics: autoscale + DRL must beat (or match) the fixed-fleet DRL
//! twin on energy-per-job at equal latency.
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! let suite = Suite::builder("elastic")
//!     .topologies([Topology::paper(4)])
//!     .workloads([WorkloadSpec::paper().with_total_jobs(150)])
//!     .elastics_with_baseline([ElasticSpec::threshold()])
//!     .policies([PolicySpec::round_robin()])
//!     .seeds([1])
//!     .build();
//!
//! let run = SuiteRunner::new().run(&suite)?;
//! let report = run.report();
//! // The autoscaled cell rode next to its fixed-fleet twin...
//! assert_eq!(report.cells[1].elastic.as_deref(), Some("threshold"));
//! // ...and both report their fleet-size columns.
//! let fixed = report.cells[0].fleet_size.as_ref().unwrap();
//! assert_eq!((fixed.min, fixed.max), (4, 4));
//! assert!(report.cells[1].fleet_size.is_some());
//! # Ok::<(), String>(())
//! ```
//!
//! # Real-trace replay
//!
//! [`scenario::WorkloadSpec::RealTrace`] swaps a cell's synthetic
//! generator for an on-disk trace — Google `task_events` or Alibaba
//! `batch_task`, behind [`hierdrl_trace::source::TraceSource`]. The runner
//! parses the file once per run, trusts its demand columns only while the
//! parser's `demand_defaulted` fraction stays under the cell's gate
//! (falling back to seeded synthetic demands over the file's arrival
//! process otherwise), and reports a [`report::TraceProvenance`] block on
//! every real cell. On the drift axis
//! ([`scenario::DriftSpec::real_segments`]), the trace splits at
//! wall-clock weeks so the online-vs-frozen ablation runs against the
//! trace's own regime changes. [`presets::realtrace`] grids all of it over
//! the committed fixtures; see the "real-trace backends" section of
//! `crates/exp/README.md`.
//!
//! ```
//! use hierdrl_exp::prelude::*;
//!
//! let fixture = concat!(
//!     env!("CARGO_MANIFEST_DIR"),
//!     "/../trace/tests/fixtures/google_task_events.csv"
//! );
//! let suite = Suite::builder("replay")
//!     .topologies([Topology::paper(4)])
//!     .workloads([WorkloadSpec::real_trace(
//!         "real-google",
//!         fixture,
//!         TraceFormat::GoogleTaskEvents,
//!     )])
//!     .policies([PolicySpec::round_robin()])
//!     .seeds([1])
//!     .build();
//!
//! let run = SuiteRunner::new().run(&suite)?;
//! let report = run.report();
//! let trace = report.cells[0].trace.as_ref().unwrap();
//! assert_eq!((trace.rows, trace.jobs_kept), (381, 120));
//! assert!(!trace.synthetic_demand, "fixture demands stay under the gate");
//! # Ok::<(), String>(())
//! ```
//!
//! # Paper presets
//!
//! The grids behind the paper's artifacts are exposed as one-liners —
//! `presets::table1`, `presets::fig8`, `presets::fig9`, `presets::fig10`,
//! `presets::ablation_dqn`, `presets::calibrate` — each parameterized by a
//! [`presets::Scale`] so the same grid runs at paper scale or as a smoke
//! test. The bench binaries are thin wrappers over these.
//!
//! ```
//! use hierdrl_exp::presets::{self, Scale};
//!
//! let suite = presets::table1(Scale::quick());
//! // (2 cluster sizes + big/little + rate-step drift + threshold elastic)
//! // x 3 systems
//! assert_eq!(suite.len(), 15);
//! ```
//!
//! # Raw scale
//!
//! The [`scale`] module is the regime the suite layer deliberately does
//! not cover: single cells at the paper's pitched warehouse scale
//! (10⁵ servers, 10⁶ streamed jobs) with memory bounded by the fleet, not
//! the trace — streamed arrivals, lazy `O(1)` fleet accounting, no
//! per-job retention, and a per-cell peak-RSS reading
//! ([`report::peak_rss_bytes`]) that the CI perf gate guards alongside
//! throughput.

#![forbid(unsafe_code)]

pub mod cli;
pub mod presets;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod suite;

/// Convenient glob-import of the orchestration layer's main types.
pub mod prelude {
    pub use crate::cli::SweepArgs;
    pub use crate::presets;
    pub use crate::report::{
        BenchReport, BenchSegment, BenchShard, CellMetrics, CellReport, CellTiming, ExpectationRow,
        FleetSize, SegmentReport, ShardReport, SuiteReport, TraceProvenance,
    };
    pub use crate::runner::{CellRun, SegmentRun, ShardRun, SuiteRun, SuiteRunner};
    pub use crate::scale::{ScaleCellRun, ScaleSpec};
    pub use crate::scenario::{
        AutoscalePolicy, DriftSpec, ElasticSchedule, ElasticSpec, FaultShape, FaultSpec,
        JobsBudget, PolicySpec, Pretrain, Scenario, Topology, WorkloadSpec,
    };
    pub use crate::suite::{Expectation, Suite, SuiteBuilder};
    pub use hierdrl_core::hierarchical::{AllocatorKind, PowerKind};
    pub use hierdrl_sim::router::RouterPolicy;
    pub use hierdrl_trace::drift::SegmentShift;
    pub use hierdrl_trace::source::TraceFormat;
}
