//! Canonical suite outputs: a deterministic [`SuiteReport`] (safe to
//! byte-compare across serial and parallel executions) and a separate
//! [`BenchReport`] carrying wall-clock timing, which is inherently
//! non-deterministic and therefore kept out of the canonical report.

use hierdrl_core::allocator::DrlStats;
use hierdrl_core::runner::ExperimentResult;
use serde::{Deserialize, Serialize};

/// Paper-facing metrics extracted from one cell's run (the Table I columns
/// plus the Fig. 10 per-job coordinates and fleet power behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Accumulated energy, kWh (Table I column 1).
    pub energy_kwh: f64,
    /// Accumulated latency, 1e6 s (Table I column 2).
    pub latency_mega_s: f64,
    /// Average power, W (Table I column 3).
    pub average_power_w: f64,
    /// Average latency per job, s (Fig. 10 y-axis).
    pub mean_latency_s: f64,
    /// Average energy per job, J (Fig. 10 x-axis).
    pub energy_per_job_j: f64,
    /// Mean fraction of time servers spent asleep.
    pub sleep_fraction: f64,
    /// Total sleep → wake transitions across the fleet.
    pub wake_transitions: u64,
    /// Simulated span, hours.
    pub span_hours: f64,
}

impl CellMetrics {
    /// Extracts the metrics from a runner result.
    pub fn from_result(result: &ExperimentResult) -> Self {
        Self {
            jobs_completed: result.outcome.totals.jobs_completed,
            energy_kwh: result.energy_kwh(),
            latency_mega_s: result.latency_mega_s(),
            average_power_w: result.average_power_w(),
            mean_latency_s: result.mean_latency_s(),
            energy_per_job_j: result.energy_per_job_j(),
            sleep_fraction: result.fleet.sleep_fraction,
            wake_transitions: result.fleet.total_wake_transitions,
            span_hours: result.outcome.end_time.as_hours(),
        }
    }
}

/// The scheduled fleet-size envelope of one cell: constant at the topology
/// size for fixed fleets; for elastic cells, the lowered membership
/// trajectory — summed across shards on their shared clock, span-weighted
/// across drift segments. A pure function of the scenario, so the column
/// is safe in the canonical byte-comparable report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSize {
    /// Smallest scheduled live-server count.
    pub min: usize,
    /// Largest scheduled live-server count.
    pub max: usize,
    /// Time-weighted mean scheduled live-server count.
    pub mean: f64,
}

impl FleetSize {
    /// The fixed-fleet envelope: every column equals the topology size.
    pub fn fixed(servers: usize) -> Self {
        Self {
            min: servers,
            max: servers,
            mean: servers as f64,
        }
    }
}

/// One segment's row of a concept-drift cell: which shift the segment ran
/// and the metrics of carrying the learners through it, in drift order.
/// `drl` snapshots the global tier's *cumulative* statistics at segment
/// end, so consecutive rows show online training continuing (or, in the
/// frozen ablation, stopping) across segment boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// Segment index in drift order.
    pub segment: usize,
    /// The segment's workload shift label (e.g. `rate-x2`).
    pub shift: String,
    /// The segment's own extracted metrics.
    pub metrics: CellMetrics,
    /// Cumulative global-tier learner statistics at segment end, for
    /// learned policies.
    pub drl: Option<DrlStats>,
}

/// One cluster's row of a multi-cluster cell: its share of the routed
/// stream and its own metrics, in shard order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index (position of the cluster in the topology).
    pub cluster: usize,
    /// Servers in this cluster.
    pub servers: usize,
    /// Jobs the front-end router assigned to this cluster.
    pub jobs_routed: u64,
    /// The cluster's own extracted metrics.
    pub metrics: CellMetrics,
    /// The cluster's global-tier learner statistics, for learned policies.
    pub drl: Option<DrlStats>,
}

/// Provenance of a real-trace cell's evaluation stream: where the jobs
/// came from and what the parser kept, dropped, and defaulted on the way
/// (`None` on synthetic cells). Every counter is a deterministic function
/// of the trace file, so the block is safe to embed in the canonical
/// byte-comparable report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProvenance {
    /// Source label (`<format>:<path>`).
    pub source: String,
    /// Trace format name (`google` or `alibaba`).
    pub format: String,
    /// Raw rows read from the file.
    pub rows: u64,
    /// Jobs that survived parsing and filtering.
    pub jobs_kept: u64,
    /// Tasks dropped: incomplete lifecycles, non-positive durations, and
    /// jobs outside the duration window, combined.
    pub jobs_dropped: u64,
    /// Kept jobs whose demand columns were missing/unparsable and fell
    /// back to the parser's floor value.
    pub demand_defaulted: u64,
    /// Whether the defaulted fraction tripped the cell's demand gate, so
    /// the run replaced *all* file demands with seeded synthetic demands
    /// (keeping the file's arrival process).
    pub synthetic_demand: bool,
}

/// One cell of a [`SuiteReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Scenario id (`topology/workload[@drift][%fault]/policy/s<seed>`).
    pub id: String,
    /// Topology name.
    pub topology: String,
    /// Total cluster size `M` (summed across clusters when sharded).
    pub servers: usize,
    /// Aggregate fleet CPU capacity in unit-server equivalents (equals
    /// `servers` for homogeneous fleets).
    pub capacity_total: f64,
    /// Per-server capacity skew: max/min CPU capacity across the fleet
    /// (`1.0` = homogeneous, `2.0` = a 2x big/little tier).
    pub capacity_skew: f64,
    /// Workload name.
    pub workload: String,
    /// Fault-schedule name (`None` for fault-free cells).
    #[serde(default)]
    pub fault: Option<String>,
    /// Elastic-schedule name (`None` for fixed-fleet cells).
    #[serde(default)]
    pub elastic: Option<String>,
    /// Scheduled fleet-size envelope (`None` only in reports written
    /// before the elastic axis existed; fresh runs always populate it,
    /// fixed fleets included).
    #[serde(default)]
    pub fleet_size: Option<FleetSize>,
    /// Policy name.
    pub policy: String,
    /// The cell's base seed.
    pub seed: u64,
    /// Extracted metrics (the fleet-level aggregate when sharded).
    pub metrics: CellMetrics,
    /// Jobs requeued by server crashes (each surviving job exactly once
    /// per crash it lived through; `0` for fault-free cells).
    #[serde(default)]
    pub jobs_requeued: u64,
    /// Global-tier learner statistics, for learned policies.
    pub drl: Option<DrlStats>,
    /// Per-segment rows in drift order (`None` for non-drift cells).
    pub segments: Option<Vec<SegmentReport>>,
    /// Per-cluster rows in shard order (`None` for single-cluster cells).
    pub clusters: Option<Vec<ShardReport>>,
    /// Real-trace provenance (`None` for synthetic cells and for reports
    /// written before the real-trace backends existed).
    #[serde(default)]
    pub trace: Option<TraceProvenance>,
}

/// One evaluated [`Expectation`](crate::suite::Expectation): the pass/fail
/// row the runner appends to both the canonical report and the bench
/// artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectationRow {
    /// The expectation's label.
    pub name: String,
    /// Whether the check held.
    pub passed: bool,
    /// Human-readable evidence: the numbers behind the verdict, or what
    /// failed to match.
    pub detail: String,
}

/// The canonical, fully-deterministic result of a suite run. Cells appear
/// in suite (builder) order regardless of execution schedule, and the JSON
/// rendering is canonical, so serial and parallel runs of the same suite
/// produce byte-identical reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Suite name.
    pub suite: String,
    /// Per-cell results in suite order.
    pub cells: Vec<CellReport>,
    /// Evaluated expectations, in suite declaration order (empty for
    /// suites without expectations).
    #[serde(default)]
    pub expectations: Vec<ExpectationRow>,
}

impl SuiteReport {
    /// Canonical compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("suite report serializes")
    }

    /// Indented JSON for humans.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("suite report serializes")
    }
}

/// Wall-clock timing of one cell (kept out of [`SuiteReport`] so the
/// canonical report stays deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Cell wall-clock, seconds.
    pub wall_s: f64,
    /// Simulated jobs completed per wall-clock second.
    pub jobs_per_s: f64,
}

/// One cluster's timing row of a sharded [`BenchCell`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchShard {
    /// Shard index.
    pub cluster: usize,
    /// Servers in this cluster.
    pub servers: usize,
    /// Jobs the cluster completed.
    pub jobs: u64,
    /// Shard wall-clock, seconds.
    pub wall_s: f64,
}

/// One segment's timing row of a drift [`BenchCell`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSegment {
    /// Segment index in drift order.
    pub segment: usize,
    /// The segment's workload shift label.
    pub shift: String,
    /// Jobs the segment completed.
    pub jobs: u64,
    /// Segment wall-clock, seconds.
    pub wall_s: f64,
}

/// One cell of a [`BenchReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCell {
    /// Scenario id.
    pub id: String,
    /// Jobs completed.
    pub jobs: u64,
    /// Per-server capacity skew of the cell's fleet (`1.0` = homogeneous).
    pub capacity_skew: f64,
    /// Scheduled fleet-size envelope (`None` only in artifacts written
    /// before the elastic axis existed; fresh runs always populate it).
    #[serde(default)]
    pub fleet_size: Option<FleetSize>,
    /// Cell wall-clock, seconds.
    pub wall_s: f64,
    /// Simulated jobs per wall-clock second.
    pub jobs_per_s: f64,
    /// Per-segment timing rows in drift order (`None` for non-drift
    /// cells).
    pub segments: Option<Vec<BenchSegment>>,
    /// Per-cluster timing rows in shard order (`None` for single-cluster
    /// cells).
    pub clusters: Option<Vec<BenchShard>>,
    /// Process peak-RSS snapshot (bytes) taken right after the cell
    /// finished, for cells run *sequentially* by a memory-gated harness
    /// (the `scale` bin). `VmHWM` is a process-wide monotone high-water
    /// mark, so within one process each cell's snapshot includes every
    /// earlier cell's footprint; `None` for cells of parallel suite runs,
    /// where a per-cell figure would be meaningless.
    #[serde(default)]
    pub peak_rss_bytes: Option<u64>,
    /// Real-trace provenance (`None` for synthetic cells and for artifacts
    /// written before the real-trace backends existed).
    #[serde(default)]
    pub trace: Option<TraceProvenance>,
}

/// Machine-readable performance artifact of a suite run, for tracking the
/// runner's throughput trajectory across changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Suite name.
    pub suite: String,
    /// Worker threads the runner used.
    pub threads: usize,
    /// Number of cells.
    pub cells_total: usize,
    /// End-to-end suite wall-clock, seconds (includes trace generation and
    /// pre-training).
    pub total_wall_s: f64,
    /// Sum of per-cell wall-clocks, seconds (> `total_wall_s` under
    /// parallel execution).
    pub cell_wall_s_sum: f64,
    /// Total simulated jobs across cells.
    pub jobs_total: u64,
    /// Aggregate throughput: total jobs / total wall-clock.
    pub jobs_per_s: f64,
    /// Distinct evaluation/pre-training traces materialized.
    pub traces_materialized: u64,
    /// Trace-cache hits (cells that reused a shared trace).
    pub trace_cache_hits: u64,
    /// Process-wide peak RSS (bytes, from `VmHWM`) at the end of the run;
    /// `None` where the kernel interface is unavailable (non-Linux).
    #[serde(default)]
    pub peak_rss_bytes: Option<u64>,
    /// Evaluated suite expectations (duplicated from the canonical report
    /// so CI can gate on the committed bench artifact alone; empty for
    /// suites without expectations).
    #[serde(default)]
    pub expectations: Vec<ExpectationRow>,
    /// Per-cell timing, in suite order.
    pub cells: Vec<BenchCell>,
}

impl BenchReport {
    /// Indented JSON for the checked-in artifact.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serializes")
    }
}

/// The process's peak resident-set size in bytes, read from the `VmHWM`
/// line of `/proc/self/status` — the kernel's high-water mark of physical
/// memory use since process start (or the last peak reset). Monotone
/// non-decreasing over the process lifetime, which is exactly what a
/// memory *gate* wants: a raw-scale cell whose working set spiked cannot
/// hide the spike by freeing afterwards.
///
/// Returns `None` when the interface is unavailable (non-Linux platforms)
/// or unparsable, so callers degrade to "no memory data" rather than
/// failing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`.
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_a_plausible_value_on_linux() {
        // This suite only runs on Linux in CI; tolerate None elsewhere.
        if let Some(bytes) = peak_rss_bytes() {
            // Any running test binary has touched at least 100 KiB and
            // (sanity bound) less than 1 TiB.
            assert!(bytes > 100 * 1024, "implausibly small peak RSS {bytes}");
            assert!(bytes < 1 << 40, "implausibly large peak RSS {bytes}");
        }
    }

    #[test]
    fn bench_report_round_trips_without_rss_fields() {
        // Committed baselines predate the peak-RSS column; they must keep
        // deserializing (serde default = None).
        let legacy = r#"{
            "suite": "table1", "threads": 1, "cells_total": 1,
            "total_wall_s": 1.0, "cell_wall_s_sum": 1.0, "jobs_total": 10,
            "jobs_per_s": 10.0, "traces_materialized": 1, "trace_cache_hits": 0,
            "cells": [{
                "id": "a/b/c/s1", "jobs": 10, "capacity_skew": 1.0,
                "wall_s": 1.0, "jobs_per_s": 10.0,
                "segments": null, "clusters": null
            }]
        }"#;
        let report: BenchReport = serde_json::from_str(legacy).expect("legacy artifact parses");
        assert_eq!(report.peak_rss_bytes, None);
        assert_eq!(report.cells[0].peak_rss_bytes, None);
        assert_eq!(report.cells[0].trace, None);
        assert_eq!(report.cells[0].fleet_size, None);
        assert!(report.expectations.is_empty());
        let back: BenchReport = serde_json::from_str(&report.to_json_pretty()).expect("round trip");
        assert_eq!(report, back);
    }

    #[test]
    fn cell_report_round_trips_without_chaos_fields() {
        // Pre-chaos reports carry neither the fault column nor the requeue
        // counter nor suite expectations; they must keep deserializing.
        let legacy = r#"{
            "suite": "demo",
            "cells": [{
                "id": "a/b/c/s1", "topology": "a", "servers": 2,
                "capacity_total": 2.0, "capacity_skew": 1.0,
                "workload": "b", "policy": "c", "seed": 1,
                "metrics": {
                    "jobs_completed": 10, "energy_kwh": 1.0,
                    "latency_mega_s": 0.1, "average_power_w": 100.0,
                    "mean_latency_s": 3.0, "energy_per_job_j": 5.0,
                    "sleep_fraction": 0.2, "wake_transitions": 4,
                    "span_hours": 2.0
                },
                "drl": null, "segments": null, "clusters": null
            }]
        }"#;
        let report: SuiteReport = serde_json::from_str(legacy).expect("legacy report parses");
        assert_eq!(report.cells[0].fault, None);
        assert_eq!(report.cells[0].elastic, None);
        assert_eq!(report.cells[0].fleet_size, None);
        assert_eq!(report.cells[0].jobs_requeued, 0);
        assert_eq!(report.cells[0].trace, None);
        assert!(report.expectations.is_empty());
        let back: SuiteReport = serde_json::from_str(&report.to_json()).expect("round trip");
        assert_eq!(report, back);
    }
}
