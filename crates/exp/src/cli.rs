//! Shared command-line parsing for the bench binaries.
//!
//! Every binary accepts the same flags:
//!
//! - `--m <M>` — base cluster size;
//! - `--jobs <N>` — evaluation job count;
//! - `--quick` — smoke scale (`M = 10`, 5,000 jobs);
//! - `--threads <T>` — suite worker threads (default: all cores);
//! - `--out <PATH>` — where to write the timing artifact (binaries that
//!   emit one);
//! - `--merge <PATH>` — an existing bench artifact to merge rows into
//!   instead of writing a standalone one (the `scale` bin);
//! - `--clusters <C1,C2,...>` — cluster-counts axis for sharded presets;
//! - `--ms <M1,M2,...>` — cluster-size axis for sweep presets;
//! - `--rates <F1,F2,...>` — arrival-rate factor axis for sweep presets;
//! - `--drifts <D1,D2,...>` — drift-shape axis for the drift preset
//!   (names from `presets::DRIFT_NAMES`);
//! - `--faults <F1,F2,...>` — fault-schedule axis for the chaos preset
//!   (names from `presets::FAULT_NAMES`);
//! - `--elastics <E1,E2,...>` — autoscaler axis for the elastic preset
//!   (names from `presets::ELASTIC_NAMES`);
//! - `--trace <PATH>` — an on-disk trace file for the realtrace preset
//!   (default: both committed fixtures);
//! - `--format <google|alibaba>` — the `--trace` file's format (names
//!   from `TraceFormat::from_name`; default `google`).

use crate::presets::Scale;
use crate::runner::SuiteRunner;
use hierdrl_trace::source::TraceFormat;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct SweepArgs {
    /// `--m` override.
    pub m: Option<usize>,
    /// `--jobs` override.
    pub jobs: Option<u64>,
    /// `--quick` smoke scale.
    pub quick: bool,
    /// `--threads` override.
    pub threads: Option<usize>,
    /// `--out` artifact path.
    pub out: Option<String>,
    /// `--merge` path of an existing bench artifact to merge rows into
    /// (the `scale` bin folds its cells into the suite artifact in place).
    pub merge: Option<String>,
    /// `--clusters` override (comma-separated cluster counts for sharded
    /// presets).
    pub clusters: Option<Vec<usize>>,
    /// `--ms` override (comma-separated cluster sizes for sweep presets).
    pub ms: Option<Vec<usize>>,
    /// `--rates` override (comma-separated arrival-rate factors for sweep
    /// presets).
    pub rates: Option<Vec<f64>>,
    /// `--drifts` override (comma-separated drift-shape names for the
    /// drift preset).
    pub drifts: Option<Vec<String>>,
    /// `--faults` override (comma-separated fault-schedule names for the
    /// chaos preset).
    pub faults: Option<Vec<String>>,
    /// `--elastics` override (comma-separated autoscaler names for the
    /// elastic preset).
    pub elastics: Option<Vec<String>>,
    /// `--trace` override (path of an on-disk trace for the realtrace
    /// preset).
    pub trace: Option<String>,
    /// `--format` override (the `--trace` file's [`TraceFormat`]).
    pub format: Option<TraceFormat>,
}

impl SweepArgs {
    /// Parses `std::env::args()`, ignoring unknown flags with a warning.
    pub fn from_env() -> Self {
        // lint:allow(ambient-entropy): CLI argv parsing for bin targets, not sim state
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = SweepArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let mut take = |what: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("{what} expects a value"))
            };
            match arg.as_str() {
                "--m" => out.m = Some(take("--m").parse().expect("--m expects an integer")),
                "--jobs" => {
                    out.jobs = Some(take("--jobs").parse().expect("--jobs expects an integer"));
                }
                "--threads" => {
                    out.threads = Some(
                        take("--threads")
                            .parse()
                            .expect("--threads expects an integer"),
                    );
                }
                "--out" => out.out = Some(take("--out")),
                "--merge" => out.merge = Some(take("--merge")),
                "--clusters" => {
                    out.clusters = Some(
                        take("--clusters")
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .expect("--clusters expects comma-separated integers")
                            })
                            .collect(),
                    );
                }
                "--ms" => {
                    out.ms = Some(
                        take("--ms")
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .expect("--ms expects comma-separated integers")
                            })
                            .collect(),
                    );
                }
                "--rates" => {
                    out.rates = Some(
                        take("--rates")
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .expect("--rates expects comma-separated numbers")
                            })
                            .collect(),
                    );
                }
                "--drifts" => {
                    out.drifts = Some(
                        take("--drifts")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--faults" => {
                    out.faults = Some(
                        take("--faults")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--elastics" => {
                    out.elastics = Some(
                        take("--elastics")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--trace" => out.trace = Some(take("--trace")),
                "--format" => {
                    let name = take("--format");
                    out.format = Some(TraceFormat::from_name(name.trim()).unwrap_or_else(|| {
                        panic!("--format expects google or alibaba, got {name:?}")
                    }));
                }
                "--quick" => out.quick = true,
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        out
    }

    /// Resolves the scale, starting from a preset's default.
    pub fn scale(&self, default_scale: Scale) -> Scale {
        let mut scale = default_scale;
        if let Some(m) = self.m {
            scale.m = m;
        }
        if let Some(jobs) = self.jobs {
            scale.jobs = jobs;
        }
        if self.quick {
            scale.m = scale.m.min(10);
            scale.jobs = scale.jobs.min(5_000);
        }
        scale
    }

    /// The cluster-counts axis, starting from a preset's default.
    pub fn cluster_counts(&self, default_counts: &[usize]) -> Vec<usize> {
        self.clusters
            .clone()
            .unwrap_or_else(|| default_counts.to_vec())
    }

    /// The cluster-size axis, starting from a preset's default.
    pub fn cluster_sizes(&self, default_ms: &[usize]) -> Vec<usize> {
        self.ms.clone().unwrap_or_else(|| default_ms.to_vec())
    }

    /// The arrival-rate factor axis, starting from a preset's default.
    pub fn rate_factors(&self, default_rates: &[f64]) -> Vec<f64> {
        self.rates.clone().unwrap_or_else(|| default_rates.to_vec())
    }

    /// The drift-shape axis, starting from a preset's default.
    pub fn drift_names(&self, default_names: &[&str]) -> Vec<String> {
        self.drifts
            .clone()
            .unwrap_or_else(|| default_names.iter().map(|s| s.to_string()).collect())
    }

    /// The fault-schedule axis, starting from a preset's default.
    pub fn fault_names(&self, default_names: &[&str]) -> Vec<String> {
        self.faults
            .clone()
            .unwrap_or_else(|| default_names.iter().map(|s| s.to_string()).collect())
    }

    /// The autoscaler axis, starting from a preset's default.
    pub fn elastic_names(&self, default_names: &[&str]) -> Vec<String> {
        self.elastics
            .clone()
            .unwrap_or_else(|| default_names.iter().map(|s| s.to_string()).collect())
    }

    /// A runner honouring `--threads`.
    pub fn runner(&self) -> SuiteRunner {
        match self.threads {
            Some(n) => SuiteRunner::new().with_threads(n),
            None => SuiteRunner::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> SweepArgs {
        SweepArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_override_defaults() {
        let args = parse(&["--m", "12", "--jobs", "4000", "--threads", "3"]);
        let scale = args.scale(Scale::paper(30));
        assert_eq!((scale.m, scale.jobs), (12, 4000));
        assert_eq!(args.runner().threads(), 3);
    }

    #[test]
    fn quick_caps_scale() {
        let scale = parse(&["--quick"]).scale(Scale::paper(40));
        assert_eq!((scale.m, scale.jobs), (10, 5_000));
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let args = parse(&["--frobnicate", "--jobs", "100"]);
        assert_eq!(args.jobs, Some(100));
    }

    #[test]
    fn merge_takes_a_path() {
        let args = parse(&["--merge", "/tmp/BENCH_suite.json"]);
        assert_eq!(args.merge.as_deref(), Some("/tmp/BENCH_suite.json"));
        assert_eq!(parse(&[]).merge, None);
    }

    #[test]
    fn clusters_parses_comma_list() {
        let args = parse(&["--clusters", "2, 4,8"]);
        assert_eq!(args.cluster_counts(&[2]), vec![2, 4, 8]);
        assert_eq!(parse(&[]).cluster_counts(&[2, 4]), vec![2, 4]);
    }

    #[test]
    fn sweep_axes_parse_comma_lists() {
        let args = parse(&["--ms", "10,20", "--rates", "0.5, 1.0,1.5"]);
        assert_eq!(args.cluster_sizes(&[30]), vec![10, 20]);
        assert_eq!(args.rate_factors(&[1.0]), vec![0.5, 1.0, 1.5]);
        assert_eq!(parse(&[]).cluster_sizes(&[30]), vec![30]);
        assert_eq!(parse(&[]).rate_factors(&[1.0]), vec![1.0]);
    }

    #[test]
    fn drifts_parse_comma_list() {
        let args = parse(&["--drifts", "rate-step, pattern-flip"]);
        assert_eq!(
            args.drift_names(&["stationary"]),
            vec!["rate-step".to_string(), "pattern-flip".to_string()]
        );
        assert_eq!(
            parse(&[]).drift_names(&["stationary", "rate-step"]),
            vec!["stationary".to_string(), "rate-step".to_string()]
        );
    }

    #[test]
    fn trace_and_format_parse() {
        let args = parse(&["--trace", "a/b.csv", "--format", "alibaba"]);
        assert_eq!(args.trace.as_deref(), Some("a/b.csv"));
        assert_eq!(args.format, Some(TraceFormat::AlibabaBatchTask));
        assert_eq!(parse(&[]).format, None);
    }

    #[test]
    fn elastics_parse_comma_list() {
        let args = parse(&["--elastics", "threshold, learned"]);
        assert_eq!(
            args.elastic_names(&["fixed"]),
            vec!["threshold".to_string(), "learned".to_string()]
        );
        assert_eq!(
            parse(&[]).elastic_names(&["fixed", "threshold"]),
            vec!["fixed".to_string(), "threshold".to_string()]
        );
    }

    #[test]
    fn faults_parse_comma_list() {
        let args = parse(&["--faults", "crash-storm, cap-window"]);
        assert_eq!(
            args.fault_names(&["no-fault"]),
            vec!["crash-storm".to_string(), "cap-window".to_string()]
        );
        assert_eq!(
            parse(&[]).fault_names(&["no-fault", "crash-storm"]),
            vec!["no-fault".to_string(), "crash-storm".to_string()]
        );
    }
}
