//! Parallel, deterministic execution of a [`Suite`].
//!
//! Every cell is self-contained: its trace, pre-training rollouts, and
//! learner RNGs all derive from the scenario's own seed, so cells can run
//! on any thread in any order and still produce identical results. Shared
//! state is limited to two caches keyed by *content fingerprints* — the
//! trace cache (identical workload specs materialize once) and a
//! pre-training cache (identical (cluster, segments, config) pre-train
//! once) — and cached values are themselves deterministic functions of
//! their keys, so caching never changes results, only wall-clock.
//!
//! # Multi-cluster cells
//!
//! A [`Topology::MultiCluster`](crate::scenario::Topology) cell adds a
//! second level of parallelism *inside* the cell: the evaluation stream is
//! split by the deterministic front-end [`Router`], each cluster (shard)
//! simulates on its own worker thread with learner seeds derived from the
//! cell seed via per-shard SplitMix64 sub-seeds, and shard results merge
//! in shard order — so the sharded run is byte-identical to the same cell
//! executed serially. One semantic difference from single-cluster cells:
//! `max_jobs` truncates the *arrival stream* before routing (independent
//! shards cannot coordinate a global completion count deterministically),
//! whereas a single cluster stops after `max_jobs` completions.

use crate::report::{
    BenchCell, BenchReport, BenchSegment, BenchShard, CellMetrics, CellReport, CellTiming,
    ExpectationRow, FleetSize, SegmentReport, ShardReport, SuiteReport, TraceProvenance,
};
use crate::scenario::{mix_seed, ElasticSchedule, ElasticSpec, PolicySpec, Pretrain, Scenario};
use crate::suite::{Expectation, Suite};
use hierdrl_core::allocator::{DrlAllocator, DrlAllocatorConfig, DrlSnapshot, DrlStats};
use hierdrl_core::dpm::{DpmSnapshot, RlPowerConfig, RlPowerManager};
use hierdrl_core::runner::{
    aggregate_shards, concat_segments, pretrain_pair, ExperimentResult, SegmentedExperiment,
    ShardResult,
};
use hierdrl_sim::cluster::{Allocator, PowerManager};
use hierdrl_sim::config::ClusterConfig;
use hierdrl_sim::events::FleetOp;
use hierdrl_sim::policies::{FixedTimeoutPower, SleepImmediatelyPower};
use hierdrl_sim::router::Router;
use hierdrl_trace::google::ParseStats;
use hierdrl_trace::materialize::{TraceCache, TraceSpec};
use hierdrl_trace::source::{with_synthetic_demands, TraceSource};
use hierdrl_trace::trace::Trace;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A pre-trained pair of tiers, memoized across cells that share cluster,
/// rollout segments, and learner configuration (e.g. the Fig. 10 sweep,
/// where every operating point restores the same global tier).
#[derive(Clone)]
struct Pretrained {
    drl: DrlSnapshot,
    dpm: Option<DpmSnapshot>,
}

type PretrainSlot = Arc<Mutex<Option<Pretrained>>>;

// Key-ordered maps for both memoization caches: lookups don't care, but
// key order means any future iteration (diagnostics, eviction sweeps) is
// deterministic by construction, and the nondet-iteration lint stays quiet.
#[derive(Default)]
struct PretrainCache {
    slots: Mutex<BTreeMap<String, PretrainSlot>>,
}

impl PretrainCache {
    fn get_or_train(
        &self,
        key: &str,
        train: impl FnOnce() -> Result<Pretrained, String>,
    ) -> Result<Pretrained, String> {
        let slot = {
            let mut slots = self.slots.lock().expect("pretrain cache map lock");
            slots
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(None)))
                .clone()
        };
        let mut entry = slot.lock().expect("pretrain cache slot lock");
        if let Some(pair) = entry.as_ref() {
            return Ok(pair.clone());
        }
        let pair = train()?;
        *entry = Some(pair.clone());
        Ok(pair)
    }
}

/// Shared per-run context handed to every cell.
struct RunContext {
    traces: Arc<TraceCache>,
    pretrained: PretrainCache,
    /// Parsed on-disk traces, memoized by source label (`format:path`) so
    /// every cell replaying the same file parses it once. Parsing is a
    /// pure function of the file, so the cache never changes results.
    real_traces: Mutex<BTreeMap<String, Arc<(Trace, ParseStats)>>>,
}

impl RunContext {
    /// Loads (or returns the memoized) parse of a real-trace source.
    fn load_real(&self, source: &dyn TraceSource) -> Result<Arc<(Trace, ParseStats)>, String> {
        let label = source.label();
        if let Some(hit) = self
            .real_traces
            .lock()
            .expect("real-trace cache lock")
            .get(&label)
        {
            return Ok(hit.clone());
        }
        // Parse outside the lock; racing cells parse the same bytes and
        // the first insert wins, so results stay deterministic either way.
        let parsed = Arc::new(source.load()?);
        Ok(self
            .real_traces
            .lock()
            .expect("real-trace cache lock")
            .entry(label)
            .or_insert(parsed)
            .clone())
    }
}

/// The outcome of one segment of a concept-drift cell (or of one shard of
/// such a cell): the learners were carried into it from the previous
/// segment and, unless the cell is a frozen ablation, kept training online
/// through it.
#[derive(Debug, Clone)]
pub struct SegmentRun {
    /// Segment index in drift order.
    pub segment: usize,
    /// The segment's workload shift label.
    pub shift: String,
    /// Jobs this execution unit received for the segment.
    pub jobs_routed: u64,
    /// The segment's own experiment result.
    pub result: ExperimentResult,
    /// Cumulative global-tier statistics at segment end, for learned
    /// policies.
    pub drl_stats: Option<DrlStats>,
    /// Segment wall-clock, seconds (max across shards at fleet level).
    pub wall_s: f64,
}

/// The outcome of one shard (cluster) of a multi-cluster cell.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard's routed jobs and simulation result (the concatenation
    /// across segments for drift cells).
    pub shard: ShardResult,
    /// The shard's global-tier statistics, for learned policies.
    pub drl_stats: Option<DrlStats>,
    /// The shard's per-segment outcomes in drift order (empty for
    /// non-drift cells).
    pub segments: Vec<SegmentRun>,
    /// Shard wall-clock, seconds.
    pub wall_s: f64,
}

/// The outcome of one cell: the full runner result plus learner statistics
/// and timing.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Full experiment result (including sample curves for Figs. 8/9).
    /// For multi-cluster cells this is the fleet-level aggregate; for
    /// drift cells, the time-sequential concatenation of the segments.
    pub result: ExperimentResult,
    /// Global-tier statistics, for learned policies. For multi-cluster
    /// cells, counters sum across shards and losses are decision-weighted.
    pub drl_stats: Option<DrlStats>,
    /// Per-segment outcomes in drift order (empty for non-drift cells;
    /// the fleet-level aggregate per segment when sharded).
    pub segments: Vec<SegmentRun>,
    /// Per-cluster outcomes in shard order (empty for single-cluster
    /// cells).
    pub shards: Vec<ShardRun>,
    /// The cell's scheduled fleet-size envelope: constant at the topology
    /// size for fixed fleets, the lowered membership trajectory (summed
    /// across shards, span-weighted across segments) for elastic cells.
    pub fleet_size: FleetSize,
    /// Real-trace provenance (`None` for synthetic cells).
    pub provenance: Option<TraceProvenance>,
    /// Wall-clock timing.
    pub timing: CellTiming,
}

/// The outcome of a whole suite: per-cell results in suite order plus
/// aggregate timing.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Suite name.
    pub suite: String,
    /// Per-cell outcomes, in suite (builder) order.
    pub cells: Vec<CellRun>,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock, seconds.
    pub total_wall_s: f64,
    /// Distinct traces materialized (evaluation + pre-training).
    pub traces_materialized: u64,
    /// Trace-cache hits.
    pub trace_cache_hits: u64,
    /// The suite's evaluated [`Expectation`]s, in declaration order
    /// (empty for suites without expectations). Every row is a pure
    /// function of the deterministic cell results, so it is safe to
    /// include in the canonical report.
    pub expectations: Vec<ExpectationRow>,
}

/// Maps one cell outcome to its canonical report row — shared by
/// [`SuiteRun::report`] and the determinism-pin expectation (which
/// byte-compares this row against a serial re-run's).
fn cell_report(c: &CellRun) -> CellReport {
    CellReport {
        id: c.scenario.id.clone(),
        topology: c.scenario.topology.name().to_string(),
        servers: c.scenario.topology.servers(),
        capacity_total: c.scenario.topology.total_capacity(),
        capacity_skew: c.scenario.topology.capacity_skew(),
        workload: c.scenario.workload.name().to_string(),
        fault: c.scenario.fault.as_ref().map(|f| f.name.clone()),
        elastic: c.scenario.elastic.as_ref().map(|e| e.name.clone()),
        fleet_size: Some(c.fleet_size),
        policy: c.scenario.policy.name(),
        seed: c.scenario.seed,
        metrics: CellMetrics::from_result(&c.result),
        jobs_requeued: c.result.outcome.totals.jobs_requeued,
        drl: c.drl_stats,
        segments: (!c.segments.is_empty()).then(|| {
            c.segments
                .iter()
                .map(|s| SegmentReport {
                    segment: s.segment,
                    shift: s.shift.clone(),
                    metrics: CellMetrics::from_result(&s.result),
                    drl: s.drl_stats,
                })
                .collect()
        }),
        clusters: (!c.shards.is_empty()).then(|| {
            c.shards
                .iter()
                .map(|s| ShardReport {
                    cluster: s.shard.cluster,
                    servers: s.shard.servers,
                    jobs_routed: s.shard.jobs_routed,
                    metrics: CellMetrics::from_result(&s.shard.result),
                    drl: s.drl_stats,
                })
                .collect()
        }),
        trace: c.provenance.clone(),
    }
}

impl SuiteRun {
    /// The canonical deterministic report (no timing).
    pub fn report(&self) -> SuiteReport {
        SuiteReport {
            suite: self.suite.clone(),
            cells: self.cells.iter().map(cell_report).collect(),
            expectations: self.expectations.clone(),
        }
    }

    /// The timing artifact (non-deterministic by nature).
    pub fn bench_report(&self) -> BenchReport {
        let jobs_total: u64 = self
            .cells
            .iter()
            .map(|c| c.result.outcome.totals.jobs_completed)
            .sum();
        BenchReport {
            suite: self.suite.clone(),
            threads: self.threads,
            cells_total: self.cells.len(),
            total_wall_s: self.total_wall_s,
            cell_wall_s_sum: self.cells.iter().map(|c| c.timing.wall_s).sum(),
            jobs_total,
            jobs_per_s: jobs_total as f64 / self.total_wall_s.max(1e-9),
            traces_materialized: self.traces_materialized,
            trace_cache_hits: self.trace_cache_hits,
            peak_rss_bytes: crate::report::peak_rss_bytes(),
            expectations: self.expectations.clone(),
            cells: self
                .cells
                .iter()
                .map(|c| BenchCell {
                    id: c.scenario.id.clone(),
                    jobs: c.result.outcome.totals.jobs_completed,
                    capacity_skew: c.scenario.topology.capacity_skew(),
                    fleet_size: Some(c.fleet_size),
                    wall_s: c.timing.wall_s,
                    jobs_per_s: c.timing.jobs_per_s,
                    segments: (!c.segments.is_empty()).then(|| {
                        c.segments
                            .iter()
                            .map(|s| BenchSegment {
                                segment: s.segment,
                                shift: s.shift.clone(),
                                jobs: s.result.outcome.totals.jobs_completed,
                                wall_s: s.wall_s,
                            })
                            .collect()
                    }),
                    clusters: (!c.shards.is_empty()).then(|| {
                        c.shards
                            .iter()
                            .map(|s| BenchShard {
                                cluster: s.shard.cluster,
                                servers: s.shard.servers,
                                jobs: s.shard.result.outcome.totals.jobs_completed,
                                wall_s: s.wall_s,
                            })
                            .collect()
                    }),
                    // Suite cells run in parallel; a per-cell snapshot of
                    // the process-wide high-water mark would be noise.
                    peak_rss_bytes: None,
                    trace: c.provenance.clone(),
                })
                .collect(),
        }
    }

    /// The cells' experiment results, in suite order.
    pub fn results(&self) -> Vec<&ExperimentResult> {
        self.cells.iter().map(|c| &c.result).collect()
    }

    /// The first cell whose policy name matches, if any.
    pub fn find_policy(&self, policy: &str) -> Option<&CellRun> {
        self.cells
            .iter()
            .find(|c| c.scenario.policy.name() == policy)
    }
}

/// Executes suites, in parallel by default.
///
/// # Examples
///
/// ```
/// use hierdrl_exp::prelude::*;
///
/// let suite = Suite::builder("doc")
///     .topologies([Topology::paper(4)])
///     .workloads([WorkloadSpec::paper().with_total_jobs(150)])
///     .policies([PolicySpec::round_robin()])
///     .seeds([1, 2])
///     .build();
///
/// let run = SuiteRunner::new().run(&suite)?;
/// assert_eq!(run.cells.len(), 2);
/// // Same grid, serial execution: byte-identical canonical report.
/// let serial = SuiteRunner::serial().run(&suite)?;
/// assert_eq!(run.report().to_json(), serial.report().to_json());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SuiteRunner {
    threads: Option<usize>,
    traces: Option<Arc<TraceCache>>,
}

impl SuiteRunner {
    /// A runner using every available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-threaded runner (reference execution for determinism
    /// checks).
    pub fn serial() -> Self {
        Self {
            threads: Some(1),
            traces: None,
        }
    }

    /// Pins the worker-thread count (`0`/unset = machine default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Shares an external trace cache with the run, so callers can reuse
    /// the traces it materializes (or pre-seed them) without regenerating.
    #[must_use]
    pub fn with_trace_cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.traces = Some(cache);
        self
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        match self.threads {
            Some(n) => n,
            None => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Runs every cell of `suite`, returning per-cell outcomes in suite
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's error, tagged with its scenario id.
    pub fn run(&self, suite: &Suite) -> Result<SuiteRun, String> {
        let started = Instant::now(); // lint:allow(wall-clock): timing feeds BenchReport only, never SuiteReport
        let ctx = RunContext {
            traces: self.traces.clone().unwrap_or_default(),
            pretrained: PretrainCache::default(),
            real_traces: Mutex::new(BTreeMap::new()),
        };
        // An external cache may carry earlier activity; report deltas.
        let (hits_before, misses_before) = (ctx.traces.hits(), ctx.traces.misses());
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads())
            .build()
            .map_err(|e| format!("thread pool: {e}"))?;
        let outcomes: Vec<Result<CellRun, String>> = pool.install(|| {
            suite
                .scenarios
                .par_iter()
                .map(|scenario| {
                    run_cell(scenario, &ctx).map_err(|e| format!("scenario {}: {e}", scenario.id))
                })
                .collect()
        });
        let cells = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
        let mut run = SuiteRun {
            suite: suite.name.clone(),
            cells,
            threads: self.threads(),
            total_wall_s: 0.0,
            traces_materialized: ctx.traces.misses() - misses_before,
            trace_cache_hits: ctx.traces.hits() - hits_before,
            expectations: Vec::new(),
        };
        run.expectations = evaluate_expectations(&suite.expectations, &run);
        run.total_wall_s = started.elapsed().as_secs_f64();
        Ok(run)
    }
}

/// Evaluates a suite's declarative [`Expectation`]s against the finished
/// grid, in declaration order. Every check is a pure function of the
/// deterministic cell results — including the determinism pin, whose
/// nested serial re-run is itself deterministic — so the rows are safe to
/// embed in the canonical byte-comparable report.
fn evaluate_expectations(expectations: &[Expectation], run: &SuiteRun) -> Vec<ExpectationRow> {
    expectations
        .iter()
        .map(|e| {
            let (passed, detail) = match e {
                Expectation::MetricBound {
                    cell_contains,
                    metric,
                    min,
                    max,
                    ..
                } => check_metric_bound(run, cell_contains, metric, *min, *max),
                Expectation::JobConservation { .. } => check_job_conservation(run),
                Expectation::DeterminismPin { cell_contains, .. } => {
                    check_determinism_pin(run, cell_contains)
                }
                Expectation::GracefulDegradation {
                    fault,
                    policy,
                    baseline,
                    tolerance,
                    ..
                } => check_graceful_degradation(run, fault, policy, baseline, *tolerance),
                Expectation::AutoscaleEconomics {
                    elastic,
                    policy,
                    energy_tolerance,
                    latency_slack,
                    ..
                } => check_autoscale_economics(
                    run,
                    elastic,
                    policy,
                    *energy_tolerance,
                    *latency_slack,
                ),
            };
            ExpectationRow {
                name: e.name().to_string(),
                passed,
                detail,
            }
        })
        .collect()
}

/// Looks up one of the documented metric keys on a cell.
fn metric_value(cell: &CellRun, key: &str) -> Option<f64> {
    let m = CellMetrics::from_result(&cell.result);
    Some(match key {
        "jobs_completed" => m.jobs_completed as f64,
        "energy_kwh" => m.energy_kwh,
        "mean_latency_s" => m.mean_latency_s,
        "average_power_w" => m.average_power_w,
        "span_hours" => m.span_hours,
        "jobs_requeued" => cell.result.outcome.totals.jobs_requeued as f64,
        _ => return None,
    })
}

fn check_metric_bound(
    run: &SuiteRun,
    cell_contains: &str,
    metric: &str,
    min: f64,
    max: f64,
) -> (bool, String) {
    let matched: Vec<&CellRun> = run
        .cells
        .iter()
        .filter(|c| c.scenario.id.contains(cell_contains))
        .collect();
    if matched.is_empty() {
        // An expectation that silently matches nothing would rot unnoticed.
        return (false, format!("no cell id contains {cell_contains:?}"));
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for cell in &matched {
        let Some(v) = metric_value(cell, metric) else {
            return (false, format!("unknown metric {metric:?}"));
        };
        if !(v.is_finite() && v >= min && v <= max) {
            return (
                false,
                format!(
                    "{}: {metric} = {v} outside [{min}, {max}]",
                    cell.scenario.id
                ),
            );
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (
        true,
        format!(
            "{} cells: {metric} in [{lo:.4}, {hi:.4}] within [{min}, {max}]",
            matched.len()
        ),
    )
}

fn check_job_conservation(run: &SuiteRun) -> (bool, String) {
    let (mut jobs, mut requeued) = (0u64, 0u64);
    for cell in &run.cells {
        let t = &cell.result.outcome.totals;
        // `max_jobs` cells stop mid-stream by design; conservation is only
        // checkable where the whole stream drains.
        if cell.scenario.max_jobs.is_none() && t.jobs_completed != t.jobs_arrived {
            return (
                false,
                format!(
                    "{}: {} arrived vs {} completed",
                    cell.scenario.id, t.jobs_arrived, t.jobs_completed
                ),
            );
        }
        jobs += t.jobs_completed;
        requeued += t.jobs_requeued;
    }
    (
        true,
        format!(
            "{jobs} jobs completed exactly once across {} cells ({requeued} crash requeues)",
            run.cells.len()
        ),
    )
}

fn check_determinism_pin(run: &SuiteRun, cell_contains: &str) -> (bool, String) {
    let matched: Vec<&CellRun> = run
        .cells
        .iter()
        .filter(|c| c.scenario.id.contains(cell_contains))
        .collect();
    if matched.is_empty() {
        return (false, format!("no cell id contains {cell_contains:?}"));
    }
    for cell in &matched {
        // A fresh one-cell suite, re-run serially from the scenario alone.
        // It carries no expectations, so the nested run cannot recurse.
        let pin = Suite {
            name: "determinism-pin".into(),
            scenarios: vec![cell.scenario.clone()],
            expectations: Vec::new(),
        };
        let rerun = match SuiteRunner::serial().run(&pin) {
            Ok(rerun) => rerun,
            Err(e) => return (false, format!("{}: re-run failed: {e}", cell.scenario.id)),
        };
        let original = serde_json::to_string(&cell_report(cell)).expect("cell report serializes");
        let repeated =
            serde_json::to_string(&cell_report(&rerun.cells[0])).expect("cell report serializes");
        if original != repeated {
            return (
                false,
                format!(
                    "{}: serial re-run diverged from suite run",
                    cell.scenario.id
                ),
            );
        }
    }
    (
        true,
        format!("{} cells byte-identical under serial re-run", matched.len()),
    )
}

/// The cell's Eqn.-4 objective: time-averaged normalized fleet power +
/// per-server queueing + overload, under the paper's balanced weights. The
/// scale-free cost both sides of a graceful-degradation comparison share;
/// normalization uses the *nominal* fleet (crashed capacity does not
/// shrink the denominator, so losing servers cannot flatter a policy).
fn eqn4_objective(cell: &CellRun) -> f64 {
    let m = cell.scenario.topology.servers() as f64;
    let peak: f64 = cell
        .scenario
        .topology
        .clusters()
        .iter()
        .map(|c| c.num_servers as f64 * c.power.peak_watts)
        .sum();
    let w = hierdrl_core::reward::RewardWeights::balanced();
    let t = &cell.result.outcome.totals;
    let span = t.time_s.max(1e-9);
    w.power * (t.energy_joules / span / peak.max(1e-9))
        + w.vms * (t.queue_time_integral / span / m)
        + w.reliability * (t.overload_integral / span)
}

/// Mean (across seeds) of `eqn4(faulted) / eqn4(no-fault twin)` for one
/// policy under one fault schedule. The twin is the cell whose id differs
/// only by the `%fault` component.
fn degradation_ratio(run: &SuiteRun, policy: &str, fault: &str) -> Result<f64, String> {
    let faulted: Vec<&CellRun> = run
        .cells
        .iter()
        .filter(|c| {
            c.scenario.policy.name() == policy
                && c.scenario.fault.as_ref().is_some_and(|f| f.name == fault)
        })
        .collect();
    if faulted.is_empty() {
        return Err(format!("no {policy} cell under %{fault}"));
    }
    let mut ratios = Vec::with_capacity(faulted.len());
    for cell in faulted {
        let twin_id = cell.scenario.id.replace(&format!("%{fault}"), "");
        let twin = run
            .cells
            .iter()
            .find(|c| c.scenario.id == twin_id)
            .ok_or_else(|| format!("no fault-free twin {twin_id}"))?;
        ratios.push(eqn4_objective(cell) / eqn4_objective(twin).max(1e-12));
    }
    Ok(ratios.iter().sum::<f64>() / ratios.len() as f64)
}

fn check_graceful_degradation(
    run: &SuiteRun,
    fault: &str,
    policy: &str,
    baseline: &str,
    tolerance: f64,
) -> (bool, String) {
    let (p, b) = match (
        degradation_ratio(run, policy, fault),
        degradation_ratio(run, baseline, fault),
    ) {
        (Ok(p), Ok(b)) => (p, b),
        (Err(e), _) | (_, Err(e)) => return (false, e),
    };
    (
        p <= b * tolerance,
        format!(
            "{policy} degrades {p:.3}x vs {baseline} {b:.3}x under %{fault} (tolerance {tolerance})"
        ),
    )
}

/// Autoscaling must pay for itself: `~elastic` cells of `policy` must land
/// at or below `energy_tolerance`× the fixed-fleet twin's energy-per-job
/// while keeping mean latency within `latency_slack`× of the twin. Both
/// ratios are means across every matching cell (i.e. across seeds).
fn check_autoscale_economics(
    run: &SuiteRun,
    elastic: &str,
    policy: &str,
    energy_tolerance: f64,
    latency_slack: f64,
) -> (bool, String) {
    let scaled: Vec<&CellRun> = run
        .cells
        .iter()
        .filter(|c| {
            c.scenario.policy.name() == policy
                && c.scenario
                    .elastic
                    .as_ref()
                    .is_some_and(|e| e.name == elastic)
        })
        .collect();
    if scaled.is_empty() {
        return (false, format!("no {policy} cell under ~{elastic}"));
    }
    let mut energy = Vec::with_capacity(scaled.len());
    let mut latency = Vec::with_capacity(scaled.len());
    for cell in scaled {
        let twin_id = cell.scenario.id.replace(&format!("~{elastic}"), "");
        let Some(twin) = run.cells.iter().find(|c| c.scenario.id == twin_id) else {
            return (false, format!("no fixed-fleet twin {twin_id}"));
        };
        energy.push(cell.result.energy_per_job_j() / twin.result.energy_per_job_j().max(1e-12));
        latency.push(cell.result.mean_latency_s() / twin.result.mean_latency_s().max(1e-12));
    }
    let e = energy.iter().sum::<f64>() / energy.len() as f64;
    let l = latency.iter().sum::<f64>() / latency.len() as f64;
    (
        e <= energy_tolerance && l <= latency_slack,
        format!(
            "~{elastic} {policy} energy/job {e:.3}x (tolerance {energy_tolerance}), \
             latency {l:.3}x (slack {latency_slack}) vs fixed fleet"
        ),
    )
}

/// The fully-derived learner inputs of one execution unit — a whole
/// single-cluster cell, or one shard of a multi-cluster cell. Both levels
/// run through the same policy executor; only the seed derivation differs.
struct LearnerSeeds {
    policy_seed: u64,
    /// Seed of the unit's fault schedule (cell- or shard-derived, so
    /// sharded chaos cells stay byte-identical to serial execution).
    fault_seed: u64,
    /// The unit's share of the evaluation stream (sizes pre-training).
    eval_jobs: u64,
    drl: Option<DrlAllocatorConfig>,
    dpm: Option<RlPowerConfig>,
    /// The local-tier config included in the pre-train cache key (`None`
    /// keeps Fig.-10-style cells sharing one pre-trained global tier).
    co_dpm: Option<RlPowerConfig>,
}

impl LearnerSeeds {
    /// Cell-level derivation (single-cluster path).
    fn for_cell(scenario: &Scenario) -> Self {
        Self {
            policy_seed: scenario.policy_seed(),
            fault_seed: scenario.fault_seed(),
            eval_jobs: scenario.workload.jobs_for(scenario.topology.servers()),
            drl: scenario.drl_config(),
            dpm: scenario.dpm_config(),
            co_dpm: scenario.co_pretrain_dpm_config(),
        }
    }

    /// Shard-level derivation (multi-cluster path): everything re-derives
    /// from the shard's SplitMix64 sub-seed, and the pre-training budget
    /// prorates to the shard's share of the fleet.
    fn for_shard(scenario: &Scenario, shard: usize) -> Self {
        let shard_m = scenario.topology.clusters()[shard].num_servers;
        Self {
            policy_seed: scenario.shard_policy_seed(shard),
            fault_seed: scenario.shard_fault_seed(shard),
            eval_jobs: scenario
                .workload
                .shard_jobs_for(shard_m, scenario.topology.servers()),
            drl: scenario.shard_drl_config(shard),
            dpm: scenario.shard_dpm_config(shard),
            co_dpm: scenario.shard_co_pretrain_dpm_config(shard),
        }
    }
}

/// Memoized pre-training of one (cluster, segments, learner configs)
/// problem. Identical inputs must produce identical learners, so the JSON
/// of all inputs is a sound cache key.
fn pretrain(
    ctx: &RunContext,
    cluster: &ClusterConfig,
    segments: &[TraceSpec],
    drl_config: &DrlAllocatorConfig,
    dpm_config: &Option<RlPowerConfig>,
) -> Result<Pretrained, String> {
    let payload = (cluster, segments, drl_config, dpm_config);
    let key = serde_json::to_string(&payload).expect("pretrain key serializes");
    ctx.pretrained.get_or_train(&key, || {
        let traces: Vec<Trace> = segments
            .iter()
            .map(|spec| ctx.traces.get(spec).map(|t| (*t).clone()))
            .collect::<Result<_, _>>()?;
        // Size the allocator at the slot ceiling (`== num_servers` for
        // fixed fleets): elastic cells must encode joined slots, and the
        // zero-padded group encoding keeps narrower views bitwise stable.
        let mut allocator = DrlAllocator::new(
            cluster.effective_max(),
            cluster.resource_dims,
            drl_config.clone(),
        );
        match dpm_config {
            Some(dpm_config) => {
                let mut dpm = RlPowerManager::for_cluster(cluster, dpm_config.clone());
                pretrain_pair(&mut allocator, &mut dpm, cluster, &traces)?;
                Ok(Pretrained {
                    drl: allocator.snapshot(),
                    dpm: Some(dpm.snapshot()),
                })
            }
            None => {
                // The ad-hoc local behaviour, so learned values reflect
                // wake penalties (Section VII-A).
                pretrain_pair(&mut allocator, &mut SleepImmediatelyPower, cluster, &traces)?;
                Ok(Pretrained {
                    drl: allocator.snapshot(),
                    dpm: None,
                })
            }
        }
    })
}

/// A built global tier: static policies stay behind the trait object,
/// while learned ones keep their concrete type so statistics capture and
/// freezing (the no-continued-training drift ablation) stay reachable.
enum BuiltAllocator {
    Static(Box<dyn Allocator>),
    Learned(Box<DrlAllocator>),
}

impl BuiltAllocator {
    fn as_dyn(&mut self) -> &mut dyn Allocator {
        match self {
            BuiltAllocator::Static(a) => a.as_mut(),
            BuiltAllocator::Learned(a) => a.as_mut(),
        }
    }

    fn stats(&self) -> Option<DrlStats> {
        match self {
            BuiltAllocator::Static(_) => None,
            BuiltAllocator::Learned(a) => Some(*a.stats()),
        }
    }

    fn set_learning(&mut self, on: bool) {
        if let BuiltAllocator::Learned(a) = self {
            a.set_learning(on);
        }
    }
}

/// A built local tier, mirroring [`BuiltAllocator`].
enum BuiltPower {
    Static(Box<dyn PowerManager>),
    Learned(Box<RlPowerManager>),
}

impl BuiltPower {
    fn as_dyn(&mut self) -> &mut dyn PowerManager {
        match self {
            BuiltPower::Static(p) => p.as_mut(),
            BuiltPower::Learned(p) => p.as_mut(),
        }
    }

    fn set_learning(&mut self, on: bool) {
        if let BuiltPower::Learned(p) = self {
            p.set_learning(on);
        }
    }
}

/// Builds one execution unit's control planes, pre-training learned tiers
/// first (memoized). Shared by the single-cluster path and every shard of
/// a multi-cluster cell.
fn build_policy(
    scenario: &Scenario,
    ctx: &RunContext,
    cluster: &ClusterConfig,
    seeds: &LearnerSeeds,
) -> Result<(BuiltAllocator, BuiltPower), String> {
    let segments = |budget: &Pretrain| {
        budget.segment_specs(
            cluster.num_servers,
            seeds.eval_jobs,
            &scenario.workload,
            seeds.policy_seed,
        )
    };
    match &scenario.policy {
        PolicySpec::Static {
            allocator, power, ..
        } => Ok((
            BuiltAllocator::Static(allocator.build(cluster.num_servers, cluster.resource_dims)),
            BuiltPower::Static(power.build(cluster)),
        )),
        PolicySpec::DrlOnly { pretrain: budget }
        | PolicySpec::DrlVariant {
            pretrain: budget, ..
        } => {
            let drl = seeds.drl.as_ref().expect("learned policy has DRL config");
            let trained = pretrain(ctx, cluster, &segments(budget), drl, &None)?;
            Ok((
                BuiltAllocator::Learned(Box::new(DrlAllocator::from_snapshot(trained.drl))),
                BuiltPower::Static(Box::new(SleepImmediatelyPower)),
            ))
        }
        PolicySpec::DrlTimeout {
            timeout_s,
            pretrain: budget,
        } => {
            let drl = seeds.drl.as_ref().expect("learned policy has DRL config");
            let trained = pretrain(ctx, cluster, &segments(budget), drl, &None)?;
            Ok((
                BuiltAllocator::Learned(Box::new(DrlAllocator::from_snapshot(trained.drl))),
                BuiltPower::Static(Box::new(FixedTimeoutPower::new(*timeout_s))),
            ))
        }
        PolicySpec::Hierarchical {
            pretrain: budget,
            co_pretrain,
            ..
        } => {
            let drl = seeds.drl.as_ref().expect("learned policy has DRL config");
            let trained = pretrain(ctx, cluster, &segments(budget), drl, &seeds.co_dpm)?;
            let dpm_config = seeds.dpm.clone().expect("hierarchical has a DPM config");
            // Co-pre-trained cells restore the trained local tier; Fig. 10
            // cells start it fresh so every operating point shares the one
            // pre-trained global tier.
            let dpm = match trained.dpm {
                Some(snapshot) if *co_pretrain => {
                    RlPowerManager::from_snapshot_for_cluster(cluster, snapshot)
                }
                _ => RlPowerManager::for_cluster(cluster, dpm_config),
            };
            Ok((
                BuiltAllocator::Learned(Box::new(DrlAllocator::from_snapshot(trained.drl))),
                BuiltPower::Learned(Box::new(dpm)),
            ))
        }
    }
}

/// Runs one execution unit's policy pair over its evaluation segments (one
/// segment for non-drift cells), carrying the learners across segment
/// boundaries with online training continuing — or frozen after
/// pre-training for ablation cells. Returns the whole-run result (the
/// time-sequential concatenation for drift cells), the final learner
/// statistics, and the per-segment outcomes (empty for non-drift cells).
fn execute_policy(
    scenario: &Scenario,
    ctx: &RunContext,
    cluster: &ClusterConfig,
    name: &str,
    seeds: &LearnerSeeds,
    segment_traces: &[&Trace],
    elastic: &[ElasticSchedule],
) -> Result<(ExperimentResult, Option<DrlStats>, Vec<SegmentRun>), String> {
    // Elastic cells run (and pre-train) against the headroom config, so
    // mid-run joins have slots and learners size their padded width from
    // the same `effective_max`. Pre-training itself stays membership-free,
    // like it stays fault-free: schedules apply only at evaluation.
    let headroom = scenario
        .elastic
        .as_ref()
        .map(|spec| spec.cluster_with_headroom(cluster));
    let cluster = headroom.as_ref().unwrap_or(cluster);
    let (mut allocator, mut power) = build_policy(scenario, ctx, cluster, seeds)?;
    if !scenario.online_learning() {
        allocator.set_learning(false);
        power.set_learning(false);
    }
    // Lower the chaos axis (if any) to per-segment fleet events against
    // *this unit's* cluster size and segment spans, from the unit's own
    // fault seed. Pre-training above stays fault-free — the paper's
    // learners train on healthy fleets and meet faults only at evaluation
    // (and pre-train cache keys stay stable across the fault axis).
    let mut fleet_events: Vec<Vec<(f64, FleetOp)>> = match &scenario.fault {
        None => Vec::new(),
        Some(fault) => segment_traces
            .iter()
            .map(|trace| match trace.jobs().last() {
                // An empty segment (possible for a small shard's share)
                // has no span to schedule against — run it fault-free.
                None => Vec::new(),
                Some(last) => fault.lower(
                    seeds.fault_seed,
                    cluster.num_servers,
                    last.arrival.as_secs(),
                ),
            })
            .collect(),
    };
    // Merge the pre-lowered elastic schedules (the caller lowers them —
    // against the cell stream for the single path, the shard's capacity
    // share for shards) behind the fault events: a stable sort keeps fault
    // ops ahead of membership ops at equal times, deterministically.
    if !elastic.is_empty() {
        if fleet_events.is_empty() {
            fleet_events = vec![Vec::new(); segment_traces.len()];
        }
        for (events, schedule) in fleet_events.iter_mut().zip(elastic) {
            events.extend(schedule.events.iter().cloned());
            events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("event times are finite"));
        }
    }
    let experiment = SegmentedExperiment::new(name, cluster, segment_traces)
        .with_limit(scenario.run_limit())
        .with_fleet_events(&fleet_events);
    let mut segments: Vec<SegmentRun> = Vec::with_capacity(segment_traces.len());
    for (i, trace) in segment_traces.iter().enumerate() {
        let started = Instant::now(); // lint:allow(wall-clock): timing feeds BenchReport only, never SuiteReport
        let result = experiment.run_segment(i, allocator.as_dyn(), power.as_dyn())?;
        segments.push(SegmentRun {
            segment: i,
            shift: scenario.segment_label(i),
            jobs_routed: trace.len() as u64,
            drl_stats: allocator.stats(),
            wall_s: started.elapsed().as_secs_f64(),
            result,
        });
    }
    let drl_stats = allocator.stats();
    // Gate on the drift axis, not the segment count: a (degenerate but
    // valid) single-segment drift cell must still report its segment row,
    // while non-drift cells stay on the historical single-result shape.
    if scenario.drift.is_none() {
        let result = segments.remove(0).result;
        Ok((result, drl_stats, Vec::new()))
    } else {
        let refs: Vec<&ExperimentResult> = segments.iter().map(|s| &s.result).collect();
        let overall = concat_segments(name, &refs);
        Ok((overall, drl_stats, segments))
    }
}

/// Simulates one shard (cluster) of a multi-cluster cell on its routed
/// per-segment sub-streams. Fully self-contained: learner seeds derive
/// from the shard's own sub-seed, so shards can run on any thread in any
/// order; within the shard, segments run sequentially under the carried
/// learners.
fn run_shard(
    scenario: &Scenario,
    ctx: &RunContext,
    shard: usize,
    cluster: &ClusterConfig,
    segment_jobs: Vec<Vec<hierdrl_sim::job::Job>>,
    elastic: &[ElasticSchedule],
    name: &str,
) -> Result<ShardRun, String> {
    let started = Instant::now(); // lint:allow(wall-clock): timing feeds BenchReport only, never SuiteReport
    let jobs_routed: u64 = segment_jobs.iter().map(|j| j.len() as u64).sum();
    // The streams were truncated before routing; each shard drains its
    // share of each segment.
    let traces: Vec<Trace> = segment_jobs
        .into_iter()
        .enumerate()
        .map(|(i, jobs)| {
            Trace::new(jobs).map_err(|e| format!("shard {shard} segment {i} trace: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let refs: Vec<&Trace> = traces.iter().collect();
    let seeds = LearnerSeeds::for_shard(scenario, shard);
    let (result, drl_stats, segments) =
        execute_policy(scenario, ctx, cluster, name, &seeds, &refs, elastic)?;
    Ok(ShardRun {
        shard: ShardResult {
            cluster: shard,
            servers: cluster.num_servers,
            jobs_routed,
            result,
        },
        drl_stats,
        segments,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Fleet-level view of per-shard learner statistics: counters sum, losses
/// weight by decision count, and the autoencoder flag ANDs across shards.
fn merge_drl_stats(per_shard: impl IntoIterator<Item = Option<DrlStats>>) -> Option<DrlStats> {
    let stats: Vec<DrlStats> = per_shard.into_iter().flatten().collect();
    if stats.is_empty() {
        return None;
    }
    let decisions: u64 = stats.iter().map(|s| s.decisions).sum();
    let weight = |s: &DrlStats| s.decisions as f64 / decisions.max(1) as f64;
    Some(DrlStats {
        decisions,
        train_steps: stats.iter().map(|s| s.train_steps).sum(),
        loss_ema: stats.iter().map(|s| weight(s) * s.loss_ema).sum(),
        autoencoder_trained: stats.iter().all(|s| s.autoencoder_trained),
        autoencoder_loss: stats.iter().map(|s| weight(s) * s.autoencoder_loss).sum(),
    })
}

/// Resolves a cell's evaluation segments. Synthetic workloads materialize
/// their deterministic generator recipes through the shared [`TraceCache`];
/// real-trace workloads parse their file (memoized per source), apply the
/// configured job cap, pass the [`ParseStats`] demand gate — falling back
/// to seeded synthetic demands over the file's arrival process when too
/// many demand columns were defaulted — and, on the drift axis, split into
/// wall-clock windows so segment boundaries follow the *trace's* regime
/// changes rather than a generator schedule.
fn resolve_cell_traces(
    scenario: &Scenario,
    ctx: &RunContext,
) -> Result<(Vec<Arc<Trace>>, Option<TraceProvenance>), String> {
    let Some(source) = scenario.workload.real_source() else {
        let traces = scenario
            .segment_trace_specs()
            .iter()
            .map(|spec| ctx.traces.get(spec))
            .collect::<Result<_, _>>()?;
        return Ok((traces, None));
    };
    let parsed = ctx.load_real(&source)?;
    let (full, stats) = (&parsed.0, parsed.1);
    // The workload's job cap truncates the arrival stream itself — before
    // gating and segmentation — so capped cells agree between the
    // single-cluster and sharded execution paths.
    let cap = scenario.workload.jobs_for(scenario.topology.servers()) as usize;
    let mut trace = if cap > 0 && cap < full.len() {
        Trace::new(full.jobs()[..cap].to_vec())
            .map_err(|e| format!("{}: capped to {cap} jobs: {e}", source.label()))?
    } else {
        (*full).clone()
    };
    // Demand gate: the file's demand columns are only trusted when the
    // defaulted fraction stays under the cell's threshold. Past it, keep
    // the arrival process but re-draw every demand vector from the cell's
    // trace seed (reported in the provenance block, and as a warning row
    // by the real-trace bin).
    let gate = scenario
        .workload
        .demand_gate()
        .expect("real workload has a demand gate");
    let synthetic_demand = stats.demand_defaulted as f64 / stats.jobs_kept.max(1) as f64 > gate;
    if synthetic_demand {
        trace = with_synthetic_demands(&trace, scenario.trace_seed());
    }
    let provenance = TraceProvenance {
        source: source.label(),
        format: source.format.name().to_string(),
        rows: stats.rows as u64,
        jobs_kept: stats.jobs_kept as u64,
        jobs_dropped: (stats.incomplete_dropped
            + stats.nonpositive_duration_dropped
            + stats.duration_filtered) as u64,
        demand_defaulted: stats.demand_defaulted as u64,
        synthetic_demand,
    };
    let traces = if scenario.drift.is_some() {
        trace
            .segments_by_wall_clock(scenario.workload.segment_window_s())
            .into_iter()
            .map(Arc::new)
            .collect()
    } else {
        vec![Arc::new(trace)]
    };
    Ok((traces, Some(provenance)))
}

/// Lowers one execution unit's elastic schedule for one segment: against
/// the segment's arrival span when it has one, degenerating to a fixed
/// fleet for empty segments (mirroring fault lowering).
fn lower_elastic(
    spec: &ElasticSpec,
    elastic_seed: u64,
    cluster: &ClusterConfig,
    jobs: &[hierdrl_sim::job::Job],
    demand_share: f64,
) -> ElasticSchedule {
    match jobs.last() {
        None => ElasticSchedule::fixed(cluster.num_servers),
        Some(last) => spec.lower(
            elastic_seed,
            cluster.num_servers,
            cluster.resource_dims,
            jobs,
            last.arrival.as_secs(),
            demand_share,
        ),
    }
}

/// `(min, max, time-weighted mean)` of the summed scheduled live count
/// across one segment's per-shard schedules (a single-element slice for
/// single-cluster cells), over `[0, end_s]`.
fn combined_size_stats(schedules: &[&ElasticSchedule], end_s: f64) -> (usize, usize, f64) {
    let initial: usize = schedules.iter().map(|s| s.sizes[0].1).sum();
    if end_s <= 0.0 {
        return (initial, initial, initial as f64);
    }
    let mut times: Vec<f64> = vec![0.0];
    for s in schedules {
        times.extend(
            s.sizes
                .iter()
                .skip(1)
                .map(|&(t, _)| t)
                .filter(|&t| t < end_s),
        );
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("schedule times are finite"));
    times.dedup();
    let (mut min, mut max, mut weighted) = (usize::MAX, 0usize, 0.0f64);
    for (i, &t) in times.iter().enumerate() {
        let next = times.get(i + 1).copied().unwrap_or(end_s);
        let n: usize = schedules.iter().map(|s| s.size_at(t)).sum();
        min = min.min(n);
        max = max.max(n);
        weighted += n as f64 * (next - t);
    }
    (min, max, weighted / end_s)
}

/// The cell's fleet-size envelope from its lowered schedules: shards sum
/// on their shared clock within a segment, segments weight by their spans.
/// Fixed-fleet cells (`per_shard` empty) report the constant topology size.
fn fleet_size_for(m_total: usize, per_shard: &[Vec<ElasticSchedule>], spans: &[f64]) -> FleetSize {
    if per_shard.is_empty() {
        return FleetSize::fixed(m_total);
    }
    let (mut min, mut max) = (usize::MAX, 0usize);
    let (mut weighted, mut total_span) = (0.0f64, 0.0f64);
    for (i, &span) in spans.iter().enumerate() {
        let schedules: Vec<&ElasticSchedule> = per_shard.iter().map(|s| &s[i]).collect();
        let (lo, hi, mean) = combined_size_stats(&schedules, span);
        min = min.min(lo);
        max = max.max(hi);
        weighted += mean * span.max(0.0);
        total_span += span.max(0.0);
    }
    if total_span <= 0.0 {
        return FleetSize::fixed(m_total);
    }
    FleetSize {
        min,
        max,
        mean: weighted / total_span,
    }
}

/// Per-segment arrival spans of an execution stream (0 for empty
/// segments), the weights `fleet_size_for` aggregates over.
fn segment_spans<'a>(segments: impl IntoIterator<Item = &'a [hierdrl_sim::job::Job]>) -> Vec<f64> {
    segments
        .into_iter()
        .map(|jobs| jobs.last().map_or(0.0, |j| j.arrival.as_secs()))
        .collect()
}

fn run_cell(scenario: &Scenario, ctx: &RunContext) -> Result<CellRun, String> {
    let started = Instant::now(); // lint:allow(wall-clock): timing feeds BenchReport only, never SuiteReport
    let (mut traces, provenance) = resolve_cell_traces(scenario, ctx)?;
    // Arrival-spike fault shapes extend the evaluation stream itself, so
    // they inject here — before the single/multi-cluster split and before
    // routing — from the *cell-level* fault seed. Both execution paths see
    // the same merged stream, preserving sharded-vs-serial byte-identity.
    if let Some(fault) = scenario.fault.as_ref().filter(|f| f.has_spikes()) {
        let fault_seed = scenario.fault_seed();
        traces = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                let template = trace.jobs();
                let span = template.last().map_or(0.0, |j| j.arrival.as_secs());
                // Per-segment spike sub-stream, disjoint from the shape
                // streams `lower` draws from (0x200 + i vs 0..shapes).
                let spikes =
                    fault.spike_jobs(mix_seed(fault_seed, 0x200 + i as u64), template, span);
                let mut jobs = template.to_vec();
                jobs.extend(spikes);
                Trace::from_unsorted(jobs)
                    .map(Arc::new)
                    .map_err(|e| format!("segment {i} spike merge: {e}"))
            })
            .collect::<Result<_, _>>()?;
    }
    let name = scenario.policy.name();

    let (result, drl_stats, segments, shards, fleet_size) = match &scenario.topology {
        crate::scenario::Topology::Single { cluster, .. } => {
            let refs: Vec<&Trace> = traces.iter().map(Arc::as_ref).collect();
            // Lower the elastic axis (if any) feed-forward from the cell
            // stream: one schedule per segment, from the cell-level
            // elastic seed, seeing the whole offered demand.
            let elastic: Vec<ElasticSchedule> = match &scenario.elastic {
                None => Vec::new(),
                Some(spec) => refs
                    .iter()
                    .map(|t| lower_elastic(spec, scenario.elastic_seed(), cluster, t.jobs(), 1.0))
                    .collect(),
            };
            let fleet_size = if elastic.is_empty() {
                FleetSize::fixed(cluster.num_servers)
            } else {
                let spans = segment_spans(refs.iter().map(|t| t.jobs()));
                fleet_size_for(cluster.num_servers, std::slice::from_ref(&elastic), &spans)
            };
            let seeds = LearnerSeeds::for_cell(scenario);
            let (result, drl_stats, segments) =
                execute_policy(scenario, ctx, cluster, &name, &seeds, &refs, &elastic)?;
            (result, drl_stats, segments, Vec::new(), fleet_size)
        }
        crate::scenario::Topology::MultiCluster {
            clusters, router, ..
        } => {
            // Weigh clusters by aggregate capacity (server count for
            // unit-capacity fleets), so a cluster of two 2x servers
            // outweighs one of three little machines.
            let weights: Vec<f64> = clusters.iter().map(ClusterConfig::routing_weight).collect();
            // `max_jobs` truncates each segment's arrival stream before
            // routing (see module docs).
            let streams: Vec<&[hierdrl_sim::job::Job]> = traces
                .iter()
                .map(|trace| {
                    let jobs = trace.jobs();
                    match scenario.max_jobs {
                        Some(n) => &jobs[..jobs.len().min(n as usize)],
                        None => jobs,
                    }
                })
                .collect();
            // Elastic cells lower every shard's membership trajectory
            // *before* routing, from the cell-level stream scaled by the
            // shard's initial capacity share — feed-forward, so the router
            // can re-derive capacity weights at the scheduled membership
            // boundaries without ever observing live simulation state.
            let elastic_per_shard: Vec<Vec<ElasticSchedule>> = match &scenario.elastic {
                None => Vec::new(),
                Some(spec) => {
                    let total: f64 = weights.iter().sum();
                    (0..clusters.len())
                        .map(|k| {
                            streams
                                .iter()
                                .map(|jobs| {
                                    lower_elastic(
                                        spec,
                                        scenario.shard_elastic_seed(k),
                                        &clusters[k],
                                        jobs,
                                        weights[k] / total,
                                    )
                                })
                                .collect()
                        })
                        .collect()
                }
            };
            let fleet_size = if elastic_per_shard.is_empty() {
                FleetSize::fixed(scenario.topology.servers())
            } else {
                let spans = segment_spans(streams.iter().copied());
                fleet_size_for(scenario.topology.servers(), &elastic_per_shard, &spans)
            };
            // Route every segment independently and deterministically:
            // static capacity weights for fixed fleets; for elastic cells,
            // a piecewise-constant weight timeline that scales each
            // shard's weight with its scheduled live count.
            let mut per_shard: Vec<Vec<Vec<hierdrl_sim::job::Job>>> =
                (0..clusters.len()).map(|_| Vec::new()).collect();
            for (i, stream) in streams.iter().enumerate() {
                let routed = if elastic_per_shard.is_empty() {
                    Router::split(*router, &weights, stream)
                } else {
                    let mut times: Vec<f64> = vec![0.0];
                    for schedules in &elastic_per_shard {
                        times.extend(schedules[i].sizes.iter().skip(1).map(|&(t, _)| t));
                    }
                    times.sort_by(|a, b| a.partial_cmp(b).expect("schedule times are finite"));
                    times.dedup();
                    let epochs: Vec<(f64, Vec<f64>)> = times
                        .iter()
                        .map(|&t| {
                            let w = (0..clusters.len())
                                .map(|k| {
                                    elastic_per_shard[k][i].size_at(t) as f64 * weights[k]
                                        / clusters[k].num_servers as f64
                                })
                                .collect();
                            (t, w)
                        })
                        .collect();
                    Router::split_epochs(*router, &epochs, stream)
                };
                for (k, jobs) in routed.into_iter().enumerate() {
                    per_shard[k].push(jobs);
                }
            }

            // Intra-cell shard parallelism: each cluster simulates on its
            // own worker thread (running its segments sequentially under
            // carried learners); the rayon shim returns results in input
            // (shard) order, so the merge below is schedule-independent.
            let work: Vec<(usize, Vec<Vec<hierdrl_sim::job::Job>>)> =
                per_shard.into_iter().enumerate().collect();
            let outcomes: Vec<Result<ShardRun, String>> = work
                .into_par_iter()
                .map(|(k, segs)| {
                    let elastic: &[ElasticSchedule] =
                        elastic_per_shard.get(k).map_or(&[], Vec::as_slice);
                    run_shard(scenario, ctx, k, &clusters[k], segs, elastic, &name)
                })
                .collect();
            let shards = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;

            // Gate on the drift axis (as in `execute_policy`): even a
            // single-segment drift cell reports its segment row.
            let (result, segments) = if scenario.drift.is_some() {
                // Fleet-level per-segment rows: shards share a clock
                // *within* a segment (aggregate), segments run back to
                // back (concatenate).
                let fleet_segments: Vec<SegmentRun> = (0..traces.len())
                    .map(|i| {
                        let shard_results: Vec<ShardResult> = shards
                            .iter()
                            .map(|s| ShardResult {
                                cluster: s.shard.cluster,
                                servers: s.shard.servers,
                                jobs_routed: s.segments[i].jobs_routed,
                                result: s.segments[i].result.clone(),
                            })
                            .collect();
                        SegmentRun {
                            segment: i,
                            shift: scenario.segment_label(i),
                            jobs_routed: shard_results.iter().map(|s| s.jobs_routed).sum(),
                            drl_stats: merge_drl_stats(
                                shards.iter().map(|s| s.segments[i].drl_stats),
                            ),
                            wall_s: shards
                                .iter()
                                .map(|s| s.segments[i].wall_s)
                                .fold(0.0, f64::max),
                            result: aggregate_shards(&name, &shard_results),
                        }
                    })
                    .collect();
                let refs: Vec<&ExperimentResult> =
                    fleet_segments.iter().map(|s| &s.result).collect();
                (concat_segments(&name, &refs), fleet_segments)
            } else {
                let shard_results: Vec<ShardResult> =
                    shards.iter().map(|s| s.shard.clone()).collect();
                (aggregate_shards(&name, &shard_results), Vec::new())
            };
            let drl_stats = merge_drl_stats(shards.iter().map(|s| s.drl_stats));
            (result, drl_stats, segments, shards, fleet_size)
        }
    };

    let wall_s = started.elapsed().as_secs_f64();
    let jobs = result.outcome.totals.jobs_completed;
    Ok(CellRun {
        scenario: scenario.clone(),
        result,
        drl_stats,
        segments,
        shards,
        fleet_size,
        provenance,
        timing: CellTiming {
            wall_s,
            jobs_per_s: jobs as f64 / wall_s.max(1e-9),
        },
    })
}
