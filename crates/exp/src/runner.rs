//! Parallel, deterministic execution of a [`Suite`].
//!
//! Every cell is self-contained: its trace, pre-training rollouts, and
//! learner RNGs all derive from the scenario's own seed, so cells can run
//! on any thread in any order and still produce identical results. Shared
//! state is limited to two caches keyed by *content fingerprints* — the
//! trace cache (identical workload specs materialize once) and a
//! pre-training cache (identical (cluster, segments, config) pre-train
//! once) — and cached values are themselves deterministic functions of
//! their keys, so caching never changes results, only wall-clock.

use crate::report::{BenchCell, BenchReport, CellMetrics, CellReport, CellTiming, SuiteReport};
use crate::scenario::{PolicySpec, Scenario};
use crate::suite::Suite;
use hierdrl_core::allocator::{DrlAllocator, DrlSnapshot, DrlStats};
use hierdrl_core::dpm::{DpmSnapshot, RlPowerManager};
use hierdrl_core::runner::{pretrain_pair, Experiment, ExperimentResult};
use hierdrl_sim::cluster::PowerManager;
use hierdrl_sim::policies::{FixedTimeoutPower, SleepImmediatelyPower};
use hierdrl_trace::materialize::TraceCache;
use hierdrl_trace::trace::Trace;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A pre-trained pair of tiers, memoized across cells that share cluster,
/// rollout segments, and learner configuration (e.g. the Fig. 10 sweep,
/// where every operating point restores the same global tier).
#[derive(Clone)]
struct Pretrained {
    drl: DrlSnapshot,
    dpm: Option<DpmSnapshot>,
}

type PretrainSlot = Arc<Mutex<Option<Pretrained>>>;

#[derive(Default)]
struct PretrainCache {
    slots: Mutex<HashMap<String, PretrainSlot>>,
}

impl PretrainCache {
    fn get_or_train(
        &self,
        key: &str,
        train: impl FnOnce() -> Result<Pretrained, String>,
    ) -> Result<Pretrained, String> {
        let slot = {
            let mut slots = self.slots.lock().expect("pretrain cache map lock");
            slots
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(None)))
                .clone()
        };
        let mut entry = slot.lock().expect("pretrain cache slot lock");
        if let Some(pair) = entry.as_ref() {
            return Ok(pair.clone());
        }
        let pair = train()?;
        *entry = Some(pair.clone());
        Ok(pair)
    }
}

/// Shared per-run context handed to every cell.
struct RunContext {
    traces: Arc<TraceCache>,
    pretrained: PretrainCache,
}

/// The outcome of one cell: the full runner result plus learner statistics
/// and timing.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Full experiment result (including sample curves for Figs. 8/9).
    pub result: ExperimentResult,
    /// Global-tier statistics, for learned policies.
    pub drl_stats: Option<DrlStats>,
    /// Wall-clock timing.
    pub timing: CellTiming,
}

/// The outcome of a whole suite: per-cell results in suite order plus
/// aggregate timing.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Suite name.
    pub suite: String,
    /// Per-cell outcomes, in suite (builder) order.
    pub cells: Vec<CellRun>,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock, seconds.
    pub total_wall_s: f64,
    /// Distinct traces materialized (evaluation + pre-training).
    pub traces_materialized: u64,
    /// Trace-cache hits.
    pub trace_cache_hits: u64,
}

impl SuiteRun {
    /// The canonical deterministic report (no timing).
    pub fn report(&self) -> SuiteReport {
        SuiteReport {
            suite: self.suite.clone(),
            cells: self
                .cells
                .iter()
                .map(|c| CellReport {
                    id: c.scenario.id.clone(),
                    topology: c.scenario.topology.name.clone(),
                    servers: c.scenario.topology.servers(),
                    workload: c.scenario.workload.name.clone(),
                    policy: c.scenario.policy.name(),
                    seed: c.scenario.seed,
                    metrics: CellMetrics::from_result(&c.result),
                    drl: c.drl_stats,
                })
                .collect(),
        }
    }

    /// The timing artifact (non-deterministic by nature).
    pub fn bench_report(&self) -> BenchReport {
        let jobs_total: u64 = self
            .cells
            .iter()
            .map(|c| c.result.outcome.totals.jobs_completed)
            .sum();
        BenchReport {
            suite: self.suite.clone(),
            threads: self.threads,
            cells_total: self.cells.len(),
            total_wall_s: self.total_wall_s,
            cell_wall_s_sum: self.cells.iter().map(|c| c.timing.wall_s).sum(),
            jobs_total,
            jobs_per_s: jobs_total as f64 / self.total_wall_s.max(1e-9),
            traces_materialized: self.traces_materialized,
            trace_cache_hits: self.trace_cache_hits,
            cells: self
                .cells
                .iter()
                .map(|c| BenchCell {
                    id: c.scenario.id.clone(),
                    jobs: c.result.outcome.totals.jobs_completed,
                    wall_s: c.timing.wall_s,
                    jobs_per_s: c.timing.jobs_per_s,
                })
                .collect(),
        }
    }

    /// The cells' experiment results, in suite order.
    pub fn results(&self) -> Vec<&ExperimentResult> {
        self.cells.iter().map(|c| &c.result).collect()
    }

    /// The first cell whose policy name matches, if any.
    pub fn find_policy(&self, policy: &str) -> Option<&CellRun> {
        self.cells
            .iter()
            .find(|c| c.scenario.policy.name() == policy)
    }
}

/// Executes suites, in parallel by default.
///
/// # Examples
///
/// ```
/// use hierdrl_exp::prelude::*;
///
/// let suite = Suite::builder("doc")
///     .topologies([Topology::paper(4)])
///     .workloads([WorkloadSpec::paper().with_total_jobs(150)])
///     .policies([PolicySpec::round_robin()])
///     .seeds([1, 2])
///     .build();
///
/// let run = SuiteRunner::new().run(&suite)?;
/// assert_eq!(run.cells.len(), 2);
/// // Same grid, serial execution: byte-identical canonical report.
/// let serial = SuiteRunner::serial().run(&suite)?;
/// assert_eq!(run.report().to_json(), serial.report().to_json());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SuiteRunner {
    threads: Option<usize>,
    traces: Option<Arc<TraceCache>>,
}

impl SuiteRunner {
    /// A runner using every available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-threaded runner (reference execution for determinism
    /// checks).
    pub fn serial() -> Self {
        Self {
            threads: Some(1),
            traces: None,
        }
    }

    /// Pins the worker-thread count (`0`/unset = machine default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Shares an external trace cache with the run, so callers can reuse
    /// the traces it materializes (or pre-seed them) without regenerating.
    #[must_use]
    pub fn with_trace_cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.traces = Some(cache);
        self
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        match self.threads {
            Some(n) => n,
            None => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Runs every cell of `suite`, returning per-cell outcomes in suite
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's error, tagged with its scenario id.
    pub fn run(&self, suite: &Suite) -> Result<SuiteRun, String> {
        let started = Instant::now();
        let ctx = RunContext {
            traces: self.traces.clone().unwrap_or_default(),
            pretrained: PretrainCache::default(),
        };
        // An external cache may carry earlier activity; report deltas.
        let (hits_before, misses_before) = (ctx.traces.hits(), ctx.traces.misses());
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads())
            .build()
            .map_err(|e| format!("thread pool: {e}"))?;
        let outcomes: Vec<Result<CellRun, String>> = pool.install(|| {
            suite
                .scenarios
                .par_iter()
                .map(|scenario| {
                    run_cell(scenario, &ctx).map_err(|e| format!("scenario {}: {e}", scenario.id))
                })
                .collect()
        });
        let cells = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(SuiteRun {
            suite: suite.name.clone(),
            cells,
            threads: self.threads(),
            total_wall_s: started.elapsed().as_secs_f64(),
            traces_materialized: ctx.traces.misses() - misses_before,
            trace_cache_hits: ctx.traces.hits() - hits_before,
        })
    }
}

/// Content fingerprint of a pre-training problem: identical inputs must
/// produce identical learners, so the JSON of all inputs is a sound key.
fn pretrain_key<D: Serialize, P: Serialize>(
    scenario: &Scenario,
    segments: &[hierdrl_trace::materialize::TraceSpec],
    drl_config: &D,
    dpm_config: &Option<P>,
) -> String {
    let payload = (&scenario.topology.cluster, segments, drl_config, dpm_config);
    serde_json::to_string(&payload).expect("pretrain key serializes")
}

fn pretrain(
    scenario: &Scenario,
    ctx: &RunContext,
    pretrain_budget: &crate::scenario::Pretrain,
) -> Result<Pretrained, String> {
    let drl_config = scenario
        .drl_config()
        .expect("learned policies have a DRL config");
    let dpm_config = scenario.co_pretrain_dpm_config();
    let segments = pretrain_budget.segment_specs(
        &scenario.topology,
        &scenario.workload,
        scenario.policy_seed(),
    );
    let key = pretrain_key(scenario, &segments, &drl_config, &dpm_config);
    ctx.pretrained.get_or_train(&key, || {
        let cluster = &scenario.topology.cluster;
        let traces: Vec<Trace> = segments
            .iter()
            .map(|spec| ctx.traces.get(spec).map(|t| (*t).clone()))
            .collect::<Result<_, _>>()?;
        let mut allocator = DrlAllocator::new(
            cluster.num_servers,
            cluster.resource_dims,
            drl_config.clone(),
        );
        match &dpm_config {
            Some(dpm_config) => {
                let mut dpm = RlPowerManager::new(cluster.num_servers, dpm_config.clone());
                pretrain_pair(&mut allocator, &mut dpm, cluster, &traces)?;
                Ok(Pretrained {
                    drl: allocator.snapshot(),
                    dpm: Some(dpm.snapshot()),
                })
            }
            None => {
                // The ad-hoc local behaviour, so learned values reflect
                // wake penalties (Section VII-A).
                pretrain_pair(&mut allocator, &mut SleepImmediatelyPower, cluster, &traces)?;
                Ok(Pretrained {
                    drl: allocator.snapshot(),
                    dpm: None,
                })
            }
        }
    })
}

fn run_cell(scenario: &Scenario, ctx: &RunContext) -> Result<CellRun, String> {
    let started = Instant::now();
    let trace = ctx.traces.get(&scenario.trace_spec())?;
    let cluster = &scenario.topology.cluster;
    let name = scenario.policy.name();
    let experiment = Experiment::new(&name, cluster, &trace).with_limit(scenario.run_limit());

    let (result, drl_stats) = match &scenario.policy {
        PolicySpec::Static {
            allocator, power, ..
        } => {
            let mut allocator = allocator.build(cluster.num_servers, cluster.resource_dims);
            let mut power = power.build(cluster.num_servers);
            (experiment.run(allocator.as_mut(), power.as_mut())?, None)
        }
        PolicySpec::DrlOnly { pretrain: budget }
        | PolicySpec::DrlVariant {
            pretrain: budget, ..
        } => {
            let trained = pretrain(scenario, ctx, budget)?;
            let mut allocator = DrlAllocator::from_snapshot(trained.drl);
            let result = experiment.run(&mut allocator, &mut SleepImmediatelyPower)?;
            (result, Some(*allocator.stats()))
        }
        PolicySpec::DrlTimeout {
            timeout_s,
            pretrain: budget,
        } => {
            let trained = pretrain(scenario, ctx, budget)?;
            let mut allocator = DrlAllocator::from_snapshot(trained.drl);
            let mut power = FixedTimeoutPower::new(*timeout_s);
            let result = experiment.run(&mut allocator, &mut power)?;
            (result, Some(*allocator.stats()))
        }
        PolicySpec::Hierarchical {
            pretrain: budget,
            co_pretrain,
            ..
        } => {
            let trained = pretrain(scenario, ctx, budget)?;
            let mut allocator = DrlAllocator::from_snapshot(trained.drl);
            let dpm_config = scenario
                .dpm_config()
                .expect("hierarchical has a DPM config");
            // Co-pre-trained cells restore the trained local tier; Fig. 10
            // cells start it fresh so every operating point shares the one
            // pre-trained global tier.
            let mut dpm = match trained.dpm {
                Some(snapshot) if *co_pretrain => {
                    RlPowerManager::from_snapshot(cluster.num_servers, snapshot)
                }
                _ => RlPowerManager::new(cluster.num_servers, dpm_config),
            };
            let result = experiment.run(&mut allocator, &mut dpm as &mut dyn PowerManager)?;
            (result, Some(*allocator.stats()))
        }
    };

    let wall_s = started.elapsed().as_secs_f64();
    let jobs = result.outcome.totals.jobs_completed;
    Ok(CellRun {
        scenario: scenario.clone(),
        result,
        drl_stats,
        timing: CellTiming {
            wall_s,
            jobs_per_s: jobs as f64 / wall_s.max(1e-9),
        },
    })
}
