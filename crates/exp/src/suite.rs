//! Declarative sweep grids: a [`Suite`] is the cartesian product of
//! topologies × workloads × policies × seeds, built with [`SuiteBuilder`].

use crate::scenario::{DriftSpec, PolicySpec, Scenario, Topology, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// A named collection of scenarios, executed together by the suite runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    /// Suite name (used in reports and artifacts).
    pub name: String,
    /// The grid cells, in deterministic builder order.
    pub scenarios: Vec<Scenario>,
}

impl Suite {
    /// Starts a grid builder.
    pub fn builder(name: impl Into<String>) -> SuiteBuilder {
        SuiteBuilder {
            name: name.into(),
            topologies: Vec::new(),
            workloads: Vec::new(),
            drifts: vec![None],
            policies: Vec::new(),
            seeds: Vec::new(),
            max_jobs: None,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the suite has no cells.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// Cartesian grid builder for [`Suite`].
///
/// Cells expand in nesting order topology → workload → drift → policy →
/// seed, so a suite's scenario order (and therefore its report) is
/// independent of how it is executed. The drift axis defaults to one
/// drift-free entry, leaving non-drift grids (and their cell ids) exactly
/// as before.
#[derive(Debug, Clone)]
pub struct SuiteBuilder {
    name: String,
    topologies: Vec<Topology>,
    workloads: Vec<WorkloadSpec>,
    drifts: Vec<Option<DriftSpec>>,
    policies: Vec<PolicySpec>,
    seeds: Vec<u64>,
    max_jobs: Option<u64>,
}

impl SuiteBuilder {
    /// Sets the cluster topologies axis.
    #[must_use]
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = Topology>) -> Self {
        self.topologies = topologies.into_iter().collect();
        self
    }

    /// Sets the workloads axis.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the concept-drift axis: every cell runs each drift's segments
    /// under carried learners. Replaces the default drift-free entry; use
    /// [`SuiteBuilder::drifts_with_baseline`] to keep it alongside.
    #[must_use]
    pub fn drifts(mut self, drifts: impl IntoIterator<Item = DriftSpec>) -> Self {
        self.drifts = drifts.into_iter().map(Some).collect();
        self
    }

    /// Like [`SuiteBuilder::drifts`], but keeps the drift-free single
    /// -trace cell as the first entry of the axis.
    #[must_use]
    pub fn drifts_with_baseline(mut self, drifts: impl IntoIterator<Item = DriftSpec>) -> Self {
        self.drifts = std::iter::once(None)
            .chain(drifts.into_iter().map(Some))
            .collect();
        self
    }

    /// Sets the policies axis.
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the seeds axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Caps every cell at `n` completed jobs.
    #[must_use]
    pub fn limit_jobs(mut self, n: u64) -> Self {
        self.max_jobs = Some(n);
        self
    }

    /// Expands the grid.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty axis silently producing zero
    /// cells is always a bug in the caller.
    pub fn build(self) -> Suite {
        assert!(!self.topologies.is_empty(), "suite needs >= 1 topology");
        assert!(!self.workloads.is_empty(), "suite needs >= 1 workload");
        assert!(!self.drifts.is_empty(), "suite needs >= 1 drift entry");
        assert!(!self.policies.is_empty(), "suite needs >= 1 policy");
        assert!(!self.seeds.is_empty(), "suite needs >= 1 seed");
        let mut scenarios = Vec::with_capacity(
            self.topologies.len()
                * self.workloads.len()
                * self.drifts.len()
                * self.policies.len()
                * self.seeds.len(),
        );
        for topology in &self.topologies {
            for workload in &self.workloads {
                for drift in &self.drifts {
                    for policy in &self.policies {
                        for &seed in &self.seeds {
                            let scenario = Scenario::new(
                                topology.clone(),
                                workload.clone(),
                                policy.clone(),
                                seed,
                                self.max_jobs,
                            );
                            scenarios.push(match drift {
                                Some(d) => scenario.with_drift(d.clone()),
                                None => scenario,
                            });
                        }
                    }
                }
            }
        }
        Suite {
            name: self.name,
            scenarios,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_in_cartesian_order() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4), Topology::paper(6)])
            .workloads([WorkloadSpec::paper()])
            .policies([PolicySpec::round_robin(), PolicySpec::drl_only()])
            .seeds([1, 2])
            .build();
        assert_eq!(suite.len(), 8);
        assert_eq!(suite.scenarios[0].id, "paper-m4/paper/round-robin/s1");
        assert_eq!(suite.scenarios[1].id, "paper-m4/paper/round-robin/s2");
        assert_eq!(suite.scenarios[2].id, "paper-m4/paper/drl-only/s1");
        assert_eq!(suite.scenarios[4].id, "paper-m6/paper/round-robin/s1");
    }

    #[test]
    fn drift_axis_expands_between_workload_and_policy() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .drifts_with_baseline([DriftSpec::rate_step(2.0)])
            .policies([PolicySpec::round_robin(), PolicySpec::drl_only()])
            .seeds([1])
            .build();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.scenarios[0].id, "paper-m4/paper/round-robin/s1");
        assert_eq!(suite.scenarios[1].id, "paper-m4/paper/drl-only/s1");
        assert_eq!(
            suite.scenarios[2].id,
            "paper-m4/paper@rate-step-x2/round-robin/s1"
        );
        assert_eq!(
            suite.scenarios[3].id,
            "paper-m4/paper@rate-step-x2/drl-only/s1"
        );
        assert_eq!(suite.scenarios[2].num_segments(), 2);

        // `.drifts` without the baseline replaces the drift-free entry.
        let pure = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .drifts([DriftSpec::stationary(3)])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .build();
        assert_eq!(pure.len(), 1);
        assert_eq!(pure.scenarios[0].num_segments(), 3);
    }

    #[test]
    fn limit_applies_to_every_cell() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .limit_jobs(50)
            .build();
        assert_eq!(suite.scenarios[0].max_jobs, Some(50));
    }

    #[test]
    #[should_panic(expected = "suite needs >= 1 policy")]
    fn empty_axis_is_rejected() {
        let _ = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .seeds([1])
            .build();
    }
}
