//! Declarative sweep grids: a [`Suite`] is the cartesian product of
//! topologies × workloads × drifts × faults × policies × seeds, built with
//! [`SuiteBuilder`] — plus the declarative [`Expectation`]s the runner
//! evaluates against the finished grid.

use crate::scenario::{
    DriftSpec, ElasticSpec, FaultSpec, PolicySpec, Scenario, Topology, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

/// A declarative acceptance check attached to a [`Suite`], evaluated by
/// the suite runner *after* every cell has run and reported as a pass/fail
/// row in the canonical report and the bench artifact. Expectations turn
/// the acceptance assertions that used to live only in integration tests
/// into first-class, committed suite outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expectation {
    /// Every matching cell's named metric stays inside `[min, max]`.
    MetricBound {
        /// Row label in the report.
        name: String,
        /// Substring filter on cell ids (empty matches every cell).
        cell_contains: String,
        /// Metric key: one of `jobs_completed`, `energy_kwh`,
        /// `mean_latency_s`, `average_power_w`, `span_hours`,
        /// `jobs_requeued`.
        metric: String,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Conservation invariant: in every cell, each arrived job completes —
    /// exactly once — even through crash-requeue churn.
    JobConservation {
        /// Row label in the report.
        name: String,
    },
    /// Determinism pin: every matching cell, re-run serially from its
    /// scenario alone, reproduces its report row byte-for-byte.
    DeterminismPin {
        /// Row label in the report.
        name: String,
        /// Substring filter on cell ids.
        cell_contains: String,
    },
    /// The chaos headline: under fault `fault`, policy `policy`'s Eqn.-4
    /// objective degrades by a *smaller* ratio against its own no-fault
    /// twin than `baseline`'s does (within `tolerance` slack on the
    /// ratio-of-ratios).
    GracefulDegradation {
        /// Row label in the report.
        name: String,
        /// Fault name (the `%fault` id component) to compare under.
        fault: String,
        /// The policy expected to degrade gracefully.
        policy: String,
        /// The policy it must beat.
        baseline: String,
        /// Multiplicative slack: pass iff
        /// `ratio(policy) <= ratio(baseline) * tolerance`.
        tolerance: f64,
    },
    /// The elastic headline: under autoscale schedule `elastic`, policy
    /// `policy` spends no more energy per job than its fixed-fleet twin
    /// (the cell whose id lacks the `~elastic` component), within
    /// `energy_tolerance`, while holding mean latency within
    /// `latency_slack` — scale-down economics must beat (or at worst
    /// match) keeping the whole fleet DPM-sleeping, at equal latency.
    AutoscaleEconomics {
        /// Row label in the report.
        name: String,
        /// Elastic-schedule name (the `~elastic` id component).
        elastic: String,
        /// The policy compared against its own fixed-fleet twin.
        policy: String,
        /// Pass iff mean energy-per-job ratio `<= energy_tolerance`.
        energy_tolerance: f64,
        /// Pass iff mean latency ratio `<= latency_slack`.
        latency_slack: f64,
    },
}

impl Expectation {
    /// The row label.
    pub fn name(&self) -> &str {
        match self {
            Expectation::MetricBound { name, .. }
            | Expectation::JobConservation { name }
            | Expectation::DeterminismPin { name, .. }
            | Expectation::GracefulDegradation { name, .. }
            | Expectation::AutoscaleEconomics { name, .. } => name,
        }
    }
}

/// A named collection of scenarios, executed together by the suite runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    /// Suite name (used in reports and artifacts).
    pub name: String,
    /// The grid cells, in deterministic builder order.
    pub scenarios: Vec<Scenario>,
    /// Declarative acceptance checks, evaluated after the grid runs.
    #[serde(default)]
    pub expectations: Vec<Expectation>,
}

impl Suite {
    /// Starts a grid builder.
    pub fn builder(name: impl Into<String>) -> SuiteBuilder {
        SuiteBuilder {
            name: name.into(),
            topologies: Vec::new(),
            workloads: Vec::new(),
            drifts: vec![None],
            faults: vec![None],
            elastics: vec![None],
            policies: Vec::new(),
            seeds: Vec::new(),
            max_jobs: None,
            expectations: Vec::new(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the suite has no cells.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// Cartesian grid builder for [`Suite`].
///
/// Cells expand in nesting order topology → workload → drift → fault →
/// elastic → policy → seed, so a suite's scenario order (and therefore its
/// report) is independent of how it is executed. The drift, fault, and
/// elastic axes each default to one empty entry, leaving classic grids
/// (and their cell ids) exactly as before.
#[derive(Debug, Clone)]
pub struct SuiteBuilder {
    name: String,
    topologies: Vec<Topology>,
    workloads: Vec<WorkloadSpec>,
    drifts: Vec<Option<DriftSpec>>,
    faults: Vec<Option<FaultSpec>>,
    elastics: Vec<Option<ElasticSpec>>,
    policies: Vec<PolicySpec>,
    seeds: Vec<u64>,
    max_jobs: Option<u64>,
    expectations: Vec<Expectation>,
}

impl SuiteBuilder {
    /// Sets the cluster topologies axis.
    #[must_use]
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = Topology>) -> Self {
        self.topologies = topologies.into_iter().collect();
        self
    }

    /// Sets the workloads axis.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the concept-drift axis: every cell runs each drift's segments
    /// under carried learners. Replaces the default drift-free entry; use
    /// [`SuiteBuilder::drifts_with_baseline`] to keep it alongside.
    #[must_use]
    pub fn drifts(mut self, drifts: impl IntoIterator<Item = DriftSpec>) -> Self {
        self.drifts = drifts.into_iter().map(Some).collect();
        self
    }

    /// Like [`SuiteBuilder::drifts`], but keeps the drift-free single
    /// -trace cell as the first entry of the axis.
    #[must_use]
    pub fn drifts_with_baseline(mut self, drifts: impl IntoIterator<Item = DriftSpec>) -> Self {
        self.drifts = std::iter::once(None)
            .chain(drifts.into_iter().map(Some))
            .collect();
        self
    }

    /// Sets the chaos axis: every cell runs under each fault schedule.
    /// Replaces the default fault-free entry; use
    /// [`SuiteBuilder::faults_with_baseline`] to keep it alongside.
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults = faults.into_iter().map(Some).collect();
        self
    }

    /// Like [`SuiteBuilder::faults`], but keeps the fault-free cell as the
    /// first entry of the axis — every fault cell's no-fault twin, which
    /// graceful-degradation expectations compare against.
    #[must_use]
    pub fn faults_with_baseline(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults = std::iter::once(None)
            .chain(faults.into_iter().map(Some))
            .collect();
        self
    }

    /// Sets the elastic axis: every cell runs under each autoscale
    /// schedule. Replaces the default fixed-fleet entry; use
    /// [`SuiteBuilder::elastics_with_baseline`] to keep it alongside.
    #[must_use]
    pub fn elastics(mut self, elastics: impl IntoIterator<Item = ElasticSpec>) -> Self {
        self.elastics = elastics.into_iter().map(Some).collect();
        self
    }

    /// Like [`SuiteBuilder::elastics`], but keeps the fixed-fleet cell as
    /// the first entry of the axis — every elastic cell's fixed twin,
    /// which autoscale-economics expectations compare against.
    #[must_use]
    pub fn elastics_with_baseline(
        mut self,
        elastics: impl IntoIterator<Item = ElasticSpec>,
    ) -> Self {
        self.elastics = std::iter::once(None)
            .chain(elastics.into_iter().map(Some))
            .collect();
        self
    }

    /// Attaches a declarative acceptance check to the suite.
    #[must_use]
    pub fn expect(mut self, expectation: Expectation) -> Self {
        self.expectations.push(expectation);
        self
    }

    /// Sets the policies axis.
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Sets the seeds axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Caps every cell at `n` completed jobs.
    #[must_use]
    pub fn limit_jobs(mut self, n: u64) -> Self {
        self.max_jobs = Some(n);
        self
    }

    /// Expands the grid.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty axis silently producing zero
    /// cells is always a bug in the caller.
    pub fn build(self) -> Suite {
        assert!(!self.topologies.is_empty(), "suite needs >= 1 topology");
        assert!(!self.workloads.is_empty(), "suite needs >= 1 workload");
        assert!(!self.drifts.is_empty(), "suite needs >= 1 drift entry");
        assert!(!self.faults.is_empty(), "suite needs >= 1 fault entry");
        assert!(!self.elastics.is_empty(), "suite needs >= 1 elastic entry");
        assert!(!self.policies.is_empty(), "suite needs >= 1 policy");
        assert!(!self.seeds.is_empty(), "suite needs >= 1 seed");
        let mut scenarios = Vec::with_capacity(
            self.topologies.len()
                * self.workloads.len()
                * self.drifts.len()
                * self.faults.len()
                * self.elastics.len()
                * self.policies.len()
                * self.seeds.len(),
        );
        for topology in &self.topologies {
            for workload in &self.workloads {
                for drift in &self.drifts {
                    for fault in &self.faults {
                        for elastic in &self.elastics {
                            for policy in &self.policies {
                                for &seed in &self.seeds {
                                    let mut scenario = Scenario::new(
                                        topology.clone(),
                                        workload.clone(),
                                        policy.clone(),
                                        seed,
                                        self.max_jobs,
                                    );
                                    if let Some(d) = drift {
                                        scenario = scenario.with_drift(d.clone());
                                    }
                                    if let Some(f) = fault {
                                        scenario = scenario.with_fault(f.clone());
                                    }
                                    if let Some(e) = elastic {
                                        scenario = scenario.with_elastic(e.clone());
                                    }
                                    scenarios.push(scenario);
                                }
                            }
                        }
                    }
                }
            }
        }
        Suite {
            name: self.name,
            scenarios,
            expectations: self.expectations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_in_cartesian_order() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4), Topology::paper(6)])
            .workloads([WorkloadSpec::paper()])
            .policies([PolicySpec::round_robin(), PolicySpec::drl_only()])
            .seeds([1, 2])
            .build();
        assert_eq!(suite.len(), 8);
        assert_eq!(suite.scenarios[0].id, "paper-m4/paper/round-robin/s1");
        assert_eq!(suite.scenarios[1].id, "paper-m4/paper/round-robin/s2");
        assert_eq!(suite.scenarios[2].id, "paper-m4/paper/drl-only/s1");
        assert_eq!(suite.scenarios[4].id, "paper-m6/paper/round-robin/s1");
    }

    #[test]
    fn drift_axis_expands_between_workload_and_policy() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .drifts_with_baseline([DriftSpec::rate_step(2.0)])
            .policies([PolicySpec::round_robin(), PolicySpec::drl_only()])
            .seeds([1])
            .build();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.scenarios[0].id, "paper-m4/paper/round-robin/s1");
        assert_eq!(suite.scenarios[1].id, "paper-m4/paper/drl-only/s1");
        assert_eq!(
            suite.scenarios[2].id,
            "paper-m4/paper@rate-step-x2/round-robin/s1"
        );
        assert_eq!(
            suite.scenarios[3].id,
            "paper-m4/paper@rate-step-x2/drl-only/s1"
        );
        assert_eq!(suite.scenarios[2].num_segments(), 2);

        // `.drifts` without the baseline replaces the drift-free entry.
        let pure = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .drifts([DriftSpec::stationary(3)])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .build();
        assert_eq!(pure.len(), 1);
        assert_eq!(pure.scenarios[0].num_segments(), 3);
    }

    #[test]
    fn fault_axis_expands_between_drift_and_policy() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .faults_with_baseline([FaultSpec::crash_storm()])
            .policies([PolicySpec::round_robin(), PolicySpec::drl_only()])
            .seeds([1])
            .build();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.scenarios[0].id, "paper-m4/paper/round-robin/s1");
        assert_eq!(suite.scenarios[1].id, "paper-m4/paper/drl-only/s1");
        assert_eq!(
            suite.scenarios[2].id,
            "paper-m4/paper%crash-storm/round-robin/s1"
        );
        assert_eq!(
            suite.scenarios[3].id,
            "paper-m4/paper%crash-storm/drl-only/s1"
        );

        // `.faults` without the baseline replaces the fault-free entry,
        // and the axes compose: drift nests outside fault.
        let both = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .drifts([DriftSpec::rate_step(2.0)])
            .faults([FaultSpec::cap_window()])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .build();
        assert_eq!(both.len(), 1);
        assert_eq!(
            both.scenarios[0].id,
            "paper-m4/paper@rate-step-x2%cap-window/round-robin/s1"
        );
    }

    #[test]
    fn elastic_axis_expands_between_fault_and_policy() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .elastics_with_baseline([ElasticSpec::threshold()])
            .policies([PolicySpec::round_robin(), PolicySpec::drl_only()])
            .seeds([1])
            .build();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.scenarios[0].id, "paper-m4/paper/round-robin/s1");
        assert_eq!(
            suite.scenarios[2].id,
            "paper-m4/paper~threshold/round-robin/s1"
        );
        assert_eq!(
            suite.scenarios[3].id,
            "paper-m4/paper~threshold/drl-only/s1"
        );

        // `.elastics` without the baseline replaces the fixed-fleet entry,
        // and the axes compose: fault nests outside elastic.
        let both = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .faults([FaultSpec::cap_window()])
            .elastics([ElasticSpec::learned()])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .build();
        assert_eq!(both.len(), 1);
        assert_eq!(
            both.scenarios[0].id,
            "paper-m4/paper%cap-window~learned/round-robin/s1"
        );
    }

    #[test]
    fn expectations_ride_the_suite() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .expect(Expectation::JobConservation {
                name: "conserved".into(),
            })
            .expect(Expectation::GracefulDegradation {
                name: "graceful".into(),
                fault: "crash-storm".into(),
                policy: "hierarchical".into(),
                baseline: "round-robin".into(),
                tolerance: 1.0,
            })
            .build();
        assert_eq!(suite.expectations.len(), 2);
        assert_eq!(suite.expectations[0].name(), "conserved");
        assert_eq!(suite.expectations[1].name(), "graceful");
        // Legacy suites without the field still deserialize.
        let json = serde_json::to_string(&suite).unwrap();
        let back: Suite = serde_json::from_str(&json).unwrap();
        assert_eq!(back, suite);
    }

    #[test]
    fn limit_applies_to_every_cell() {
        let suite = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .policies([PolicySpec::round_robin()])
            .seeds([1])
            .limit_jobs(50)
            .build();
        assert_eq!(suite.scenarios[0].max_jobs, Some(50));
    }

    #[test]
    #[should_panic(expected = "suite needs >= 1 policy")]
    fn empty_axis_is_rejected() {
        let _ = Suite::builder("t")
            .topologies([Topology::paper(4)])
            .workloads([WorkloadSpec::paper()])
            .seeds([1])
            .build();
    }
}
