//! Named suite presets reproducing the paper's evaluation grids
//! (Table I, Figs. 8–10), the DQN ablation, and the calibration probe.
//!
//! Every preset takes a [`Scale`] — the base (cluster size, job count)
//! operating point — so the same grid runs at paper scale or as a smoke
//! test (`Scale::quick()`), exactly like the old per-binary `--quick` flag.

use crate::scenario::{
    DriftSpec, ElasticSpec, FaultSpec, PolicySpec, Pretrain, Topology, WorkloadSpec,
};
use crate::suite::{Expectation, Suite};
use hierdrl_core::allocator::DrlAllocatorConfig;
use hierdrl_core::hierarchical::{AllocatorKind, PowerKind};
use hierdrl_rl::policy::EpsilonSchedule;
use hierdrl_sim::router::RouterPolicy;
use hierdrl_trace::source::TraceFormat;

/// The job count at which Table I reports its metrics.
pub const PAPER_REPORT_JOBS: u64 = 95_000;

/// Base operating point of a preset: cluster size `M` and evaluation job
/// count, with per-server load held at the paper's level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of servers `M`.
    pub m: usize,
    /// Jobs to simulate.
    pub jobs: u64,
}

impl Scale {
    /// The paper's setup for a given `M`.
    pub fn paper(m: usize) -> Self {
        Self {
            m,
            jobs: PAPER_REPORT_JOBS,
        }
    }

    /// A smoke-test scale.
    pub fn quick() -> Self {
        Self { m: 10, jobs: 5_000 }
    }

    /// The paper's workload at this scale's absolute job count.
    fn workload(&self) -> WorkloadSpec {
        WorkloadSpec::paper().with_total_jobs(self.jobs)
    }

    /// The paper's workload with jobs scaling per server, anchored so that
    /// this scale's `m` runs exactly `jobs` (Table I scales the report
    /// point with `M`).
    fn workload_per_server(&self) -> WorkloadSpec {
        WorkloadSpec::paper().with_jobs_per_server(self.jobs as f64 / self.m as f64)
    }
}

/// The paper's three systems: round-robin baseline, DRL-only, and the full
/// hierarchical framework.
pub fn three_systems() -> [PolicySpec; 3] {
    [
        PolicySpec::round_robin(),
        PolicySpec::drl_only(),
        PolicySpec::hierarchical(0.5),
    ]
}

/// The canonical big/little operating point: a quarter of the fleet at
/// twice the capacity (H2O-Cloud-style 2-tier fleet).
pub const BIG_LITTLE_FRACTION: f64 = 0.25;
/// Capacity multiplier of the big tier in the canonical big/little fleet.
pub const BIG_LITTLE_SCALE: f64 = 2.0;
/// The extreme-skew operating point: one-tenth of the fleet at 4x capacity.
pub const EXTREME_SKEW_FRACTION: f64 = 0.1;
/// Capacity multiplier of the big tier in the extreme-skew fleet.
pub const EXTREME_SKEW_SCALE: f64 = 4.0;

/// Heterogeneity grid: {homogeneous, big/little, extreme-skew} fleets ×
/// {round-robin, DRL-only, hierarchical}, all at the same server count and
/// per-server arrival load. The paper assumes homogeneous machines
/// "without loss of generality"; this grid measures exactly what that
/// assumption hides — whether the capacity-aware DRL tiers exploit big
/// machines (consolidate onto them, sleep the little tier) where
/// capacity-blind round-robin cannot.
pub fn heterogeneous(scale: Scale) -> Suite {
    Suite::builder("heterogeneous")
        .topologies([
            Topology::paper(scale.m),
            Topology::big_little(scale.m, BIG_LITTLE_FRACTION, BIG_LITTLE_SCALE),
            Topology::big_little(scale.m, EXTREME_SKEW_FRACTION, EXTREME_SKEW_SCALE),
        ])
        .workloads([scale.workload()])
        .policies(three_systems())
        .seeds([42])
        .build()
}

/// The arrival-rate multiplier of the canonical rate-step drift (a tenant
/// launch doubling the load mid-evaluation).
pub const DRIFT_RATE_STEP: f64 = 2.0;
/// The rate-ramp drift's per-segment factors (organic growth).
pub const DRIFT_RAMP_FACTORS: [f64; 3] = [1.0, 1.5, 2.0];

/// The named drift shapes of the `drift` preset, by CLI name.
pub fn drift_spec(name: &str) -> DriftSpec {
    match name {
        "stationary" => DriftSpec::stationary(2),
        "rate-step" => DriftSpec::rate_step(DRIFT_RATE_STEP),
        "rate-ramp" => DriftSpec::rate_ramp(&DRIFT_RAMP_FACTORS),
        "pattern-flip" => DriftSpec::pattern_flip(),
        other => panic!(
            "unknown drift {other:?}; expected one of stationary, rate-step, rate-ramp, \
             pattern-flip"
        ),
    }
}

/// The default drift axis of the `drift` preset.
pub const DRIFT_NAMES: [&str; 4] = ["stationary", "rate-step", "rate-ramp", "pattern-flip"];

/// Online-learning / concept-drift grid: {stationary, rate-step,
/// rate-ramp, pattern-flip} × {round-robin, DRL-only, hierarchical}, each
/// cell interleaving evaluation and continued training across its workload
/// segments under carried learners, with per-segment rows in the report.
/// The stationary drift is the control: same segmentation machinery, no
/// distribution change — any gap between it and the single-trace cells of
/// other presets would indicate a segment-boundary artifact.
pub fn drift(scale: Scale, names: &[String]) -> Suite {
    Suite::builder("drift")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .drifts(names.iter().map(|n| drift_spec(n)))
        .policies(three_systems())
        .seeds([42])
        .build()
}

/// The named fault schedules of the `chaos` preset, by CLI name.
/// `"no-fault"` is not a [`FaultSpec`] — it selects the fault-free
/// baseline entry of the axis and is handled by [`chaos`] directly.
pub fn fault_spec(name: &str) -> FaultSpec {
    match name {
        "crash-storm" => FaultSpec::crash_storm(),
        "straggler-wave" => FaultSpec::straggler_wave(),
        "cap-window" => FaultSpec::cap_window(),
        other => panic!(
            "unknown fault {other:?}; expected one of no-fault, crash-storm, straggler-wave, \
             cap-window"
        ),
    }
}

/// The default chaos axis of the `chaos` preset.
pub const FAULT_NAMES: [&str; 4] = ["no-fault", "crash-storm", "straggler-wave", "cap-window"];

/// Chaos grid: {no-fault, crash-storm, straggler-wave, cap-window} ×
/// {round-robin, DRL-only, hierarchical}, every fault cell paired with its
/// fault-free twin, plus the committed expectations: conservation through
/// crash-requeue churn, a determinism pin on a chaos cell, and the
/// headline graceful-degradation checks — does the hierarchical framework
/// lose less of its Eqn.-4 objective under faults than round-robin?
///
/// # Panics
///
/// Panics on an unknown fault name (see [`fault_spec`]).
pub fn chaos(scale: Scale, names: &[String]) -> Suite {
    let faults: Vec<FaultSpec> = names
        .iter()
        .filter(|n| n.as_str() != "no-fault")
        .map(|n| fault_spec(n))
        .collect();
    let baseline = names.len() != faults.len() || faults.is_empty();
    let mut builder = Suite::builder("chaos")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies(three_systems())
        .seeds([42])
        .expect(Expectation::JobConservation {
            name: "jobs-conserved".into(),
        });
    builder = if baseline {
        builder.faults_with_baseline(faults)
    } else {
        builder.faults(faults)
    };
    for fault in names.iter().filter(|n| n.as_str() != "no-fault") {
        builder = builder.expect(Expectation::DeterminismPin {
            name: format!("determinism-{fault}"),
            cell_contains: format!("%{fault}/round-robin"),
        });
        // The headline comparison needs the no-fault twins on the grid.
        if baseline {
            builder = builder.expect(Expectation::GracefulDegradation {
                name: format!("graceful-{fault}"),
                fault: fault.clone(),
                policy: "hierarchical".into(),
                baseline: "round-robin".into(),
                tolerance: 1.0,
            });
        }
    }
    builder.build()
}

/// The named autoscalers of the `elastic` preset, by CLI name.
/// `"fixed"` is not an [`ElasticSpec`] — it selects the fixed-fleet
/// baseline entry of the axis and is handled by [`elastic`] directly.
pub fn elastic_spec(name: &str) -> ElasticSpec {
    match name {
        "threshold" => ElasticSpec::threshold(),
        "learned" => ElasticSpec::learned(),
        other => panic!("unknown autoscaler {other:?}; expected one of fixed, threshold, learned"),
    }
}

/// The default elastic axis of the `elastic` preset.
pub const ELASTIC_NAMES: [&str; 3] = ["fixed", "threshold", "learned"];

/// Ceiling on the autoscaled cells' mean energy-per-job relative to their
/// fixed-fleet twins (the scale-down economics must beat — or at worst
/// match — keeping the whole fleet DPM-sleeping).
pub const ELASTIC_ENERGY_TOLERANCE: f64 = 1.0;
/// Ceiling on the autoscaled cells' mean latency relative to their
/// fixed-fleet twins ("at equal latency", with a little headroom for the
/// smaller live fleet absorbing the same arrivals).
pub const ELASTIC_LATENCY_SLACK: f64 = 1.10;

/// Elastic-fleet grid: {fixed, threshold, learned} × {round-robin,
/// DRL-only, hierarchical}, every autoscaled cell paired with its
/// fixed-fleet twin, plus the committed expectations: conservation through
/// join/leave churn, a determinism pin on an elastic cell, and the
/// headline autoscale-economics checks — does scaling the fleet with a
/// hierarchical learner beat leaving the whole fleet to DPM sleep on
/// energy-per-job, at equal latency?
///
/// # Panics
///
/// Panics on an unknown autoscaler name (see [`elastic_spec`]).
pub fn elastic(scale: Scale, names: &[String]) -> Suite {
    let specs: Vec<ElasticSpec> = names
        .iter()
        .filter(|n| n.as_str() != "fixed")
        .map(|n| elastic_spec(n))
        .collect();
    let baseline = names.len() != specs.len() || specs.is_empty();
    let mut builder = Suite::builder("elastic")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies(three_systems())
        .seeds([42])
        .expect(Expectation::JobConservation {
            name: "jobs-conserved".into(),
        });
    builder = if baseline {
        builder.elastics_with_baseline(specs)
    } else {
        builder.elastics(specs)
    };
    for name in names.iter().filter(|n| n.as_str() != "fixed") {
        builder = builder.expect(Expectation::DeterminismPin {
            name: format!("determinism-{name}"),
            cell_contains: format!("~{name}/round-robin"),
        });
        // The economics comparison needs the fixed-fleet twins on the grid.
        if baseline {
            builder = builder.expect(Expectation::AutoscaleEconomics {
                name: format!("autoscale-{name}"),
                elastic: name.clone(),
                policy: "hierarchical".into(),
                energy_tolerance: ELASTIC_ENERGY_TOLERANCE,
                latency_slack: ELASTIC_LATENCY_SLACK,
            });
        }
    }
    builder.build()
}

/// The committed trace fixtures the `realtrace` preset replays by default:
/// `(workload name, repo-relative path, format)`. Tiny deterministic files
/// (see `crates/trace/tests/fixtures/regen.py`), so the preset runs
/// offline in CI; point `--trace`/`--format` at a real download for the
/// full-size replay.
pub const REALTRACE_FIXTURES: [(&str, &str, TraceFormat); 2] = [
    (
        "real-google",
        "crates/trace/tests/fixtures/google_task_events.csv",
        TraceFormat::GoogleTaskEvents,
    ),
    (
        "real-alibaba",
        "crates/trace/tests/fixtures/alibaba_batch_task.csv",
        TraceFormat::AlibabaBatchTask,
    ),
];

/// Real-trace replay grid: each on-disk workload × {full trace,
/// wall-clock-weekly segments, weekly segments with frozen learners} ×
/// {round-robin, DRL-only, hierarchical}. The weekly cells replay the
/// trace's *own* regime changes through carried learners — the
/// online-vs-frozen ablation of the drift preset, on real arrivals instead
/// of scheduled generator shifts — and report one segment row per week.
/// Expectations: job conservation across the grid and a determinism pin on
/// a segmented replay cell.
///
/// Synthetic generators stay the default everywhere else; this preset (and
/// the workloads handed to it) is the only place the runner reads files.
pub fn realtrace(m: usize, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Suite {
    Suite::builder("realtrace")
        .topologies([Topology::paper(m)])
        .workloads(workloads)
        .drifts_with_baseline([
            DriftSpec::real_segments(),
            DriftSpec::real_segments().with_frozen_learners(),
        ])
        .policies(three_systems())
        .seeds([42])
        .expect(Expectation::JobConservation {
            name: "jobs-conserved".into(),
        })
        .expect(Expectation::DeterminismPin {
            name: "determinism-real-weeks".into(),
            cell_contains: "@real-weeks/round-robin".into(),
        })
        .build()
}

/// **Fig. 8**: accumulated latency and energy vs. jobs at `M = 30`
/// (three systems, one seed).
pub fn fig8(scale: Scale) -> Suite {
    Suite::builder("fig8")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies(three_systems())
        .seeds([42])
        .build()
}

/// **Fig. 9**: the same comparison at `M = 40` (arrival volume scales with
/// `M`, so per-server load matches Fig. 8).
pub fn fig9(scale: Scale) -> Suite {
    Suite::builder("fig9")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies(three_systems())
        .seeds([43])
        .build()
}

/// **Table I**, extended with heterogeneity, drift, and elastic rows: the
/// three systems at `M` and `4/3 · M` (the paper's 30 and 40), evaluation
/// length scaling with `M` so per-server work is constant — plus the
/// canonical big/little fleet at `M` (a quarter of the servers at 2x
/// capacity), a rate-step concept-drift row at `M`, and a
/// threshold-autoscaled row at `M`, so the committed `BENCH_suite.json`
/// baseline carries heterogeneous, drift, *and* elastic cells (with
/// per-segment rows and `fleet_size` columns) and the perf gate tracks
/// them alongside the paper's.
pub fn table1(scale: Scale) -> Suite {
    let m_small = scale.m;
    let m_large = (scale.m * 4).div_ceil(3);
    let mut suite = Suite::builder("table1")
        .topologies([
            Topology::paper(m_small),
            Topology::paper(m_large),
            Topology::big_little(m_small, BIG_LITTLE_FRACTION, BIG_LITTLE_SCALE),
        ])
        .workloads([scale.workload_per_server()])
        .policies(three_systems())
        .seeds([42])
        .build();
    let drift_row = Suite::builder("table1")
        .topologies([Topology::paper(m_small)])
        .workloads([scale.workload_per_server()])
        .drifts([DriftSpec::rate_step(DRIFT_RATE_STEP)])
        .policies(three_systems())
        .seeds([42])
        .build();
    suite.scenarios.extend(drift_row.scenarios);
    let elastic_row = Suite::builder("table1")
        .topologies([Topology::paper(m_small)])
        .workloads([scale.workload_per_server()])
        .elastics([ElasticSpec::threshold()])
        .policies(three_systems())
        .seeds([42])
        .build();
    suite.scenarios.extend(elastic_row.scenarios);
    suite
}

/// **Fig. 10**: the latency/energy trade-off sweep — fixed timeouts of
/// 30/60/90 s under the same pre-trained global tier, against the
/// hierarchical framework across the Eqn. 5 weight sweep. All cells share
/// one seed and pre-train *without* the local tier
/// (`hierarchical_cold_local`), so the pre-train cache key is identical
/// across all ten operating points and every cell restores the *same*
/// pre-trained global tier, as the paper prescribes.
pub fn fig10(scale: Scale) -> Suite {
    let mut policies: Vec<PolicySpec> = [30.0, 60.0, 90.0]
        .into_iter()
        .map(PolicySpec::drl_timeout)
        .collect();
    policies.extend(
        [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95]
            .into_iter()
            .map(PolicySpec::hierarchical_cold_local),
    );
    Suite::builder("fig10")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies(policies)
        .seeds([50])
        .build()
}

/// Global-tier design ablations (Section V-A): group count `K`, the state
/// enrichments (availability, queue depth, normalized capacity), encoder
/// fine-tuning, and the first-fit guide.
pub fn ablation_dqn(scale: Scale) -> Suite {
    let base = DrlAllocatorConfig::default();
    let pretrain = Pretrain {
        segments: 5,
        fraction: 1.0,
    };
    let mut policies = vec![PolicySpec::drl_variant(
        "full (K=2)",
        base.clone(),
        pretrain,
    )];
    for k in [3usize, 4] {
        let mut c = base.clone();
        c.state.num_groups = k;
        policies.push(PolicySpec::drl_variant(
            format!("K={k} groups"),
            c,
            pretrain,
        ));
    }
    let mut c = base.clone();
    c.state.include_power_state = false;
    policies.push(PolicySpec::drl_variant(
        "no availability feature",
        c,
        pretrain,
    ));
    let mut c = base.clone();
    c.state.include_queue_len = false;
    policies.push(PolicySpec::drl_variant("no queue feature", c, pretrain));
    let mut c = base.clone();
    c.state.include_capacity = false;
    policies.push(PolicySpec::drl_variant("no capacity feature", c, pretrain));
    let mut c = base.clone();
    c.qnet.fine_tune_encoder = true;
    policies.push(PolicySpec::drl_variant("fine-tuned encoder", c, pretrain));
    let mut c = base;
    c.guide = EpsilonSchedule::Constant(0.0);
    policies.push(PolicySpec::drl_variant("no first-fit guide", c, pretrain));

    Suite::builder("ablation_dqn")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies(policies)
        .seeds([60])
        .build()
}

/// Calibration probe: the three systems plus the hand-written consolidation
/// envelope at a reduced scale. Not a paper artifact.
pub fn calibrate(scale: Scale) -> Suite {
    Suite::builder("calibrate")
        .topologies([Topology::paper(scale.m)])
        .workloads([scale.workload()])
        .policies([
            PolicySpec::round_robin(),
            PolicySpec::static_pair(
                "first-fit+sleep",
                AllocatorKind::FirstFit,
                PowerKind::SleepImmediately,
            ),
            PolicySpec::static_pair(
                "least-loaded+sleep",
                AllocatorKind::LeastLoaded,
                PowerKind::SleepImmediately,
            ),
            PolicySpec::drl_only(),
            PolicySpec::hierarchical(0.5),
        ])
        .seeds([42])
        .build()
}

/// Multi-cluster scaling grid: the same total fleet (`scale.m` servers,
/// per-server load at the paper's level) sharded across every cluster
/// count in `cluster_counts`, behind each front-end router policy. The
/// round-robin baseline and the DRL global tier (per-cluster learners)
/// ride every sharding, so the grid answers "what does splitting the fleet
/// cost, and which router hides it best?".
pub fn multicluster(scale: Scale, cluster_counts: &[usize]) -> Suite {
    let topologies = cluster_counts.iter().flat_map(|&c| {
        RouterPolicy::ALL
            .into_iter()
            .map(move |router| Topology::sharded_paper(c, scale.m, router))
    });
    Suite::builder("multicluster")
        .topologies(topologies)
        .workloads([scale.workload()])
        .policies([
            PolicySpec::round_robin(),
            PolicySpec::static_pair(
                "first-fit+sleep",
                AllocatorKind::FirstFit,
                PowerKind::SleepImmediately,
            ),
            PolicySpec::drl_only(),
        ])
        .seeds([42])
        .build()
}

/// A policy × arrival-rate × cluster-size grid — the shape of sweep the
/// orchestration layer exists for. `rate_factors` scale the paper's
/// per-server arrival volume.
pub fn load_sweep(ms: &[usize], rate_factors: &[f64], jobs_per_server: f64) -> Suite {
    Suite::builder("load_sweep")
        .topologies(ms.iter().map(|&m| Topology::paper(m)))
        .workloads(
            rate_factors
                .iter()
                .map(|&f| WorkloadSpec::paper_scaled(f).with_jobs_per_server(jobs_per_server)),
        )
        .policies(three_systems())
        .seeds([42])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_both_cluster_sizes_a_big_little_drift_and_elastic_rows() {
        let suite = table1(Scale::paper(30));
        assert_eq!(suite.len(), 15);
        assert!(suite
            .scenarios
            .iter()
            .all(|s| s.topology.servers() == 30 || s.topology.servers() == 40));
        // Per-server work held constant: 95k jobs at M=30, ~126.7k at M=40.
        assert_eq!(suite.scenarios[0].workload.jobs_for(30), 95_000);
        assert_eq!(suite.scenarios[3].workload.jobs_for(40), 126_667);
        // The heterogeneity row: a quarter of the fleet at 2x capacity.
        let hetero = &suite.scenarios[6];
        assert!((hetero.topology.capacity_skew() - 2.0).abs() < 1e-12);
        // round(30 * 0.25) = 8 big servers at 2x: 8*2 + 22 little.
        assert!((hetero.topology.total_capacity() - 38.0).abs() < 1e-12);
        // The drift row: the last three cells run the rate-step segments
        // online, splitting the same total budget across segments.
        for s in &suite.scenarios[9..12] {
            assert_eq!(s.num_segments(), 2);
            assert!(s.online_learning());
            assert!(s.id.contains("@rate-step-x2"));
            let total: usize = s.segment_trace_specs().iter().map(|t| t.jobs).sum();
            assert_eq!(total, 95_000);
        }
        // The elastic row: the last three cells autoscale under the
        // threshold policy at M=30.
        for s in &suite.scenarios[12..] {
            assert!(s.id.contains("~threshold"));
            assert_eq!(s.elastic.as_ref().unwrap().name, "threshold");
        }
        // Non-drift cells keep their historical ids (perf-gate stability).
        assert_eq!(suite.scenarios[0].id, "paper-m30/paper/round-robin/s42");
    }

    #[test]
    fn drift_preset_grids_shapes_by_system() {
        let names: Vec<String> = DRIFT_NAMES.iter().map(|s| s.to_string()).collect();
        let suite = drift(Scale::quick(), &names);
        // 4 drift shapes x 3 systems.
        assert_eq!(suite.len(), 12);
        assert!(suite.scenarios.iter().all(|s| s.num_segments() >= 2));
        assert!(suite.scenarios.iter().all(|s| s.online_learning()));
        let segment_counts: Vec<usize> = suite
            .scenarios
            .iter()
            .step_by(3)
            .map(|s| s.num_segments())
            .collect();
        assert_eq!(segment_counts, [2, 2, 3, 2]);
        // Subsetting the axis by name works (the CLI path).
        let one = drift(Scale::quick(), &["rate-ramp".to_string()]);
        assert_eq!(one.len(), 3);
        assert_eq!(one.scenarios[0].num_segments(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown drift")]
    fn unknown_drift_name_rejected() {
        let _ = drift_spec("sideways");
    }

    #[test]
    fn chaos_preset_pairs_fault_cells_with_their_twins() {
        let names: Vec<String> = FAULT_NAMES.iter().map(|s| s.to_string()).collect();
        let suite = chaos(Scale::quick(), &names);
        // {no-fault + 3 faults} x 3 systems.
        assert_eq!(suite.len(), 12);
        // The fault-free twins come first and keep their historical ids.
        assert_eq!(suite.scenarios[0].id, "paper-m10/paper/round-robin/s42");
        assert_eq!(
            suite.scenarios[3].id,
            "paper-m10/paper%crash-storm/round-robin/s42"
        );
        assert_eq!(
            suite.scenarios[11].id,
            "paper-m10/paper%cap-window/hierarchical/s42"
        );
        // Committed expectations: conservation + per-fault determinism pin
        // and graceful-degradation headline.
        assert_eq!(suite.expectations.len(), 1 + 3 * 2);
        assert_eq!(suite.expectations[0].name(), "jobs-conserved");
        assert!(suite
            .expectations
            .iter()
            .any(|e| e.name() == "graceful-crash-storm"));
        // Subsetting the axis by name works (the CLI path); without the
        // no-fault entry there are no twins, so no degradation checks.
        let one = chaos(Scale::quick(), &["straggler-wave".to_string()]);
        assert_eq!(one.len(), 3);
        assert!(one.scenarios.iter().all(|s| s.fault.is_some()));
        assert!(!one
            .expectations
            .iter()
            .any(|e| matches!(e, Expectation::GracefulDegradation { .. })));
    }

    #[test]
    #[should_panic(expected = "unknown fault")]
    fn unknown_fault_name_rejected() {
        let _ = fault_spec("meteor-strike");
    }

    #[test]
    fn elastic_preset_pairs_autoscaled_cells_with_their_twins() {
        let names: Vec<String> = ELASTIC_NAMES.iter().map(|s| s.to_string()).collect();
        let suite = elastic(Scale::quick(), &names);
        // {fixed + 2 autoscalers} x 3 systems.
        assert_eq!(suite.len(), 9);
        // The fixed-fleet twins come first and keep their historical ids.
        assert_eq!(suite.scenarios[0].id, "paper-m10/paper/round-robin/s42");
        assert_eq!(
            suite.scenarios[3].id,
            "paper-m10/paper~threshold/round-robin/s42"
        );
        assert_eq!(
            suite.scenarios[8].id,
            "paper-m10/paper~learned/hierarchical/s42"
        );
        // Committed expectations: conservation + per-autoscaler determinism
        // pin and the autoscale-economics headline.
        assert_eq!(suite.expectations.len(), 1 + 2 * 2);
        assert_eq!(suite.expectations[0].name(), "jobs-conserved");
        assert!(suite
            .expectations
            .iter()
            .any(|e| e.name() == "autoscale-threshold"));
        // Subsetting the axis by name works (the CLI path); without the
        // fixed entry there are no twins, so no economics checks.
        let one = elastic(Scale::quick(), &["learned".to_string()]);
        assert_eq!(one.len(), 3);
        assert!(one.scenarios.iter().all(|s| s.elastic.is_some()));
        assert!(!one
            .expectations
            .iter()
            .any(|e| matches!(e, Expectation::AutoscaleEconomics { .. })));
    }

    #[test]
    #[should_panic(expected = "unknown autoscaler")]
    fn unknown_elastic_name_rejected() {
        let _ = elastic_spec("clairvoyant");
    }

    #[test]
    fn heterogeneous_grids_skew_by_policy() {
        let suite = heterogeneous(Scale::quick());
        // 3 fleets x 3 systems.
        assert_eq!(suite.len(), 9);
        let skews: Vec<f64> = suite
            .scenarios
            .iter()
            .map(|s| s.topology.capacity_skew())
            .collect();
        assert_eq!(&skews[..3], &[1.0, 1.0, 1.0]);
        assert_eq!(&skews[3..6], &[2.0, 2.0, 2.0]);
        assert_eq!(&skews[6..], &[4.0, 4.0, 4.0]);
        // Server count is held constant across the skew axis.
        assert!(suite.scenarios.iter().all(|s| s.topology.servers() == 10));
    }

    #[test]
    fn fig10_is_a_ten_point_sweep_sharing_one_seed() {
        let suite = fig10(Scale::quick());
        assert_eq!(suite.len(), 10);
        assert!(suite.scenarios.iter().all(|s| s.seed == 50));
        // Every cell pre-trains the same global tier: no cell includes a
        // local-tier config in its pre-training inputs.
        assert!(suite
            .scenarios
            .iter()
            .all(|s| s.co_pretrain_dpm_config().is_none()));
    }

    #[test]
    fn quick_scale_shrinks_every_preset() {
        let fault_names: Vec<String> = FAULT_NAMES.iter().map(|s| s.to_string()).collect();
        let elastic_names: Vec<String> = ELASTIC_NAMES.iter().map(|s| s.to_string()).collect();
        for suite in [
            fig8(Scale::quick()),
            fig9(Scale::quick()),
            table1(Scale::quick()),
            ablation_dqn(Scale::quick()),
            calibrate(Scale::quick()),
            chaos(Scale::quick(), &fault_names),
            elastic(Scale::quick(), &elastic_names),
        ] {
            for s in &suite.scenarios {
                assert!(s.workload.jobs_for(s.topology.servers()) <= 7_000);
                assert!(s.topology.servers() <= 14);
            }
        }
    }

    #[test]
    fn load_sweep_expands_full_grid() {
        let suite = load_sweep(&[10, 20], &[0.5, 1.0, 1.5], 300.0);
        assert_eq!(suite.len(), 2 * 3 * 3);
    }

    #[test]
    fn multicluster_grids_counts_by_router_at_constant_fleet_size() {
        let suite = multicluster(Scale::quick(), &[2, 4]);
        // 2 counts x 3 routers x 3 policies.
        assert_eq!(suite.len(), 18);
        for s in &suite.scenarios {
            assert!(s.topology.is_multi_cluster());
            assert_eq!(s.topology.servers(), 10, "fleet size is held constant");
        }
        let shard_counts: Vec<usize> = suite
            .scenarios
            .iter()
            .map(|s| s.topology.clusters().len())
            .collect();
        assert!(shard_counts.contains(&2) && shard_counts.contains(&4));
    }
}
