//! The raw-scale regime: memory-gated cells at the paper's *pitched*
//! warehouse scale (10⁵ servers, 10⁶ jobs), far beyond the M = 30/40
//! clusters the evaluation grids simulate.
//!
//! The suite layer ([`crate::runner::SuiteRunner`]) is built for
//! statistical breadth — trace caching, memoized pre-training, parallel
//! cells — all of which *pin memory* proportional to trace length and
//! retain per-job records. A raw-scale cell inverts every one of those
//! choices:
//!
//! * arrivals are **streamed** ([`hierdrl_trace::stream::GeneratorStream`]
//!   behind [`ArrivalSource`]), so no `Vec<Job>` of the trace ever exists;
//! * the cluster runs with `lazy_accounting` (O(1) incremental fleet
//!   totals instead of the eager `O(M)` per-event sweep — the difference
//!   between ~2M and ~10¹¹ server-account calls at M = 100,000);
//! * `retain_completed_jobs` is off, so completion records are counted,
//!   not stored;
//! * only **O(1)-per-decision** policies run (round-robin paired with
//!   always-on or a fixed timeout). Learned policies and the scanning
//!   baselines (first-fit, least-loaded) are O(M) per arrival and belong
//!   to the evaluation grids, not the throughput/memory gate.
//!
//! Cells run **sequentially** and snapshot the process peak RSS
//! ([`crate::report::peak_rss_bytes`], Linux `VmHWM`) after each cell.
//! The high-water mark is process-wide and monotone, so a cell's snapshot
//! bounds *everything up to and including* that cell — exactly the right
//! shape for a memory gate, and the reason the cells must not run in
//! parallel. The rows merge into the committed `BENCH_suite.json` via
//! [`merge_into_report`], where `perf_gate` guards both jobs/s and
//! peak-RSS regressions.

use crate::report::{peak_rss_bytes, BenchCell, BenchReport};
use crate::scenario::PAPER_WEEKLY_JOBS_PER_SERVER;
use hierdrl_core::runner::{run_streamed, ExperimentResult};
use hierdrl_sim::cluster::{ArrivalSource, RunLimit};
use hierdrl_sim::config::ClusterConfig;
use hierdrl_sim::policies::{AlwaysOnPower, FixedTimeoutPower, RoundRobinAllocator};
use hierdrl_trace::generator::WorkloadConfig;
use hierdrl_trace::materialize::TraceSpec;
use std::time::Instant;

/// The raw-scale operating point: 100,000 servers, 1,000,000 jobs.
pub const RAW_SCALE_M: usize = 100_000;
/// Jobs simulated at the raw-scale operating point.
pub const RAW_SCALE_JOBS: u64 = 1_000_000;
/// The timeout (seconds) of the raw-scale fixed-timeout cell.
pub const RAW_SCALE_TIMEOUT_S: f64 = 60.0;
/// The regime's fixed seed (matches the evaluation grids' `s42` cells).
pub const RAW_SCALE_SEED: u64 = 42;

/// The policy axis of the regime, in run order. Both are O(1) per
/// decision; see the module docs for why nothing else qualifies here.
pub const SCALE_POLICIES: [&str; 2] = ["round-robin", "rr-timeout-60s"];

/// One raw-scale operating point: fleet size, job count, and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Number of servers `M`.
    pub m: usize,
    /// Jobs to stream through the fleet.
    pub jobs: u64,
    /// Trace seed (cell ids embed it as `s<seed>`).
    pub seed: u64,
}

impl ScaleSpec {
    /// The full raw-scale point: 100k servers, 1M jobs.
    pub fn raw() -> Self {
        Self {
            m: RAW_SCALE_M,
            jobs: RAW_SCALE_JOBS,
            seed: RAW_SCALE_SEED,
        }
    }

    /// A CI-sized smoke point exercising the identical code path (streamed
    /// arrivals, lazy accounting, no retention) at a fleet two orders of
    /// magnitude smaller.
    pub fn quick() -> Self {
        Self {
            m: 2_000,
            jobs: 50_000,
            seed: RAW_SCALE_SEED,
        }
    }

    /// The memory-bounded cluster configuration: paper parameters plus
    /// lazy accounting and no per-job retention.
    pub fn cluster(&self) -> ClusterConfig {
        let mut config = ClusterConfig::paper(self.m);
        config.lazy_accounting = true;
        config.retain_completed_jobs = false;
        config
    }

    /// The streamed workload recipe: the paper's per-server arrival load
    /// (95,000 jobs per week per 30 servers) scaled to this fleet.
    pub fn trace_spec(&self) -> TraceSpec {
        TraceSpec::new(
            WorkloadConfig::google_like(self.seed, PAPER_WEEKLY_JOBS_PER_SERVER * self.m as f64),
            self.jobs as usize,
        )
    }

    /// The cell id for one policy, in the suite id scheme
    /// (`topology/workload/policy/s<seed>`).
    pub fn cell_id(&self, policy: &str) -> String {
        format!("scale-m{}/paper/{}/s{}", self.m, policy, self.seed)
    }
}

/// One finished raw-scale cell: the simulation result plus the wall-clock
/// and memory readings the gate consumes.
#[derive(Debug, Clone)]
pub struct ScaleCellRun {
    /// Cell id (`scale-m<M>/paper/<policy>/s<seed>`).
    pub id: String,
    /// The cell's full simulation result (aggregates only; latency
    /// percentiles are `None` because retention is off).
    pub result: ExperimentResult,
    /// Cell wall-clock, seconds.
    pub wall_s: f64,
    /// Simulated jobs per wall-clock second.
    pub jobs_per_s: f64,
    /// Process peak RSS right after the cell (monotone across cells of one
    /// process; see the module docs).
    pub peak_rss_bytes: Option<u64>,
}

impl ScaleCellRun {
    /// The cell's `BENCH_suite.json` row.
    pub fn bench_cell(&self) -> BenchCell {
        BenchCell {
            id: self.id.clone(),
            jobs: self.result.outcome.totals.jobs_completed,
            capacity_skew: 1.0,
            fleet_size: None,
            wall_s: self.wall_s,
            jobs_per_s: self.jobs_per_s,
            segments: None,
            clusters: None,
            peak_rss_bytes: self.peak_rss_bytes,
            trace: None,
        }
    }
}

/// Runs one raw-scale cell: streams the trace into a memory-bounded
/// cluster under the named policy, then snapshots wall-clock, throughput,
/// and peak RSS.
///
/// # Errors
///
/// Returns an error for an unknown policy name or an invalid
/// configuration.
pub fn run_scale_cell(spec: &ScaleSpec, policy: &str) -> Result<ScaleCellRun, String> {
    let cluster = spec.cluster();
    let arrivals = ArrivalSource::from_stream(spec.trace_spec().stream()?);
    let mut allocator = RoundRobinAllocator::new();
    // lint:allow(wall-clock): throughput telemetry only, kept out of reports
    let started = Instant::now();
    let result = match policy {
        "round-robin" => run_streamed(
            policy,
            &cluster,
            arrivals,
            &mut allocator,
            &mut AlwaysOnPower,
            RunLimit::unbounded(),
        )?,
        "rr-timeout-60s" => run_streamed(
            policy,
            &cluster,
            arrivals,
            &mut allocator,
            &mut FixedTimeoutPower::new(RAW_SCALE_TIMEOUT_S),
            RunLimit::unbounded(),
        )?,
        other => {
            return Err(format!(
                "unknown scale policy {other:?}; expected one of {SCALE_POLICIES:?}"
            ))
        }
    };
    let wall_s = started.elapsed().as_secs_f64();
    let jobs = result.outcome.totals.jobs_completed;
    Ok(ScaleCellRun {
        id: spec.cell_id(policy),
        result,
        wall_s,
        jobs_per_s: jobs as f64 / wall_s.max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// Runs the whole regime at `spec`: every policy in [`SCALE_POLICIES`],
/// sequentially (the peak-RSS snapshots require it), in declared order.
///
/// # Errors
///
/// Returns the first failing cell's error.
pub fn run_scale(spec: &ScaleSpec) -> Result<Vec<ScaleCellRun>, String> {
    SCALE_POLICIES
        .iter()
        .map(|policy| run_scale_cell(spec, policy))
        .collect()
}

/// A standalone `BenchReport` for a scale run (used when the rows are not
/// merged into an existing artifact).
pub fn scale_bench_report(runs: &[ScaleCellRun]) -> BenchReport {
    let total_wall_s: f64 = runs.iter().map(|r| r.wall_s).sum();
    let jobs_total: u64 = runs
        .iter()
        .map(|r| r.result.outcome.totals.jobs_completed)
        .sum();
    BenchReport {
        suite: "scale".to_string(),
        threads: 1,
        cells_total: runs.len(),
        total_wall_s,
        cell_wall_s_sum: total_wall_s,
        jobs_total,
        jobs_per_s: jobs_total as f64 / total_wall_s.max(1e-9),
        traces_materialized: 0,
        trace_cache_hits: 0,
        peak_rss_bytes: peak_rss_bytes(),
        expectations: Vec::new(),
        cells: runs.iter().map(ScaleCellRun::bench_cell).collect(),
    }
}

/// Merges scale rows into an existing bench artifact: rows with the same
/// id are replaced in place, new rows append in run order. Only the cell
/// list (and the cell count) change — the report's suite-level wall-clock
/// aggregates still describe the original suite run, which ran in a
/// different process than the scale cells.
pub fn merge_into_report(report: &mut BenchReport, runs: &[ScaleCellRun]) {
    for run in runs {
        let row = run.bench_cell();
        match report.cells.iter_mut().find(|c| c.id == row.id) {
            Some(existing) => *existing = row,
            None => report.cells.push(row),
        }
    }
    report.cells_total = report.cells.len();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized spec: the identical code path at trivial cost.
    fn tiny() -> ScaleSpec {
        ScaleSpec {
            m: 40,
            jobs: 800,
            seed: RAW_SCALE_SEED,
        }
    }

    #[test]
    fn raw_spec_hits_the_pitched_scale() {
        let spec = ScaleSpec::raw();
        assert!(spec.m >= 100_000);
        assert!(spec.jobs >= 1_000_000);
        let config = spec.cluster();
        assert!(config.lazy_accounting);
        assert!(!config.retain_completed_jobs);
        assert_eq!(
            spec.cell_id("round-robin"),
            "scale-m100000/paper/round-robin/s42"
        );
    }

    #[test]
    fn scale_cells_complete_every_job_without_retention() {
        let runs = run_scale(&tiny()).expect("tiny scale regime");
        assert_eq!(runs.len(), SCALE_POLICIES.len());
        for run in &runs {
            assert_eq!(run.result.outcome.totals.jobs_completed, 800, "{}", run.id);
            assert!(
                run.result.latency.is_none(),
                "{}: retention off must drop percentiles",
                run.id
            );
            assert!(run.result.outcome.totals.energy_joules > 0.0);
        }
        // The timeout cell actually consolidates: servers sleep.
        assert!(runs[1].result.fleet.sleep_fraction > 0.0);
        // Always-on never does.
        assert_eq!(runs[0].result.fleet.sleep_fraction, 0.0);
    }

    #[test]
    fn merge_replaces_matching_rows_and_appends_new_ones() {
        let runs = run_scale(&tiny()).expect("tiny scale regime");
        let mut report = scale_bench_report(&runs[..1]);
        assert_eq!(report.cells_total, 1);
        merge_into_report(&mut report, &runs);
        assert_eq!(report.cells_total, 2);
        assert_eq!(report.cells.len(), 2);
        let ids: Vec<&str> = report.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "scale-m40/paper/round-robin/s42",
                "scale-m40/paper/rr-timeout-60s/s42"
            ]
        );
        // Re-merging is idempotent on the cell count.
        merge_into_report(&mut report, &runs);
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let err = run_scale_cell(&tiny(), "least-loaded").unwrap_err();
        assert!(err.contains("unknown scale policy"), "{err}");
    }
}
