#!/usr/bin/env python3
"""Regenerates the committed trace fixtures in this directory.

Deterministic (fixed LCG seeds, no wall clock): rerunning reproduces the
committed bytes exactly. Counter expectations pinned in
crates/trace/tests/fixtures.rs must be updated together with any change
here. See crates/trace/README.md ("Fixtures").
"""
import os

DAY = 86_400.0
SPAN_DAYS = 25.0  # > 3 weeks so weekly segmentation yields 4 segments


class Lcg:
    """Numerical Recipes LCG — stable across python versions."""

    def __init__(self, seed):
        self.state = seed & 0xFFFFFFFFFFFFFFFF

    def next_u64(self):
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        return self.state

    def unit(self):
        return (self.next_u64() >> 11) / float(1 << 53)

    def uniform(self, lo, hi):
        return lo + (hi - lo) * self.unit()

    def shuffle(self, xs):
        for i in range(len(xs) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            xs[i], xs[j] = xs[j], xs[i]


def google(path):
    """task_events: 120 kept (8 demand-defaulted), 3 incomplete,
    2 non-positive-duration, 4 duration-filtered."""
    rng = Lcg(0x600613)
    rows = []
    tasks = (
        [("kept", i) for i in range(120)]
        + [("incomplete", i) for i in range(3)]
        + [("nonpositive", i) for i in range(2)]
        + [("filtered", i) for i in range(4)]
    )
    rng.shuffle(tasks)
    for job_id, (kind, k) in enumerate(tasks, start=1000):
        submit = int(rng.uniform(0.0, SPAN_DAYS * DAY) * 1e6)
        sched = submit + int(rng.uniform(0.5, 30.0) * 1e6)
        cpu = f"{rng.uniform(0.02, 0.6):.4f}"
        mem = f"{rng.uniform(0.01, 0.5):.4f}"
        disk = f"{rng.uniform(0.001, 0.05):.5f}"
        if kind == "kept":
            finish = sched + int(rng.uniform(90.0, 5400.0) * 1e6)
            if k < 8:  # missing demand column -> demand_defaulted
                cpu = ""
            rows.append((submit, f"{submit},,{job_id},0,42,0,user,2,5,{cpu},{mem},{disk},0"))
            rows.append((sched, f"{sched},,{job_id},0,42,1,user,2,5,,,,0"))
            rows.append((finish, f"{finish},,{job_id},0,42,4,user,2,5,,,,0"))
        elif kind == "incomplete":
            rows.append((submit, f"{submit},,{job_id},0,42,0,user,2,5,{cpu},{mem},{disk},0"))
        elif kind == "nonpositive":
            rows.append((submit, f"{submit},,{job_id},0,42,0,user,2,5,{cpu},{mem},{disk},0"))
            rows.append((sched, f"{sched},,{job_id},0,42,1,user,2,5,,,,0"))
            rows.append((sched, f"{sched},,{job_id},0,42,4,user,2,5,,,,0"))
        else:  # filtered: alternate too-short / too-long
            dur = 20.0 if k % 2 == 0 else 9000.0
            finish = sched + int(dur * 1e6)
            rows.append((submit, f"{submit},,{job_id},0,42,0,user,2,5,{cpu},{mem},{disk},0"))
            rows.append((sched, f"{sched},,{job_id},0,42,1,user,2,5,,,,0"))
            rows.append((finish, f"{finish},,{job_id},0,42,4,user,2,5,,,,0"))
    rows.sort(key=lambda r: r[0])  # event log is time-ordered like the real trace
    with open(path, "w") as f:
        f.write("\n".join(r[1] for r in rows) + "\n")
    print(f"{path}: {len(rows)} rows, {len(tasks)} tasks")


def alibaba(path):
    """batch_task: 130 kept (7 demand-defaulted), 8 running + 5 failed
    (incomplete), 3 non-positive-duration, 6 duration-filtered."""
    rng = Lcg(0xA11BABA)
    rows = []
    specs = (
        [("kept", i) for i in range(130)]
        + [("running", i) for i in range(8)]
        + [("failed", i) for i in range(5)]
        + [("nonpositive", i) for i in range(3)]
        + [("filtered", i) for i in range(6)]
    )
    rng.shuffle(specs)
    for task_no, (kind, k) in enumerate(specs, start=1):
        create = int(rng.uniform(0.0, SPAN_DAYS * DAY))
        cpu = f"{rng.uniform(10.0, 90.0):.1f}"
        mem = f"{rng.uniform(0.01, 0.4):.4f}"
        job = 2000 + task_no
        if kind == "kept":
            end = create + int(rng.uniform(90.0, 5400.0))
            if k < 7:  # missing plan columns -> demand_defaulted
                cpu, mem = "", ""
            rows.append((create, f"{create},{end},{job},1,1,Terminated,{cpu},{mem}"))
        elif kind == "running":
            rows.append((create, f"{create},,{job},1,1,Running,{cpu},{mem}"))
        elif kind == "failed":
            end = create + int(rng.uniform(10.0, 500.0))
            rows.append((create, f"{create},{end},{job},1,1,Failed,{cpu},{mem}"))
        elif kind == "nonpositive":
            rows.append((create, f"{create},{create},{job},1,1,Terminated,{cpu},{mem}"))
        else:
            dur = 30 if k % 2 == 0 else 10000
            rows.append((create, f"{create},{create + dur},{job},1,1,Terminated,{cpu},{mem}"))
    rows.sort(key=lambda r: r[0])
    with open(path, "w") as f:
        f.write("\n".join(r[1] for r in rows) + "\n")
    print(f"{path}: {len(rows)} rows")


if __name__ == "__main__":
    here = os.path.dirname(os.path.abspath(__file__))
    google(os.path.join(here, "google_task_events.csv"))
    alibaba(os.path.join(here, "alibaba_batch_task.csv"))
