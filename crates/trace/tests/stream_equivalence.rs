//! Byte-identity of the streaming trace path against materialization.
//!
//! `GeneratorStream` claims *exact* equivalence with
//! `TraceSpec::materialize()` (`generate_n` + first-arrival rebase): the
//! RNG is driven through the identical call sequence, the reorder frontier
//! replicates the stable sort's `(arrival, insertion)` order, and the
//! rebase routes every arrival through the same `SimTime` arithmetic. This
//! suite holds that claim property-style across the whole `WorkloadConfig`
//! shape space — batching on/off, diurnal/weekend structure, correlation
//! extremes, degenerate distributions — and across drift-segmented specs.

use hierdrl_sim::job::Job;
use hierdrl_trace::distributions::Dist;
use hierdrl_trace::drift::{SegmentShift, SegmentedTraceSpec};
use hierdrl_trace::generator::WorkloadConfig;
use hierdrl_trace::materialize::TraceSpec;

/// Every structurally distinct generator shape: each entry perturbs a
/// different mechanism of the generator (thinning, batching, jitter,
/// correlation, clamps), so a divergence in any code path shows up.
fn config_shapes() -> Vec<(&'static str, WorkloadConfig)> {
    let base = |seed| WorkloadConfig::google_like(seed, 80_000.0);
    let mut shapes = vec![("google_like", base(11))];

    let mut no_batch = base(12);
    no_batch.batch_mean = 1.0;
    shapes.push(("no_batching", no_batch));

    let mut heavy_batch = base(13);
    heavy_batch.batch_mean = 16.0;
    shapes.push(("heavy_batching", heavy_batch));

    let mut zero_jitter = base(14);
    zero_jitter.batch_jitter = Dist::Constant(0.0);
    shapes.push(("zero_jitter_ties", zero_jitter));

    let mut wide_jitter = base(15);
    wide_jitter.batch_jitter = Dist::Exponential { mean: 600.0 };
    shapes.push(("wide_jitter_reorders", wide_jitter));

    let mut flat = base(16);
    flat.arrivals.diurnal_amplitude = 0.0;
    flat.arrivals.weekend_factor = 1.0;
    shapes.push(("flat_arrivals", flat));

    let mut spiky = base(17);
    spiky.arrivals.diurnal_amplitude = 0.9;
    spiky.arrivals.weekend_factor = 0.2;
    shapes.push(("spiky_arrivals", spiky));

    let mut uncorrelated = base(18);
    uncorrelated.mem_cpu_correlation = 0.0;
    shapes.push(("uncorrelated_mem", uncorrelated));

    let mut fully_correlated = base(19);
    fully_correlated.mem_cpu_correlation = 1.0;
    shapes.push(("fully_correlated_mem", fully_correlated));

    let mut constant_everything = base(20);
    constant_everything.duration = Dist::Constant(120.0);
    constant_everything.cpu_demand = Dist::Constant(0.01);
    constant_everything.mem_demand = Dist::Constant(0.02);
    constant_everything.disk_demand = Dist::Constant(0.005);
    shapes.push(("constant_distributions", constant_everything));

    let mut tight_clamps = base(21);
    tight_clamps.min_demand = 0.009;
    tight_clamps.max_demand = 0.011;
    shapes.push(("tight_demand_clamps", tight_clamps));

    shapes
}

#[test]
fn stream_is_byte_identical_for_every_config_shape() {
    for (name, config) in config_shapes() {
        for jobs in [0usize, 1, 7, 1_000] {
            let spec = TraceSpec::new(config.clone(), jobs);
            let materialized = spec.materialize().unwrap_or_else(|e| {
                panic!("shape {name}: materialize failed: {e}");
            });
            let streamed: Vec<Job> = spec
                .stream()
                .unwrap_or_else(|e| panic!("shape {name}: stream failed: {e}"))
                .collect();
            assert_eq!(
                materialized.jobs(),
                streamed.as_slice(),
                "shape {name} jobs={jobs}: streamed trace diverged"
            );
        }
    }
}

#[test]
fn stream_is_byte_identical_across_seeds() {
    let config = |seed| WorkloadConfig::google_like(seed, 95_000.0);
    for seed in 0..8u64 {
        let spec = TraceSpec::new(config(seed), 3_000);
        let materialized = spec.materialize().unwrap();
        let streamed: Vec<Job> = spec.stream().unwrap().collect();
        assert_eq!(
            materialized.jobs(),
            streamed.as_slice(),
            "seed {seed}: streamed trace diverged"
        );
    }
}

#[test]
fn segmented_streams_are_byte_identical_per_segment() {
    let base = WorkloadConfig::google_like(23, 70_000.0);
    let shifts = [
        SegmentShift::Stationary,
        SegmentShift::RateScale(2.5),
        SegmentShift::Pattern {
            diurnal_amplitude: 0.8,
            peak_hour: 3.0,
            weekend_factor: 1.2,
        },
        SegmentShift::BatchMean(9.0),
    ];
    let spec = SegmentedTraceSpec::from_shifts(&base, &shifts, 2_001, 77);
    let streams = spec.streams().unwrap();
    assert_eq!(streams.len(), shifts.len());
    for (i, (seg_spec, stream)) in spec.segments.iter().zip(streams).enumerate() {
        let materialized = seg_spec.materialize().unwrap();
        let streamed: Vec<Job> = stream.collect();
        assert_eq!(
            materialized.jobs(),
            streamed.as_slice(),
            "segment {i}: streamed segment diverged"
        );
    }
}
