//! Property-based tests of the workload substrate.

use hierdrl_trace::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any google-like configuration produces a valid, sorted trace whose
    /// durations and demands respect the configured clamps.
    #[test]
    fn generated_traces_are_valid(seed in 0u64..500, jobs_per_week in 10_000.0f64..150_000.0) {
        let config = WorkloadConfig::google_like(seed, jobs_per_week);
        let (lo, hi) = (config.min_demand, config.max_demand);
        let trace = TraceGenerator::new(config).unwrap().generate_n(300);
        prop_assert_eq!(trace.len(), 300);
        for w in trace.jobs().windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        for j in trace.jobs() {
            prop_assert!((60.0..=7200.0).contains(&j.duration));
            for &d in j.demand.as_slice() {
                prop_assert!((lo..=hi).contains(&d));
            }
        }
    }

    /// The realized arrival rate tracks the configured volume within a
    /// generous statistical tolerance.
    #[test]
    fn arrival_rate_matches_configuration(seed in 0u64..200) {
        let target_per_week = 95_000.0;
        let config = WorkloadConfig::google_like(seed, target_per_week);
        let trace = TraceGenerator::new(config).unwrap().generate(SECS_PER_WEEK);
        let n = trace.len() as f64;
        prop_assert!((n - target_per_week).abs() < target_per_week * 0.10,
            "weekly count {n} too far from {target_per_week}");
    }

    /// Segmenting preserves every job and re-bases each segment at zero.
    #[test]
    fn segments_partition_without_loss(seed in 0u64..200, k in 1usize..8) {
        let config = WorkloadConfig::google_like(seed, 50_000.0);
        let trace = TraceGenerator::new(config).unwrap().generate_n(200);
        let segments = trace.segments(k);
        prop_assert_eq!(segments.len(), k);
        let total: usize = segments.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, 200);
        for seg in &segments {
            if let Some(first) = seg.jobs().first() {
                prop_assert_eq!(first.arrival.as_secs(), 0.0);
            }
        }
    }

    /// JSON round-trips preserve traces exactly.
    #[test]
    fn json_round_trip(seed in 0u64..100) {
        let config = WorkloadConfig::google_like(seed, 30_000.0);
        let trace = TraceGenerator::new(config).unwrap().generate_n(50);
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// The arrival pattern's max_rate really bounds rate_at everywhere.
    #[test]
    fn pattern_bound_holds(base in 0.001f64..2.0, amp in 0.0f64..0.95,
                           peak in 0.0f64..24.0, weekend in 0.2f64..1.5,
                           t in 0.0f64..1_000_000.0) {
        let p = ArrivalPattern {
            base_rate: base,
            diurnal_amplitude: amp,
            peak_hour: peak,
            weekend_factor: weekend,
        };
        prop_assert!(p.rate_at(t) <= p.max_rate() + 1e-12);
        prop_assert!(p.rate_at(t) >= 0.0);
    }

    /// Per-segment derived seeds are pairwise independent: perturbing one
    /// segment's shift (its config) leaves every *other* segment's
    /// materialized trace byte-identical, and distinct segments never
    /// share a seed.
    #[test]
    fn perturbing_one_segment_leaves_others_byte_identical(
        seed in 0u64..500, k in 2usize..6, target in 0usize..6, factor in 1.1f64..4.0,
    ) {
        let target = target % k;
        let base = WorkloadConfig::google_like(9, 40_000.0);
        let shifts = vec![SegmentShift::Stationary; k];
        let mut perturbed = shifts.clone();
        perturbed[target] = SegmentShift::RateScale(factor);

        let a = SegmentedTraceSpec::from_shifts(&base, &shifts, 60 * k, seed);
        let b = SegmentedTraceSpec::from_shifts(&base, &perturbed, 60 * k, seed);

        let mut seeds: Vec<u64> = a.segments.iter().map(|s| s.workload.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), k, "segment seeds must be pairwise distinct");

        for i in 0..k {
            let ta = a.segments[i].materialize().unwrap();
            let tb = b.segments[i].materialize().unwrap();
            if i == target {
                prop_assert_ne!(ta.jobs(), tb.jobs(), "the perturbed segment must change");
            } else {
                prop_assert_eq!(
                    ta.jobs(), tb.jobs(),
                    "untouched segment {} must stay byte-identical", i
                );
            }
        }
    }

    /// Distribution samples are finite and respect support constraints.
    #[test]
    fn distribution_samples_are_sane(seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = [
            Dist::Constant(5.0),
            Dist::Uniform { lo: 1.0, hi: 2.0 },
            Dist::Exponential { mean: 10.0 },
            Dist::LogNormal { mu: 0.0, sigma: 1.0 },
            Dist::clipped_log_normal_median(480.0, 1.1, 60.0, 7200.0),
        ];
        for d in dists {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite());
                prop_assert!(x >= 0.0, "{d:?} produced negative {x}");
            }
        }
    }
}
