//! Scalar sampling distributions for workload synthesis.
//!
//! Implemented locally (Box–Muller for normals) so the crate depends only
//! on `rand`'s uniform sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-dimensional sampling distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean (`1 / rate`).
        mean: f64,
    },
    /// Log-normal: `exp(N(mu, sigma^2))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Log-normal clamped to `[min, max]` — the paper's job durations are
    /// clipped to [1 minute, 2 hours] this way.
    ClippedLogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
    },
}

impl Dist {
    /// A log-normal specified by its median and shape, clipped to bounds.
    pub fn clipped_log_normal_median(median: f64, sigma: f64, min: f64, max: f64) -> Self {
        Dist::ClippedLogNormal {
            mu: median.ln(),
            sigma,
            min,
            max,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Dist::Exponential { mean } => {
                // Inverse CDF; 1 - u avoids ln(0).
                let u: f64 = 1.0 - rng.gen::<f64>();
                -mean * u.ln()
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::ClippedLogNormal {
                mu,
                sigma,
                min,
                max,
            } => (mu + sigma * standard_normal(rng)).exp().clamp(min, max),
        }
    }

    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Dist::Constant(v) => {
                if !v.is_finite() {
                    return Err(format!("constant must be finite, got {v}"));
                }
            }
            Dist::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                    return Err(format!("uniform requires lo < hi, got [{lo}, {hi})"));
                }
            }
            Dist::Exponential { mean } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(format!("exponential mean must be positive, got {mean}"));
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
                    return Err(format!("log-normal params invalid: mu={mu} sigma={sigma}"));
                }
            }
            Dist::ClippedLogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
                    return Err(format!("log-normal params invalid: mu={mu} sigma={sigma}"));
                }
                if !(min.is_finite() && max.is_finite() && min > 0.0 && min <= max) {
                    return Err(format!("clip bounds invalid: [{min}, {max}]"));
                }
            }
        }
        Ok(())
    }
}

/// Standard normal variate via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_returns_value() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dist::Constant(3.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dist::Uniform { lo: 2.0, hi: 5.0 };
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_calibrated() {
        let mean = sample_mean(Dist::Exponential { mean: 10.0 }, 50_000, 2);
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn lognormal_median_matches_exp_mu() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dist::LogNormal {
            mu: (480.0f64).ln(),
            sigma: 1.0,
        };
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median - 480.0).abs() < 480.0 * 0.1,
            "median {median} far from 480"
        );
    }

    #[test]
    fn clipped_lognormal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Dist::clipped_log_normal_median(480.0, 1.2, 60.0, 7200.0);
        for _ in 0..5000 {
            let x = d.sample(&mut rng);
            assert!((60.0..=7200.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(Dist::Uniform { lo: 5.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::Exponential { mean: -1.0 }.validate().is_err());
        assert!(Dist::ClippedLogNormal {
            mu: 0.0,
            sigma: 1.0,
            min: 10.0,
            max: 5.0
        }
        .validate()
        .is_err());
        assert!(Dist::clipped_log_normal_median(480.0, 1.2, 60.0, 7200.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn serde_round_trip() {
        let d = Dist::clipped_log_normal_median(480.0, 1.2, 60.0, 7200.0);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
