//! Time-varying arrival-rate patterns.
//!
//! Real cloud workloads are non-stationary (the paper stresses that its
//! agents must cope with "realistic, non-stationary cloud environments");
//! this module models the dominant structure of the Google traces: a
//! diurnal cycle and a weekday/weekend effect.

use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const SECS_PER_DAY: f64 = 86_400.0;
/// Seconds per week.
pub const SECS_PER_WEEK: f64 = 7.0 * SECS_PER_DAY;

/// A non-homogeneous Poisson arrival-rate profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalPattern {
    /// Long-run average arrival rate, jobs per second.
    pub base_rate: f64,
    /// Relative amplitude of the diurnal cycle in `[0, 1)`; 0 is stationary.
    pub diurnal_amplitude: f64,
    /// Hour of day (0-24) at which the diurnal cycle peaks.
    pub peak_hour: f64,
    /// Rate multiplier applied on days 5 and 6 of each week (the weekend).
    pub weekend_factor: f64,
}

impl ArrivalPattern {
    /// A stationary Poisson process.
    pub fn stationary(rate: f64) -> Self {
        Self {
            base_rate: rate,
            diurnal_amplitude: 0.0,
            peak_hour: 0.0,
            weekend_factor: 1.0,
        }
    }

    /// A Google-trace-like profile: mid-afternoon peak, moderate diurnal
    /// swing, slightly quieter weekends.
    pub fn google_like(base_rate: f64) -> Self {
        Self {
            base_rate,
            diurnal_amplitude: 0.35,
            peak_hour: 15.0,
            weekend_factor: 0.8,
        }
    }

    /// Instantaneous arrival rate at time `t` (seconds from trace start,
    /// where the trace starts at hour 0 of day 0).
    pub fn rate_at(&self, t: f64) -> f64 {
        let hour = (t.rem_euclid(SECS_PER_DAY)) / 3600.0;
        let day = (t.rem_euclid(SECS_PER_WEEK) / SECS_PER_DAY) as usize;
        let diurnal = 1.0
            + self.diurnal_amplitude
                * ((hour - self.peak_hour) * std::f64::consts::TAU / 24.0).cos();
        let weekly = if day >= 5 { self.weekend_factor } else { 1.0 };
        (self.base_rate * diurnal * weekly).max(0.0)
    }

    /// A tight upper bound on [`ArrivalPattern::rate_at`], used for
    /// Poisson thinning.
    pub fn max_rate(&self) -> f64 {
        self.base_rate * (1.0 + self.diurnal_amplitude) * self.weekend_factor.max(1.0)
    }

    /// The week-averaged rate as a multiple of `base_rate`. The diurnal
    /// cosine integrates to zero over a day, so only the weekend factor
    /// shifts the mean: `(5 + 2 * weekend_factor) / 7`.
    pub fn mean_rate_factor(&self) -> f64 {
        (5.0 + 2.0 * self.weekend_factor) / 7.0
    }

    /// The week-averaged arrival rate, jobs per second.
    pub fn mean_rate(&self) -> f64 {
        self.base_rate * self.mean_rate_factor()
    }

    /// Validates the pattern.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_rate.is_finite() && self.base_rate > 0.0) {
            return Err(format!(
                "base_rate must be positive, got {}",
                self.base_rate
            ));
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(format!(
                "diurnal_amplitude must be in [0, 1), got {}",
                self.diurnal_amplitude
            ));
        }
        if !(0.0..=24.0).contains(&self.peak_hour) {
            return Err(format!(
                "peak_hour must be in [0, 24], got {}",
                self.peak_hour
            ));
        }
        if !(self.weekend_factor.is_finite() && self.weekend_factor > 0.0) {
            return Err(format!(
                "weekend_factor must be positive, got {}",
                self.weekend_factor
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_rate_is_constant() {
        let p = ArrivalPattern::stationary(0.5);
        assert_eq!(p.rate_at(0.0), 0.5);
        assert_eq!(p.rate_at(123_456.0), 0.5);
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let p = ArrivalPattern::google_like(1.0);
        let peak = p.rate_at(15.0 * 3600.0);
        let trough = p.rate_at(3.0 * 3600.0);
        assert!(peak > trough);
        assert!((peak - 1.35).abs() < 1e-9);
    }

    #[test]
    fn weekend_is_quieter() {
        let p = ArrivalPattern::google_like(1.0);
        let monday_noon = p.rate_at(12.0 * 3600.0);
        let saturday_noon = p.rate_at(5.0 * SECS_PER_DAY + 12.0 * 3600.0);
        assert!((saturday_noon - 0.8 * monday_noon).abs() < 1e-9);
    }

    #[test]
    fn max_rate_bounds_rate_at() {
        let p = ArrivalPattern::google_like(0.2);
        let max = p.max_rate();
        for i in 0..(7 * 24) {
            let r = p.rate_at(i as f64 * 3600.0);
            assert!(r <= max + 1e-12, "rate {r} exceeds bound {max} at hour {i}");
        }
    }

    #[test]
    fn rate_is_periodic_weekly() {
        let p = ArrivalPattern::google_like(1.0);
        let t = 2.5 * SECS_PER_DAY;
        assert!((p.rate_at(t) - p.rate_at(t + SECS_PER_WEEK)).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(ArrivalPattern::google_like(0.15).validate().is_ok());
        assert!(ArrivalPattern::stationary(-1.0).validate().is_err());
        let mut p = ArrivalPattern::google_like(1.0);
        p.diurnal_amplitude = 1.5;
        assert!(p.validate().is_err());
    }
}
