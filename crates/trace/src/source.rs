//! A common interface over every way a workload trace can originate:
//! synthetic generation, the Google ClusterData-2011 `task_events` parser,
//! and the Alibaba cluster-trace-v2017 `batch_task` parser.
//!
//! Consumers (the `hierdrl-exp` suite runner, bench bins) program against
//! [`TraceSource`]: jobs come back in arrival order, either materialized
//! ([`TraceSource::load`]) or streamed ([`TraceSource::stream`]), and every
//! source reports [`ParseStats`]-style provenance so callers can decide
//! whether the demand columns are trustworthy before using them —
//! see [`ParseStats::demand_defaulted`] and [`with_synthetic_demands`].
//!
//! # Example
//!
//! A real-trace source over an in-memory fixture (the on-disk form is
//! [`RealTraceSource::from_path`]); streaming and loading are
//! byte-identical:
//!
//! ```
//! use hierdrl_trace::prelude::*;
//!
//! let csv = "\
//! 100,400,1,1,1,Terminated,50,0.25
//! 900,1500,2,1,1,Terminated,25,0.125";
//! let source = RealTraceSource::from_csv(csv, TraceFormat::AlibabaBatchTask);
//! let (trace, stats) = source.load()?;
//! assert_eq!(stats.jobs_kept, 2);
//! assert_eq!(stats.demand_defaulted, 0);
//!
//! let streamed: Vec<_> = source.stream()?.collect();
//! assert_eq!(trace.jobs(), streamed.as_slice());
//! # Ok::<(), String>(())
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, Cursor};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::drift::mix_seed;
use crate::google::{ParseStats, PAPER_MAX_DURATION_S, PAPER_MIN_DURATION_S};
use crate::materialize::TraceSpec;
use crate::stream::{JobStream, TraceStream};
use crate::trace::Trace;
use crate::{alibaba, google};
use hierdrl_sim::job::Job;

/// On-disk trace formats with a parser behind [`RealTraceSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFormat {
    /// Google ClusterData-2011 `task_events` CSV ([`crate::google`]).
    GoogleTaskEvents,
    /// Alibaba cluster-trace-v2017 `batch_task` CSV ([`crate::alibaba`]).
    AlibabaBatchTask,
}

impl TraceFormat {
    /// Short stable name, used in CLI flags and report columns.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::GoogleTaskEvents => "google",
            TraceFormat::AlibabaBatchTask => "alibaba",
        }
    }

    /// Inverse of [`TraceFormat::name`]; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "google" => Some(TraceFormat::GoogleTaskEvents),
            "alibaba" => Some(TraceFormat::AlibabaBatchTask),
            _ => None,
        }
    }
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A source of jobs in arrival order with parse provenance.
///
/// The two access paths are equivalent by contract: the jobs yielded by
/// [`TraceSource::stream`] are byte-identical to
/// [`TraceSource::load`]`.0.jobs()` — committed tests pin this for every
/// implementation in this crate.
pub trait TraceSource {
    /// Human-readable identity of the source (path, format, or recipe).
    fn label(&self) -> String;

    /// Materializes the full trace along with what the source did to the
    /// raw rows to produce it. Synthetic sources report an all-kept
    /// [`ParseStats`] (every job "row" kept, nothing defaulted).
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O, parse, or config failure.
    fn load(&self) -> Result<(Trace, ParseStats), String>;

    /// Streams the same jobs lazily. The default implementation loads and
    /// replays; sources with a genuinely lazy path override it.
    ///
    /// # Errors
    ///
    /// See [`TraceSource::load`].
    fn stream(&self) -> Result<Box<dyn JobStream>, String> {
        let (trace, _) = self.load()?;
        Ok(Box::new(TraceStream::new(Arc::new(trace))))
    }
}

/// The synthetic-generator path behind the [`TraceSource`] interface: a
/// [`TraceSpec`] recipe, loaded via `materialize()` or streamed via the
/// byte-identical [`crate::stream::GeneratorStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSource {
    spec: TraceSpec,
}

impl SyntheticSource {
    /// Wraps a trace recipe.
    pub fn new(spec: TraceSpec) -> Self {
        Self { spec }
    }

    /// The underlying recipe.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }
}

impl TraceSource for SyntheticSource {
    fn label(&self) -> String {
        format!("synthetic:{}", self.spec.fingerprint())
    }

    fn load(&self) -> Result<(Trace, ParseStats), String> {
        let trace = self.spec.materialize()?;
        let n = trace.len();
        Ok((
            trace,
            ParseStats {
                rows: n,
                tasks_seen: n,
                jobs_kept: n,
                ..ParseStats::default()
            },
        ))
    }

    fn stream(&self) -> Result<Box<dyn JobStream>, String> {
        Ok(Box::new(self.spec.stream()?))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Input {
    Path(PathBuf),
    Memory(String),
}

/// An on-disk (or in-memory) real trace file behind the [`TraceSource`]
/// interface, parsed by the format's parser with the paper's duration
/// window unless overridden.
#[derive(Debug, Clone, PartialEq)]
pub struct RealTraceSource {
    input: Input,
    /// Which parser reads the bytes.
    pub format: TraceFormat,
    /// Lower duration bound (seconds); defaults to the paper's 1 minute.
    pub min_duration_s: f64,
    /// Upper duration bound (seconds); defaults to the paper's 2 hours.
    pub max_duration_s: f64,
}

impl RealTraceSource {
    /// A source reading `path` with the paper's duration window.
    pub fn from_path(path: impl AsRef<Path>, format: TraceFormat) -> Self {
        Self {
            input: Input::Path(path.as_ref().to_path_buf()),
            format,
            min_duration_s: PAPER_MIN_DURATION_S,
            max_duration_s: PAPER_MAX_DURATION_S,
        }
    }

    /// An in-memory source over CSV text — for tests and doctests; parses
    /// identically to [`RealTraceSource::from_path`].
    pub fn from_csv(csv: impl Into<String>, format: TraceFormat) -> Self {
        Self {
            input: Input::Memory(csv.into()),
            format,
            min_duration_s: PAPER_MIN_DURATION_S,
            max_duration_s: PAPER_MAX_DURATION_S,
        }
    }

    /// Replaces the paper's duration window.
    #[must_use]
    pub fn with_duration_window(mut self, min_s: f64, max_s: f64) -> Self {
        self.min_duration_s = min_s;
        self.max_duration_s = max_s;
        self
    }

    fn parse<R: std::io::BufRead>(&self, reader: R) -> Result<(Trace, ParseStats), String> {
        let parsed = match self.format {
            TraceFormat::GoogleTaskEvents => google::parse_task_events_with_stats(
                reader,
                self.min_duration_s,
                self.max_duration_s,
            ),
            TraceFormat::AlibabaBatchTask => alibaba::parse_batch_tasks_with_stats(
                reader,
                self.min_duration_s,
                self.max_duration_s,
            ),
        };
        parsed.map_err(|e| format!("{}: {e}", self.label()))
    }
}

impl TraceSource for RealTraceSource {
    fn label(&self) -> String {
        match &self.input {
            Input::Path(p) => format!("{}:{}", self.format.name(), p.display()),
            Input::Memory(_) => format!("{}:<memory>", self.format.name()),
        }
    }

    fn load(&self) -> Result<(Trace, ParseStats), String> {
        match &self.input {
            Input::Path(p) => {
                let file =
                    File::open(p).map_err(|e| format!("cannot open {}: {e}", p.display()))?;
                self.parse(BufReader::new(file))
            }
            Input::Memory(csv) => self.parse(Cursor::new(csv.as_bytes())),
        }
    }
}

/// Replaces every job's demand vector with a deterministic synthetic one
/// derived from `seed` and the job's position — the fallback the suite
/// runner applies when a real trace's [`ParseStats::demand_defaulted`]
/// fraction is too high to trust the demand columns (arrivals and
/// durations are kept; only demands are resampled).
///
/// Components are SplitMix64-derived uniforms: CPU and memory in
/// `[0.05, 0.5]`, disk in `[1e-4, 0.2]` — always valid for a normalized
/// server, and identical across runs and platforms.
pub fn with_synthetic_demands(trace: &Trace, seed: u64) -> Trace {
    let unit = |bits: u64| (bits >> 11) as f64 / (1u64 << 53) as f64;
    let jobs: Vec<Job> = trace
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let job_seed = mix_seed(seed, i as u64);
            let cpu = 0.05 + 0.45 * unit(mix_seed(job_seed, 1));
            let mem = 0.05 + 0.45 * unit(mix_seed(job_seed, 2));
            let disk = 1e-4 + 0.2 * unit(mix_seed(job_seed, 3));
            Job::new(
                j.id,
                j.arrival,
                j.duration,
                hierdrl_sim::resources::ResourceVec::cpu_mem_disk(cpu, mem, disk),
            )
        })
        .collect();
    Trace::new(jobs).expect("same arrivals, valid demands")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;

    #[test]
    fn synthetic_source_stream_matches_load() {
        let source = SyntheticSource::new(TraceSpec::new(
            WorkloadConfig::google_like(11, 60_000.0),
            800,
        ));
        let (trace, stats) = source.load().unwrap();
        assert_eq!(stats.jobs_kept, 800);
        assert_eq!(stats.rows, 800);
        assert_eq!(stats.demand_defaulted, 0);
        let streamed: Vec<Job> = source.stream().unwrap().collect();
        assert_eq!(trace.jobs(), streamed.as_slice());
    }

    #[test]
    fn real_source_stream_matches_load_for_both_formats() {
        let google_csv = "\
1000000,,1,0,42,0,u,2,5,0.25,0.1,0.01,0
2000000,,1,0,42,1,u,2,5,,,,0
302000000,,1,0,42,4,u,2,5,,,,0";
        let alibaba_csv = "\
100,400,1,1,1,Terminated,50,0.25
900,1500,2,1,1,Terminated,25,0.125";
        for (csv, format) in [
            (google_csv, TraceFormat::GoogleTaskEvents),
            (alibaba_csv, TraceFormat::AlibabaBatchTask),
        ] {
            let source = RealTraceSource::from_csv(csv, format);
            let (trace, stats) = source.load().unwrap();
            assert!(stats.jobs_kept > 0, "{}", source.label());
            let streamed: Vec<Job> = source.stream().unwrap().collect();
            assert_eq!(trace.jobs(), streamed.as_slice(), "{}", source.label());
        }
    }

    #[test]
    fn missing_file_reports_path_in_error() {
        let source =
            RealTraceSource::from_path("/nonexistent/trace.csv", TraceFormat::GoogleTaskEvents);
        let err = source.load().unwrap_err();
        assert!(err.contains("/nonexistent/trace.csv"), "{err}");
    }

    #[test]
    fn parse_errors_carry_the_source_label() {
        let source = RealTraceSource::from_csv("garbage", TraceFormat::AlibabaBatchTask);
        let err = source.load().unwrap_err();
        assert!(err.contains("alibaba:<memory>"), "{err}");
    }

    #[test]
    fn format_names_round_trip() {
        for f in [TraceFormat::GoogleTaskEvents, TraceFormat::AlibabaBatchTask] {
            assert_eq!(TraceFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(TraceFormat::from_name("swim"), None);
    }

    #[test]
    fn synthetic_demands_are_deterministic_and_bounded() {
        let source = RealTraceSource::from_csv(
            "100,400,1,1,1,Terminated,,\n900,1500,2,1,1,Terminated,,",
            TraceFormat::AlibabaBatchTask,
        );
        let (trace, stats) = source.load().unwrap();
        assert_eq!(stats.demand_defaulted, 2);
        let a = with_synthetic_demands(&trace, 42);
        let b = with_synthetic_demands(&trace, 42);
        assert_eq!(a, b, "same seed, same demands");
        let c = with_synthetic_demands(&trace, 43);
        assert_ne!(a, c, "different seed perturbs demands");
        for (orig, repl) in trace.jobs().iter().zip(a.jobs()) {
            assert_eq!(orig.arrival, repl.arrival);
            assert_eq!(orig.duration, repl.duration);
            for d in repl.demand.as_slice() {
                assert!(*d > 0.0 && *d <= 1.0);
            }
            assert!(repl.demand.get(0) >= 0.05);
        }
    }
}
