//! Workload traces: validated job sequences with statistics and slicing.

use hierdrl_sim::job::Job;
use hierdrl_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or loading a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Jobs were not sorted by arrival time.
    Unsorted {
        /// Index of the first out-of-order job.
        index: usize,
    },
    /// A job failed validation.
    InvalidJob {
        /// Index of the offending job.
        index: usize,
        /// Description of the problem.
        reason: String,
    },
    /// (De)serialization failed.
    Serde(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Unsorted { index } => {
                write!(f, "jobs not sorted by arrival (first violation at {index})")
            }
            TraceError::InvalidJob { index, reason } => {
                write!(f, "invalid job at index {index}: {reason}")
            }
            TraceError::Serde(e) => write!(f, "trace serialization error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub count: usize,
    /// Time between the first and last arrival, seconds.
    pub span_s: f64,
    /// Mean arrival rate over the span, jobs per second.
    pub arrival_rate: f64,
    /// Mean job duration, seconds.
    pub mean_duration_s: f64,
    /// Mean CPU demand (normalized).
    pub mean_cpu: f64,
    /// Mean memory demand (normalized).
    pub mean_mem: f64,
    /// Mean disk demand (normalized).
    pub mean_disk: f64,
    /// Largest single demand component in the trace.
    pub max_demand: f64,
}

impl TraceStats {
    /// Expected average CPU load offered to a cluster of `m` servers, as a
    /// fraction of total CPU capacity (Little's law:
    /// `rate * mean_duration * mean_cpu / m`).
    pub fn offered_cpu_load(&self, m: usize) -> f64 {
        assert!(m > 0, "cluster size must be positive");
        self.arrival_rate * self.mean_duration_s * self.mean_cpu / m as f64
    }
}

/// A validated workload trace: jobs sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Wraps a job list, validating sort order and demand sanity.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Unsorted`] or [`TraceError::InvalidJob`].
    pub fn new(jobs: Vec<Job>) -> Result<Self, TraceError> {
        for (i, w) in jobs.windows(2).enumerate() {
            if w[1].arrival < w[0].arrival {
                return Err(TraceError::Unsorted { index: i + 1 });
            }
        }
        for (i, j) in jobs.iter().enumerate() {
            if !(j.duration.is_finite() && j.duration > 0.0) {
                return Err(TraceError::InvalidJob {
                    index: i,
                    reason: format!("non-positive duration {}", j.duration),
                });
            }
            if j.demand.as_slice().iter().any(|&d| d > 1.0 + 1e-9) {
                return Err(TraceError::InvalidJob {
                    index: i,
                    reason: format!("demand {} exceeds one server", j.demand),
                });
            }
        }
        Ok(Self { jobs })
    }

    /// Sorts `jobs` by arrival and wraps them.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidJob`] for invalid jobs.
    pub fn from_unsorted(mut jobs: Vec<Job>) -> Result<Self, TraceError> {
        jobs.sort_by_key(|a| a.arrival);
        Self::new(jobs)
    }

    /// The jobs, sorted by arrival.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Consumes the trace, returning the job list.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Summary statistics; `None` for an empty trace.
    pub fn stats(&self) -> Option<TraceStats> {
        if self.jobs.is_empty() {
            return None;
        }
        let n = self.jobs.len();
        let first = self.jobs[0].arrival.as_secs();
        let last = self.jobs[n - 1].arrival.as_secs();
        let span = (last - first).max(1e-9);
        let mut dur = 0.0;
        let mut cpu = 0.0;
        let mut mem = 0.0;
        let mut disk = 0.0;
        let mut max_d: f64 = 0.0;
        for j in &self.jobs {
            dur += j.duration;
            cpu += j.demand.get(0);
            if j.demand.dims() > 1 {
                mem += j.demand.get(1);
            }
            if j.demand.dims() > 2 {
                disk += j.demand.get(2);
            }
            max_d = max_d.max(j.demand.max_component());
        }
        let nf = n as f64;
        Some(TraceStats {
            count: n,
            span_s: span,
            arrival_rate: nf / span,
            mean_duration_s: dur / nf,
            mean_cpu: cpu / nf,
            mean_mem: mem / nf,
            mean_disk: disk / nf,
            max_demand: max_d,
        })
    }

    /// Splits the trace into `k` contiguous segments of (nearly) equal job
    /// count, each re-based so its first arrival is at time zero — the
    /// paper splits the month-long Google trace into week-scale segments
    /// this way.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn segments(&self, k: usize) -> Vec<Trace> {
        assert!(k > 0, "segment count must be positive");
        let n = self.jobs.len();
        let mut out = Vec::with_capacity(k);
        for s in 0..k {
            let lo = n * s / k;
            let hi = n * (s + 1) / k;
            out.push(Self::rebased_slice(&self.jobs[lo..hi]));
        }
        out
    }

    /// Returns the first `count` jobs as a re-based trace (arrivals shifted
    /// so the first is at zero).
    pub fn take(&self, count: usize) -> Trace {
        Self::rebased_slice(&self.jobs[..count.min(self.jobs.len())])
    }

    /// Splits the trace at wall-clock boundaries: each segment covers
    /// `window_s` seconds of arrivals (relative to the first arrival) and
    /// is re-based so its own first arrival is at time zero. Windows with
    /// no arrivals are skipped, so every returned segment is non-empty —
    /// this is how a real month-long trace becomes the week-long regime
    /// segments the drift axis replays ([`crate::pattern::SECS_PER_WEEK`]
    /// is the canonical window).
    ///
    /// Unlike [`Trace::segments`], segment sizes follow the trace's own
    /// arrival intensity rather than being equalized by job count.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    pub fn segments_by_wall_clock(&self, window_s: f64) -> Vec<Trace> {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "wall-clock window must be positive, got {window_s}"
        );
        if self.jobs.is_empty() {
            return Vec::new();
        }
        let base = self.jobs[0].arrival.as_secs();
        let mut out = Vec::new();
        let mut lo = 0usize;
        while lo < self.jobs.len() {
            let window = ((self.jobs[lo].arrival.as_secs() - base) / window_s).floor();
            let end = base + (window + 1.0) * window_s;
            let mut hi = lo + 1;
            while hi < self.jobs.len() && self.jobs[hi].arrival.as_secs() < end {
                hi += 1;
            }
            out.push(Self::rebased_slice(&self.jobs[lo..hi]));
            lo = hi;
        }
        out
    }

    fn rebased_slice(slice: &[Job]) -> Trace {
        if slice.is_empty() {
            return Trace { jobs: Vec::new() };
        }
        let base = slice[0].arrival;
        let jobs = slice
            .iter()
            .map(|j| {
                Job::new(
                    j.id,
                    SimTime::from_secs(j.arrival.since(base)),
                    j.duration,
                    j.demand.clone(),
                )
            })
            .collect();
        Trace { jobs }
    }

    /// Serializes the trace to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serde`] on failure.
    pub fn to_json(&self) -> Result<String, TraceError> {
        serde_json::to_string(&self.jobs).map_err(|e| TraceError::Serde(e.to_string()))
    }

    /// Loads a trace from JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serde`] on malformed JSON, or a validation
    /// error for inconsistent jobs.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let jobs: Vec<Job> =
            serde_json::from_str(json).map_err(|e| TraceError::Serde(e.to_string()))?;
        Self::new(jobs)
    }

    /// Per-server inter-arrival times (seconds) of the whole trace, for
    /// predictor training/evaluation.
    pub fn inter_arrival_times(&self) -> Vec<f64> {
        self.jobs
            .windows(2)
            .map(|w| w[1].arrival.since(w[0].arrival))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierdrl_sim::job::JobId;
    use hierdrl_sim::resources::ResourceVec;

    fn job(id: u64, t: f64, dur: f64) -> Job {
        Job::new(
            JobId(id),
            SimTime::from_secs(t),
            dur,
            ResourceVec::cpu_mem_disk(0.1, 0.2, 0.05),
        )
    }

    #[test]
    fn sorted_jobs_accepted() {
        let t = Trace::new(vec![job(0, 0.0, 10.0), job(1, 5.0, 10.0)]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unsorted_jobs_rejected_with_index() {
        let err = Trace::new(vec![job(0, 5.0, 10.0), job(1, 1.0, 10.0)]).unwrap_err();
        assert_eq!(err, TraceError::Unsorted { index: 1 });
    }

    #[test]
    fn from_unsorted_sorts() {
        let t = Trace::from_unsorted(vec![job(0, 5.0, 10.0), job(1, 1.0, 10.0)]).unwrap();
        assert_eq!(t.jobs()[0].id, JobId(1));
    }

    #[test]
    fn stats_compute_means() {
        let t = Trace::new(vec![job(0, 0.0, 100.0), job(1, 10.0, 300.0)]).unwrap();
        let s = t.stats().unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean_duration_s - 200.0).abs() < 1e-9);
        assert!((s.arrival_rate - 0.2).abs() < 1e-9);
        assert!((s.mean_cpu - 0.1).abs() < 1e-9);
    }

    #[test]
    fn offered_load_uses_littles_law() {
        let t = Trace::new(vec![job(0, 0.0, 100.0), job(1, 10.0, 300.0)]).unwrap();
        let s = t.stats().unwrap();
        // rate 0.2 * mean dur 200 * cpu 0.1 / 4 servers = 1.0
        assert!((s.offered_cpu_load(4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_stats() {
        let t = Trace::new(Vec::new()).unwrap();
        assert!(t.stats().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn segments_partition_and_rebase() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, 100.0 + i as f64, 10.0)).collect();
        let t = Trace::new(jobs).unwrap();
        let segs = t.segments(3);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs.iter().map(|s| s.len()).sum::<usize>(), 10);
        for s in &segs {
            assert_eq!(s.jobs()[0].arrival, SimTime::ZERO);
        }
    }

    #[test]
    fn wall_clock_segments_follow_arrival_intensity() {
        // Arrivals at 0..5 s, 100..102 s, 250 s with a 100 s window:
        // three non-empty windows (an empty 3rd window would start at 200,
        // but 250 falls inside [200, 300)).
        let mut jobs: Vec<Job> = (0..6).map(|i| job(i, i as f64, 10.0)).collect();
        jobs.push(job(6, 100.0, 10.0));
        jobs.push(job(7, 102.0, 10.0));
        jobs.push(job(8, 250.0, 10.0));
        let t = Trace::new(jobs).unwrap();
        let segs = t.segments_by_wall_clock(100.0);
        assert_eq!(segs.iter().map(Trace::len).collect::<Vec<_>>(), [6, 2, 1]);
        for s in &segs {
            assert_eq!(s.jobs()[0].arrival, SimTime::ZERO, "segments are rebased");
        }
    }

    #[test]
    fn wall_clock_segments_skip_empty_windows() {
        // A gap of many windows between two bursts yields exactly two
        // segments, not a run of empties.
        let t = Trace::new(vec![job(0, 0.0, 10.0), job(1, 1000.0, 10.0)]).unwrap();
        let segs = t.segments_by_wall_clock(10.0);
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn wall_clock_segments_one_window_holds_everything() {
        let jobs: Vec<Job> = (0..5).map(|i| job(i, i as f64, 10.0)).collect();
        let t = Trace::new(jobs).unwrap();
        let segs = t.segments_by_wall_clock(1e6);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 5);
    }

    #[test]
    fn take_rebases_prefix() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(i, 50.0 + i as f64 * 2.0, 10.0))
            .collect();
        let t = Trace::new(jobs).unwrap();
        let head = t.take(3);
        assert_eq!(head.len(), 3);
        assert_eq!(head.jobs()[0].arrival, SimTime::ZERO);
        assert_eq!(head.jobs()[2].arrival, SimTime::from_secs(4.0));
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::new(vec![job(0, 0.0, 10.0), job(1, 5.0, 10.0)]).unwrap();
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_json_reports_serde_error() {
        assert!(matches!(
            Trace::from_json("not json"),
            Err(TraceError::Serde(_))
        ));
    }

    #[test]
    fn inter_arrival_times() {
        let t = Trace::new(vec![job(0, 0.0, 1.0), job(1, 3.0, 1.0), job(2, 7.0, 1.0)]).unwrap();
        assert_eq!(t.inter_arrival_times(), vec![3.0, 4.0]);
    }
}
