//! Workload distribution statistics: histograms and temporal profiles for
//! validating that a (synthetic or parsed) trace has the intended shape.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with under/overflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded observations (`0` if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile from bucket midpoints (`None` if empty or `q`
    /// outside `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

/// Distributional profile of a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Job durations, seconds (60 s buckets over [0, 7500)).
    pub durations: Histogram,
    /// CPU demands (buckets over [0, 0.2)).
    pub cpu_demands: Histogram,
    /// Inter-arrival times, seconds (buckets over [0, 120)).
    pub inter_arrivals: Histogram,
    /// Arrivals per hour-of-day (24 entries).
    pub arrivals_by_hour: Vec<u64>,
}

impl WorkloadProfile {
    /// Profiles a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut durations = Histogram::new(0.0, 7_500.0, 125);
        let mut cpu_demands = Histogram::new(0.0, 0.2, 100);
        let mut inter_arrivals = Histogram::new(0.0, 120.0, 60);
        let mut arrivals_by_hour = vec![0u64; 24];
        for j in trace.jobs() {
            durations.record(j.duration);
            cpu_demands.record(j.demand.cpu());
            let hour = ((j.arrival.as_secs() % 86_400.0) / 3_600.0) as usize;
            arrivals_by_hour[hour.min(23)] += 1;
        }
        for iat in trace.inter_arrival_times() {
            inter_arrivals.record(iat);
        }
        Self {
            durations,
            cpu_demands,
            inter_arrivals,
            arrivals_by_hour,
        }
    }

    /// The busiest hour of day by arrival count (`0..24`).
    pub fn peak_hour(&self) -> usize {
        self.arrivals_by_hour
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(h, _)| h)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, WorkloadConfig};

    #[test]
    fn histogram_counts_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.5, 5.5, 9.9, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert!((h.mean() - 49.5).abs() < 1e-9);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median {median}");
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn workload_profile_matches_generator_shape() {
        let config = WorkloadConfig::google_like(5, 95_000.0);
        let trace = TraceGenerator::new(config)
            .unwrap()
            .generate(86_400.0 * 3.0);
        let profile = WorkloadProfile::of(&trace);

        // Durations respect the paper's clamp window.
        assert_eq!(profile.durations.underflow(), 0);
        assert_eq!(profile.durations.overflow(), 0);
        assert!(profile.durations.mean() >= 60.0);

        // The diurnal peak lands in the configured afternoon.
        let peak = profile.peak_hour();
        assert!(
            (12..=18).contains(&peak),
            "peak hour {peak} not in the afternoon"
        );

        // Batched submissions: a large short-gap mass in inter-arrivals.
        let short: u64 = profile.inter_arrivals.counts()[..5].iter().sum();
        assert!(
            short as f64 > profile.inter_arrivals.total() as f64 * 0.3,
            "expected a short-gap mass from batching"
        );
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn invalid_bounds_rejected() {
        let _ = Histogram::new(5.0, 1.0, 4);
    }
}
