//! Streaming job sources: traces as iterators, without materializing
//! `Vec<Job>`.
//!
//! At the paper's pitched warehouse scale (10⁵ servers, 10⁶⁺ jobs per
//! cell) a materialized trace is tens-to-hundreds of megabytes *per cell*,
//! and the suite-level [`crate::materialize::TraceCache`] pins every one of
//! them for the whole run. This module gives every trace source an
//! iterator form instead:
//!
//! * [`GeneratorStream`] drives the synthetic generator lazily, emitting
//!   jobs **byte-identical** to `TraceSpec::materialize()`
//!   (`generate_n` + rebase) while holding only the small reorder frontier
//!   in memory — a committed equivalence test in
//!   `tests/stream_equivalence.rs` pins this.
//! * [`TraceStream`] adapts an already-materialized [`Trace`] (e.g. one
//!   parsed from the real Google `task_events` files by
//!   [`crate::google::parse_task_events`]) behind the same interface, so
//!   consumers are source-agnostic.
//! * [`SegmentedTraceSpec::streams`](crate::drift::SegmentedTraceSpec::streams)
//!   yields one [`GeneratorStream`] per drift segment.
//!
//! Materialized traces stay the default for small cells; streaming is the
//! opt-in raw-scale path.

use crate::drift::SegmentedTraceSpec;
use crate::generator::TraceGenerator;
use crate::materialize::TraceSpec;
use crate::trace::Trace;
use hierdrl_sim::job::{Job, JobId};
use hierdrl_sim::resources::ResourceVec;
use hierdrl_sim::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A source of jobs in non-decreasing arrival order.
///
/// This is the interface scale-regime consumers program against: any
/// `Iterator<Item = Job> + Send` qualifies, and `remaining()` lets sinks
/// size bounded buffers without forcing materialization.
pub trait JobStream: Iterator<Item = Job> + Send {
    /// Exact number of jobs still to be emitted, if known.
    fn remaining(&self) -> Option<usize> {
        None
    }
}

/// One pending task inside [`GeneratorStream`]'s reorder frontier, ordered
/// by `(arrival, insertion sequence)` — exactly the order the materialized
/// path's *stable* sort by arrival produces.
struct Pending {
    t: f64,
    seq: u64,
    duration: f64,
    demand: ResourceVec,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest task.
        let by_t = other
            .t
            .partial_cmp(&self.t)
            .expect("arrival times are finite");
        by_t.then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Streams the synthetic generator's output lazily, byte-identical to
/// `TraceSpec::materialize()` (i.e. `TraceGenerator::generate_n` followed
/// by the first-arrival rebase of `Trace::take`).
///
/// Batch expansion emits tasks out of order (a submission's jittered tail
/// can overtake the next submission event), so the materialized path sorts
/// the whole raw vector at the end. The stream instead keeps only the
/// not-yet-safe tasks in a min-heap: a pending task is emitted once its
/// arrival is at or before the generator's time frontier, because every
/// future task arrives at or after the frontier, and any future task tying
/// the frontier exactly carries a later insertion sequence — the same
/// tie-break the stable sort applies. Peak memory is the frontier width
/// (batch tails in flight), not the trace length.
pub struct GeneratorStream {
    generator: TraceGenerator,
    heap: BinaryHeap<Pending>,
    /// Staging buffer handed to `expand_batch`, drained into the heap.
    batch: Vec<(f64, f64, ResourceVec)>,
    /// Raw tasks produced so far (heap inserts); generation stops once this
    /// reaches `count`, mirroring `generate_n`'s stopping rule.
    produced: usize,
    /// Jobs emitted so far; doubles as the next [`JobId`].
    emitted: usize,
    /// Exact number of jobs to emit.
    count: usize,
    /// First emitted arrival, the rebase origin.
    base: Option<SimTime>,
}

impl GeneratorStream {
    /// Creates a stream emitting exactly `count` jobs from a validated
    /// config — the lazy twin of `TraceGenerator::generate_n(count)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the config is invalid.
    pub fn new(config: crate::generator::WorkloadConfig, count: usize) -> Result<Self, String> {
        Ok(Self {
            generator: TraceGenerator::new(config)?,
            heap: BinaryHeap::new(),
            batch: Vec::new(),
            produced: 0,
            emitted: 0,
            count,
            base: None,
        })
    }

    /// The number of jobs this stream will emit in total.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the stream emits no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pending tasks currently buffered in the reorder frontier (a measure
    /// of the stream's working-set size).
    pub fn frontier_len(&self) -> usize {
        self.heap.len()
    }

    fn emit(&mut self, p: Pending) -> Job {
        // Identical arithmetic to `Trace::take`'s rebase: arrivals pass
        // through SimTime before the subtraction, including the first job.
        let arrival = SimTime::from_secs(p.t);
        let base = *self.base.get_or_insert(arrival);
        let job = Job::new(
            JobId(self.emitted as u64),
            SimTime::from_secs(arrival.since(base)),
            p.duration,
            p.demand,
        );
        self.emitted += 1;
        job
    }
}

impl Iterator for GeneratorStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.emitted >= self.count {
            return None;
        }
        loop {
            if let Some(top) = self.heap.peek() {
                // Safe to emit once generation has stopped (heap order is
                // final) or the task is at/behind the generator frontier
                // (no future task can sort before it).
                if self.produced >= self.count || top.t <= self.generator.frontier() {
                    let p = self.heap.pop().expect("peeked above");
                    return Some(self.emit(p));
                }
            }
            debug_assert!(
                self.produced < self.count,
                "generation stopped with a drainable heap"
            );
            let event = self
                .generator
                .next_event(f64::INFINITY)
                .expect("unbounded horizon always yields an event");
            self.batch.clear();
            self.generator.expand_batch(event, &mut self.batch);
            for (t, duration, demand) in self.batch.drain(..) {
                self.heap.push(Pending {
                    t,
                    seq: self.produced as u64,
                    duration,
                    demand,
                });
                self.produced += 1;
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.count - self.emitted;
        (left, Some(left))
    }
}

impl JobStream for GeneratorStream {
    fn remaining(&self) -> Option<usize> {
        Some(self.count - self.emitted)
    }
}

/// An already-materialized trace behind the [`JobStream`] interface. The
/// trace is shared (`Arc`), so cloning the stream or holding several
/// cursors costs nothing beyond the cursor itself.
#[derive(Debug, Clone)]
pub struct TraceStream {
    trace: Arc<Trace>,
    next: usize,
}

impl TraceStream {
    /// Streams `trace`'s jobs in arrival order.
    pub fn new(trace: Arc<Trace>) -> Self {
        Self { trace, next: 0 }
    }
}

impl Iterator for TraceStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        let job = self.trace.jobs().get(self.next)?.clone();
        self.next += 1;
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.next;
        (left, Some(left))
    }
}

impl JobStream for TraceStream {
    fn remaining(&self) -> Option<usize> {
        Some(self.trace.len() - self.next)
    }
}

impl TraceSpec {
    /// The streaming twin of [`TraceSpec::materialize`]: emits byte-identical
    /// jobs without building the `Vec<Job>`.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload config is invalid.
    pub fn stream(&self) -> Result<GeneratorStream, String> {
        GeneratorStream::new(self.workload.clone(), self.jobs)
    }
}

impl SegmentedTraceSpec {
    /// One lazy stream per drift segment, in order — the streaming twin of
    /// [`SegmentedTraceSpec::materialize`], byte-identical segment by
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns the first segment's config error.
    pub fn streams(&self) -> Result<Vec<GeneratorStream>, String> {
        self.segments.iter().map(|spec| spec.stream()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadConfig;

    #[test]
    fn stream_matches_materialize_for_a_basic_config() {
        let spec = TraceSpec::new(WorkloadConfig::google_like(5, 60_000.0), 2_000);
        let trace = spec.materialize().unwrap();
        let streamed: Vec<Job> = spec.stream().unwrap().collect();
        assert_eq!(trace.jobs(), streamed.as_slice());
    }

    #[test]
    fn stream_emits_exactly_count_jobs() {
        let spec = TraceSpec::new(WorkloadConfig::google_like(6, 60_000.0), 137);
        let mut stream = spec.stream().unwrap();
        assert_eq!(stream.remaining(), Some(137));
        let jobs: Vec<Job> = stream.by_ref().collect();
        assert_eq!(jobs.len(), 137);
        assert_eq!(stream.remaining(), Some(0));
        assert!(stream.next().is_none(), "exhausted stream stays exhausted");
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let spec = TraceSpec::new(WorkloadConfig::google_like(7, 60_000.0), 0);
        assert_eq!(spec.stream().unwrap().count(), 0);
    }

    #[test]
    fn frontier_stays_small_relative_to_the_trace() {
        let spec = TraceSpec::new(WorkloadConfig::google_like(8, 95_000.0), 20_000);
        let mut stream = spec.stream().unwrap();
        let mut max_frontier = 0usize;
        while stream.next().is_some() {
            max_frontier = max_frontier.max(stream.frontier_len());
        }
        assert!(
            max_frontier < 2_000,
            "reorder frontier {max_frontier} should stay far below the 20k trace"
        );
    }

    #[test]
    fn trace_stream_replays_a_materialized_trace() {
        let spec = TraceSpec::new(WorkloadConfig::google_like(9, 60_000.0), 500);
        let trace = Arc::new(spec.materialize().unwrap());
        let replayed: Vec<Job> = TraceStream::new(Arc::clone(&trace)).collect();
        assert_eq!(trace.jobs(), replayed.as_slice());
    }
}
