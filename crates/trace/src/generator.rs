//! Synthetic Google-cluster-style workload generation.
//!
//! The paper evaluates on segments of the Google cluster-usage traces with
//! roughly 100,000 jobs per week for a 30–40 machine cluster, job durations
//! between 1 minute and 2 hours, and CPU/memory/disk requests normalized by
//! one server's capacity. [`WorkloadConfig::google_like`] reproduces those
//! marginals; arrivals follow a non-homogeneous Poisson process (thinning)
//! with diurnal and weekend structure.

use crate::distributions::Dist;
use crate::pattern::{ArrivalPattern, SECS_PER_WEEK};
use crate::trace::Trace;
use hierdrl_sim::job::{Job, JobId};
use hierdrl_sim::resources::ResourceVec;
use hierdrl_sim::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed; every trace is fully determined by its config.
    pub seed: u64,
    /// Arrival-rate profile.
    pub arrivals: ArrivalPattern,
    /// Job duration distribution, seconds.
    pub duration: Dist,
    /// CPU demand distribution (normalized, clamped to `[min_demand, max_demand]`).
    pub cpu_demand: Dist,
    /// Memory demand distribution before correlation with CPU.
    pub mem_demand: Dist,
    /// Disk demand distribution.
    pub disk_demand: Dist,
    /// Correlation weight in `[0, 1]`: memory = `w * cpu + (1-w) * own sample`.
    pub mem_cpu_correlation: f64,
    /// Lower clamp on each demand component.
    pub min_demand: f64,
    /// Upper clamp on each demand component.
    pub max_demand: f64,
    /// Mean tasks per submission event (`>= 1`). Google jobs submit many
    /// tasks at once; task counts follow a geometric law with this mean and
    /// all tasks of a batch share the submission's resource request. `1.0`
    /// disables batching (plain Poisson arrivals).
    pub batch_mean: f64,
    /// Spacing between consecutive tasks of one batch, seconds.
    pub batch_jitter: Dist,
}

impl WorkloadConfig {
    /// A workload calibrated to the paper's setup: ~`jobs_per_week` jobs per
    /// week with Google-like marginals. The paper uses ~95,000–100,000 jobs
    /// per week-long segment.
    pub fn google_like(seed: u64, jobs_per_week: f64) -> Self {
        // Compensate for the weekend dip and task batching so the realized
        // weekly *task* count hits the target.
        let batch_mean = 4.0;
        let shape = ArrivalPattern::google_like(1.0);
        let base_rate = jobs_per_week / SECS_PER_WEEK / shape.mean_rate_factor() / batch_mean;
        Self {
            seed,
            arrivals: ArrivalPattern::google_like(base_rate),
            // Median 8 minutes, heavy tail, clipped to [1 min, 2 h] like the
            // paper's extraction.
            duration: Dist::clipped_log_normal_median(480.0, 1.1, 60.0, 7200.0),
            // Tiny requests dominate, as in the real trace (and as the
            // paper's Table I power figures imply: round-robin draws barely
            // above the cluster's idle floor, i.e. ~1% utilization).
            cpu_demand: Dist::LogNormal {
                mu: (0.002f64).ln(),
                sigma: 0.8,
            },
            mem_demand: Dist::LogNormal {
                mu: (0.002f64).ln(),
                sigma: 0.8,
            },
            disk_demand: Dist::LogNormal {
                mu: (0.001f64).ln(),
                sigma: 0.8,
            },
            mem_cpu_correlation: 0.5,
            min_demand: 0.0005,
            max_demand: 0.1,
            batch_mean,
            batch_jitter: Dist::Exponential { mean: 2.0 },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.arrivals.validate()?;
        self.duration.validate()?;
        self.cpu_demand.validate()?;
        self.mem_demand.validate()?;
        self.disk_demand.validate()?;
        if !(0.0..=1.0).contains(&self.mem_cpu_correlation) {
            return Err(format!(
                "mem_cpu_correlation must be in [0, 1], got {}",
                self.mem_cpu_correlation
            ));
        }
        if !(self.min_demand > 0.0 && self.min_demand <= self.max_demand && self.max_demand <= 1.0)
        {
            return Err(format!(
                "demand clamps invalid: [{}, {}]",
                self.min_demand, self.max_demand
            ));
        }
        if !(self.batch_mean >= 1.0 && self.batch_mean.is_finite()) {
            return Err(format!("batch_mean must be >= 1, got {}", self.batch_mean));
        }
        self.batch_jitter.validate()?;
        Ok(())
    }
}

/// Synthetic trace generator (non-homogeneous Poisson thinning).
#[derive(Debug)]
pub struct TraceGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    now: f64,
}

impl TraceGenerator {
    /// Creates a generator from a validated config.
    ///
    /// # Errors
    ///
    /// Returns an error if the config is invalid.
    pub fn new(config: WorkloadConfig) -> Result<Self, String> {
        config.validate()?;
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(Self {
            config,
            rng,
            now: 0.0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn sample_demand(&mut self) -> ResourceVec {
        let c = &self.config;
        let clamp = |x: f64| x.clamp(c.min_demand, c.max_demand);
        let cpu = clamp(c.cpu_demand.sample(&mut self.rng));
        let mem_own = c.mem_demand.sample(&mut self.rng);
        let mem = clamp(c.mem_cpu_correlation * cpu + (1.0 - c.mem_cpu_correlation) * mem_own);
        let disk = clamp(c.disk_demand.sample(&mut self.rng));
        ResourceVec::cpu_mem_disk(cpu, mem, disk)
    }

    /// The thinning process's current time frontier (seconds): every future
    /// submission event — and hence every future task — arrives at or after
    /// this instant. `crate::stream::GeneratorStream` uses it to decide
    /// which pending tasks are safe to emit.
    pub(crate) fn frontier(&self) -> f64 {
        self.now
    }

    /// Advances the thinning process to the next submission event, or
    /// `None` once `horizon` (seconds) is passed.
    pub(crate) fn next_event(&mut self, horizon: f64) -> Option<f64> {
        let max_rate = self.config.arrivals.max_rate();
        loop {
            let u: f64 = 1.0 - self.rng.gen::<f64>();
            self.now += -u.ln() / max_rate;
            if self.now > horizon {
                return None;
            }
            let accept: f64 = self.rng.gen();
            if accept < self.config.arrivals.rate_at(self.now) / max_rate {
                return Some(self.now);
            }
        }
    }

    /// Expands one submission event into its task batch. Tasks share the
    /// submission's resource request and near-identical durations, arriving
    /// a small jitter apart — the structure of real Google jobs.
    pub(crate) fn expand_batch(&mut self, event_time: f64, out: &mut Vec<(f64, f64, ResourceVec)>) {
        // Geometric task count with the configured mean.
        let continue_p = 1.0 - 1.0 / self.config.batch_mean.max(1.0);
        let mut count = 1usize;
        while self.rng.gen::<f64>() < continue_p && count < 64 {
            count += 1;
        }
        let demand = self.sample_demand();
        let mut t = event_time;
        for i in 0..count {
            if i > 0 {
                t += self.config.batch_jitter.sample(&mut self.rng).max(0.0);
            }
            let duration = self.config.duration.sample(&mut self.rng);
            out.push((t, duration, demand.clone()));
        }
    }

    fn finish(raw: Vec<(f64, f64, ResourceVec)>) -> Trace {
        let mut raw = raw;
        raw.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("arrival times are finite"));
        let jobs = raw
            .into_iter()
            .enumerate()
            .map(|(i, (t, duration, demand))| {
                Job::new(JobId(i as u64), SimTime::from_secs(t), duration, demand)
            })
            .collect();
        Trace::new(jobs).expect("sorted, validated jobs")
    }

    /// Generates all jobs arriving within `horizon_s` seconds.
    pub fn generate(mut self, horizon_s: f64) -> Trace {
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "horizon must be positive, got {horizon_s}"
        );
        let expected =
            (self.config.arrivals.base_rate * self.config.batch_mean * horizon_s) as usize;
        let mut raw = Vec::with_capacity(expected + expected / 8);
        while let Some(event) = self.next_event(horizon_s) {
            self.expand_batch(event, &mut raw);
        }
        raw.retain(|(t, _, _)| *t <= horizon_s);
        Self::finish(raw)
    }

    /// Generates exactly `count` jobs, however long that takes.
    pub fn generate_n(mut self, count: usize) -> Trace {
        let mut raw = Vec::with_capacity(count + 64);
        while raw.len() < count {
            let event = self
                .next_event(f64::INFINITY)
                .expect("unbounded horizon always yields an event");
            self.expand_batch(event, &mut raw);
        }
        let trace = Self::finish(raw);
        trace.take(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week_config(seed: u64) -> WorkloadConfig {
        WorkloadConfig::google_like(seed, 95_000.0)
    }

    #[test]
    fn job_count_is_near_target() {
        let trace = TraceGenerator::new(week_config(1))
            .unwrap()
            .generate(SECS_PER_WEEK);
        let n = trace.len() as f64;
        assert!(
            (n - 95_000.0).abs() < 95_000.0 * 0.05,
            "got {n} jobs, expected ~95000"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_ids_sequential() {
        let trace = TraceGenerator::new(week_config(2))
            .unwrap()
            .generate(86_400.0);
        let jobs = trace.jobs();
        for (i, w) in jobs.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "out of order at {i}");
        }
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn durations_respect_paper_bounds() {
        let trace = TraceGenerator::new(week_config(3))
            .unwrap()
            .generate(86_400.0);
        for j in trace.jobs() {
            assert!(
                (60.0..=7200.0).contains(&j.duration),
                "duration {} out of [60, 7200]",
                j.duration
            );
        }
    }

    #[test]
    fn demands_are_clamped() {
        let config = week_config(4);
        let (lo, hi) = (config.min_demand, config.max_demand);
        let trace = TraceGenerator::new(config).unwrap().generate(86_400.0);
        for j in trace.jobs() {
            for &d in j.demand.as_slice() {
                assert!((lo..=hi).contains(&d), "demand {d} out of clamp range");
            }
        }
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let a = TraceGenerator::new(week_config(7))
            .unwrap()
            .generate(43_200.0);
        let b = TraceGenerator::new(week_config(7))
            .unwrap()
            .generate(43_200.0);
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(week_config(8))
            .unwrap()
            .generate(43_200.0);
        let b = TraceGenerator::new(week_config(9))
            .unwrap()
            .generate(43_200.0);
        assert_ne!(a.jobs(), b.jobs());
    }

    #[test]
    fn generate_n_returns_exact_count() {
        let trace = TraceGenerator::new(week_config(10))
            .unwrap()
            .generate_n(500);
        assert_eq!(trace.len(), 500);
    }

    #[test]
    fn diurnal_pattern_shows_in_hourly_counts() {
        let mut config = week_config(11);
        config.arrivals.diurnal_amplitude = 0.8;
        let trace = TraceGenerator::new(config)
            .unwrap()
            .generate(86_400.0 * 5.0);
        // Count arrivals near daily peak (15h) vs trough (3h).
        let mut peak = 0usize;
        let mut trough = 0usize;
        for j in trace.jobs() {
            let hour = (j.arrival.as_secs() % 86_400.0) / 3600.0;
            if (14.0..16.0).contains(&hour) {
                peak += 1;
            } else if (2.0..4.0).contains(&hour) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 2.0,
            "peak {peak} not clearly above trough {trough}"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = week_config(1);
        c.mem_cpu_correlation = 2.0;
        assert!(TraceGenerator::new(c).is_err());
    }
}
