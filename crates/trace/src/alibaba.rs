//! Parser for the Alibaba cluster-trace-v2017 `batch_task` table.
//!
//! The 2017 Alibaba trace covers ~1300 machines over 12 hours (later
//! releases extend to 8 days); its `batch_task.csv` table carries one row
//! per task with wall-clock timestamps in **seconds** (the Google trace
//! uses microseconds) and planned resource requests. This parser extracts
//! the same `(arrival, duration, demand)` tuples the paper's evaluation
//! consumes from the Google trace, behind the same [`ParseStats`]
//! provenance contract, so either trace can sit behind
//! [`crate::source::TraceSource`].
//!
//! `batch_task.csv` columns as consumed here:
//! `0` create timestamp (s), `1` end timestamp (s), `2` job id,
//! `3` task id, `4` instance count, `5` status string,
//! `6` plan CPU (percent of one core: `100` = 1.0 cores),
//! `7` plan memory (normalized fraction of one machine).
//!
//! Mapping and filters:
//!
//! * only rows whose status is `Terminated` become jobs — any other status
//!   (`Waiting`, `Running`, `Failed`, …) or a missing/zero end timestamp is
//!   an incomplete lifecycle and counts in
//!   [`ParseStats::incomplete_dropped`];
//! * arrival = create timestamp, duration = end − create (seconds);
//!   non-positive durations count in
//!   [`ParseStats::nonpositive_duration_dropped`], and the
//!   `[min_duration_s, max_duration_s]` window drops into
//!   [`ParseStats::duration_filtered`] exactly like the Google parser;
//! * plan CPU is divided by 100 (percent-of-core → fraction) and both
//!   demand components are clamped to `[1e-4, 1.0]`; a missing/empty plan
//!   CPU or memory column counts the job in
//!   [`ParseStats::demand_defaulted`]. The format has **no disk column**,
//!   so disk demand is always the floor value and is *not* counted as
//!   defaulted — it is absent by design, not by data loss.
//!
//! Rows are one task each (no event reconstruction), and like the Google
//! parser the kept jobs are sorted by arrival and renumbered from
//! [`JobId`]`(0)`.

use hierdrl_sim::job::{Job, JobId};
use hierdrl_sim::resources::ResourceVec;
use hierdrl_sim::time::SimTime;
use std::io::BufRead;

use crate::google::{ParseError, ParseStats, PAPER_MAX_DURATION_S, PAPER_MIN_DURATION_S};
use crate::trace::Trace;

/// Status string marking a completed task in `batch_task.csv`.
pub const STATUS_TERMINATED: &str = "Terminated";

fn parse_field_f64(s: &str) -> Option<f64> {
    if s.is_empty() {
        None
    } else {
        s.parse::<f64>().ok()
    }
}

/// Parses Alibaba v2017 `batch_task` CSV rows into a [`Trace`], keeping
/// only `Terminated` tasks whose duration falls within
/// `[min_duration_s, max_duration_s]`.
///
/// Malformed rows (too few columns, unparsable timestamps) error out with
/// their line number; rows that parse but carry incomplete *data* are
/// counted in the returned [`ParseStats`] instead — see the module docs
/// for the exact mapping of each counter.
///
/// # Errors
///
/// Returns [`ParseError`] for rows with fewer than 6 columns or unparsable
/// numeric fields.
pub fn parse_batch_tasks_with_stats<R: BufRead>(
    reader: R,
    min_duration_s: f64,
    max_duration_s: f64,
) -> Result<(Trace, ParseStats), ParseError> {
    let mut stats = ParseStats::default();
    let mut jobs: Vec<Job> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseError {
            line: line_no,
            reason: format!("io error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        stats.rows += 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 6 {
            return Err(ParseError {
                line: line_no,
                reason: format!("expected >= 6 columns, got {}", fields.len()),
            });
        }
        stats.tasks_seen += 1;
        let create_s: f64 = fields[0].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("bad create timestamp {:?}", fields[0]),
        })?;
        let status = fields[5].trim();
        let end_s = parse_field_f64(fields[1]);
        // Anything not terminated — or terminated without an end timestamp —
        // never completed inside the trace window.
        let end_s = match (status == STATUS_TERMINATED, end_s) {
            (true, Some(e)) => e,
            _ => {
                stats.incomplete_dropped += 1;
                continue;
            }
        };
        if end_s <= create_s {
            stats.nonpositive_duration_dropped += 1;
            continue;
        }
        let duration_s = end_s - create_s;
        if !(min_duration_s..=max_duration_s).contains(&duration_s) {
            stats.duration_filtered += 1;
            continue;
        }
        let plan_cpu = fields.get(6).and_then(|s| parse_field_f64(s));
        let plan_mem = fields.get(7).and_then(|s| parse_field_f64(s));
        if plan_cpu.is_none() || plan_mem.is_none() {
            stats.demand_defaulted += 1;
        }
        let clamp = |v: Option<f64>| v.unwrap_or(0.0).clamp(0.0, 1.0).max(1e-4);
        // plan_cpu is percent-of-one-core; the disk column does not exist
        // in this format, so it sits at the floor by construction.
        let demand = ResourceVec::cpu_mem_disk(
            clamp(plan_cpu.map(|c| c / 100.0)),
            clamp(plan_mem),
            clamp(None),
        );
        jobs.push(Job::new(
            JobId(0), // re-numbered after sorting
            SimTime::from_secs(create_s),
            duration_s,
            demand,
        ));
    }
    stats.jobs_kept = jobs.len();

    jobs.sort_by_key(|a| a.arrival);
    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(i, j)| Job::new(JobId(i as u64), j.arrival, j.duration, j.demand))
        .collect();
    Ok((Trace::new(jobs).expect("sorted, validated jobs"), stats))
}

/// [`parse_batch_tasks_with_stats`] without the bookkeeping.
///
/// # Errors
///
/// See [`parse_batch_tasks_with_stats`].
pub fn parse_batch_tasks<R: BufRead>(
    reader: R,
    min_duration_s: f64,
    max_duration_s: f64,
) -> Result<Trace, ParseError> {
    parse_batch_tasks_with_stats(reader, min_duration_s, max_duration_s).map(|(trace, _)| trace)
}

/// Parses with the paper's duration filter of [1 minute, 2 hours].
///
/// # Errors
///
/// See [`parse_batch_tasks`].
pub fn parse_batch_tasks_paper<R: BufRead>(reader: R) -> Result<Trace, ParseError> {
    parse_batch_tasks(reader, PAPER_MIN_DURATION_S, PAPER_MAX_DURATION_S)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Builds a batch_task row.
    fn row(
        create: u64,
        end: &str,
        job: u64,
        task: u64,
        status: &str,
        cpu: &str,
        mem: &str,
    ) -> String {
        format!("{create},{end},{job},{task},1,{status},{cpu},{mem}")
    }

    #[test]
    fn parses_terminated_task() {
        let csv = row(100, "400", 1, 1, "Terminated", "50", "0.25");
        let (trace, stats) = parse_batch_tasks_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 1);
        let j = &trace.jobs()[0];
        assert_eq!(j.arrival, SimTime::from_secs(100.0));
        assert!((j.duration - 300.0).abs() < 1e-9);
        // plan_cpu 50 => 0.5 cores; plan_mem passes through.
        assert!((j.demand.get(0) - 0.5).abs() < 1e-9);
        assert!((j.demand.get(1) - 0.25).abs() < 1e-9);
        // No disk column in the format: floor demand, not counted.
        assert!((j.demand.get(2) - 1e-4).abs() < 1e-12);
        assert_eq!(stats.demand_defaulted, 0);
        assert_eq!(stats.jobs_kept, 1);
    }

    #[test]
    fn non_terminated_rows_are_incomplete() {
        let csv = [
            row(0, "400", 1, 1, "Failed", "50", "0.25"),
            row(0, "", 2, 1, "Running", "50", "0.25"),
            row(0, "", 3, 1, "Terminated", "50", "0.25"), // no end timestamp
            row(0, "400", 4, 1, "Terminated", "50", "0.25"),
        ]
        .join("\n");
        let (trace, stats) = parse_batch_tasks_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(stats.tasks_seen, 4);
        assert_eq!(stats.incomplete_dropped, 3);
        assert_eq!(stats.jobs_kept, 1);
    }

    #[test]
    fn duration_window_and_nonpositive_durations_are_counted() {
        let csv = [
            row(100, "100", 1, 1, "Terminated", "50", "0.25"), // zero duration
            row(100, "130", 2, 1, "Terminated", "50", "0.25"), // 30 s: too short
            row(100, "10_900", 3, 1, "Terminated", "50", "0.25"), // unparsable end
            row(100, "10900", 4, 1, "Terminated", "50", "0.25"), // 3 h: too long
            row(100, "700", 5, 1, "Terminated", "50", "0.25"), // kept
        ]
        .join("\n");
        let (trace, stats) = parse_batch_tasks_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(stats.nonpositive_duration_dropped, 1);
        assert_eq!(stats.duration_filtered, 2);
        // The unparsable end timestamp reads as missing → incomplete.
        assert_eq!(stats.incomplete_dropped, 1);
        assert!((trace.jobs()[0].duration - 600.0).abs() < 1e-9);
    }

    #[test]
    fn missing_demand_columns_are_counted_not_silently_defaulted() {
        let csv = [
            "0,400,1,1,1,Terminated".to_string(), // truncated before plan columns
            row(0, "400", 2, 1, "Terminated", "", "0.25"), // empty plan_cpu
            row(0, "400", 3, 1, "Terminated", "50", "0.25"),
        ]
        .join("\n");
        let (trace, stats) = parse_batch_tasks_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(stats.demand_defaulted, 2);
        let floored = trace
            .jobs()
            .iter()
            .filter(|j| (j.demand.get(0) - 1e-4).abs() < 1e-12)
            .count();
        assert_eq!(floored, 2, "defaulted CPU components sit at the floor");
    }

    #[test]
    fn oversubscribed_plan_cpu_is_clamped_to_one_server() {
        // plan_cpu 400 = 4 cores: more than one normalized server.
        let csv = row(0, "400", 1, 1, "Terminated", "400", "1.5");
        let trace = parse_batch_tasks_paper(Cursor::new(csv)).unwrap();
        assert!((trace.jobs()[0].demand.get(0) - 1.0).abs() < 1e-9);
        assert!((trace.jobs()[0].demand.get(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jobs_are_sorted_and_renumbered() {
        let csv = [
            row(500, "900", 7, 1, "Terminated", "20", "0.2"),
            row(100, "500", 8, 1, "Terminated", "30", "0.3"),
        ]
        .join("\n");
        let trace = parse_batch_tasks_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.jobs()[0].id, JobId(0));
        assert_eq!(trace.jobs()[0].arrival, SimTime::from_secs(100.0));
        assert!((trace.jobs()[0].demand.get(0) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn malformed_rows_error_with_line_number() {
        let err = parse_batch_tasks_paper(Cursor::new("not,enough")).unwrap_err();
        assert_eq!(err.line, 1);

        let csv = format!(
            "{}\nabc,400,1,1,1,Terminated,50,0.25",
            row(0, "400", 9, 1, "Terminated", "50", "0.25")
        );
        let err = parse_batch_tasks_paper(Cursor::new(csv)).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("bad create timestamp"));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let csv = format!("\n{}\n\n", row(0, "400", 1, 1, "Terminated", "50", "0.25"));
        let (trace, stats) = parse_batch_tasks_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(stats.rows, 1);
    }
}
