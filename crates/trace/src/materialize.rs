//! Cached trace materialization for experiment grids.
//!
//! Experiment suites are *grids*: many cells share one (workload config,
//! job count) pair and differ only in policy. Regenerating a 95,000-job
//! synthetic trace for every one of those cells dominates sweep wall-clock,
//! so a [`TraceCache`] materializes each distinct [`TraceSpec`] exactly
//! once and hands out shared `Arc<Trace>` handles — safe to use from a
//! parallel sweep runner, and deterministic because a spec fully determines
//! its trace (the generator is seeded from the config).
//!
//! # Examples
//!
//! ```
//! use hierdrl_trace::materialize::{TraceCache, TraceSpec};
//! use hierdrl_trace::generator::WorkloadConfig;
//!
//! let cache = TraceCache::new();
//! let spec = TraceSpec::new(WorkloadConfig::google_like(7, 95_000.0), 200);
//!
//! let a = cache.get(&spec)?;
//! let b = cache.get(&spec)?; // cache hit: same allocation
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(cache.misses(), 1);
//! assert_eq!(cache.hits(), 1);
//! # Ok::<(), String>(())
//! ```

use crate::generator::{TraceGenerator, WorkloadConfig};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fully-deterministic trace recipe: workload configuration plus exact
/// job count. Two equal specs always materialize byte-identical traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// The synthetic workload configuration (includes the RNG seed).
    pub workload: WorkloadConfig,
    /// Exact number of jobs to generate.
    pub jobs: usize,
}

impl TraceSpec {
    /// A spec for `jobs` jobs of the given workload.
    pub fn new(workload: WorkloadConfig, jobs: usize) -> Self {
        Self { workload, jobs }
    }

    /// A stable string fingerprint (the spec's canonical JSON), usable as a
    /// cache key.
    pub fn fingerprint(&self) -> String {
        serde_json::to_string(self).expect("trace spec serializes")
    }

    /// Generates the trace, bypassing any cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload configuration is invalid.
    pub fn materialize(&self) -> Result<Trace, String> {
        Ok(TraceGenerator::new(self.workload.clone())?.generate_n(self.jobs))
    }
}

type Slot = Arc<Mutex<Option<Arc<Trace>>>>;

/// One cache slot plus the recency stamp the bounded mode orders
/// evictions by (refreshed on every `get`, hit or miss).
#[derive(Debug)]
struct SlotEntry {
    slot: Slot,
    last_used: u64,
}

/// A thread-safe, per-spec memoization of trace materialization.
///
/// Locking is two-level: a brief map lock to find/create the spec's slot,
/// then a per-slot lock while generating — so concurrent requests for
/// *different* specs generate in parallel, while concurrent requests for
/// the *same* spec generate once and share the result.
///
/// Key-ordered (`BTreeMap`) so any walk over the slots — [`resident`]
/// today, diagnostics tomorrow — observes a deterministic order.
///
/// [`TraceCache::new`] caches without bound; [`TraceCache::with_capacity`]
/// caps the number of *resident* traces, evicting the least-recently-used
/// one when a fresh materialization would exceed the cap — the working-set
/// mode for segmented sweeps, where each segment's trace is re-touched many
/// times in a burst and then never again.
///
/// [`resident`]: TraceCache::resident
#[derive(Debug, Default)]
pub struct TraceCache {
    slots: Mutex<BTreeMap<String, SlotEntry>>,
    /// Maximum resident traces (`None`: unbounded).
    capacity: Option<usize>,
    /// Monotonic recency clock; each `get` stamps its slot.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TraceCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` resident traces.
    ///
    /// When a materialization would leave more than `capacity` traces
    /// resident, least-recently-used resident traces are dropped (counted
    /// by [`TraceCache::evictions`]). Outstanding `Arc<Trace>` handles
    /// survive, and a later `get` re-materializes byte-identically, so the
    /// cap trades wall-clock for memory without affecting results.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace cache capacity must be positive");
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Returns the trace for `spec`, generating it on first request.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload configuration is invalid.
    pub fn get(&self, spec: &TraceSpec) -> Result<Arc<Trace>, String> {
        let fingerprint = spec.fingerprint();
        let slot = {
            let mut slots = self.slots.lock().expect("trace cache map lock");
            let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
            let entry = slots
                .entry(fingerprint.clone())
                .or_insert_with(|| SlotEntry {
                    slot: Arc::new(Mutex::new(None)),
                    last_used: 0,
                });
            entry.last_used = stamp;
            Arc::clone(&entry.slot)
        };
        let mut entry = slot.lock().expect("trace cache slot lock");
        if let Some(trace) = entry.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(trace));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let trace = Arc::new(spec.materialize()?);
        *entry = Some(Arc::clone(&trace));
        drop(entry);
        self.enforce_capacity(&fingerprint);
        Ok(trace)
    }

    /// Evicts least-recently-used resident traces until at most
    /// `capacity` remain. `keep` (the slot just filled) is never evicted.
    /// Slots whose per-slot lock is busy are mid-materialization or being
    /// read — in active use, so they count as resident but are skipped as
    /// eviction candidates.
    fn enforce_capacity(&self, keep: &str) {
        let Some(cap) = self.capacity else { return };
        let slots = self.slots.lock().expect("trace cache map lock");
        let mut resident = 0usize;
        let mut candidates: Vec<(u64, &SlotEntry)> = Vec::new();
        for (key, entry) in slots.iter() {
            match entry.slot.try_lock() {
                Ok(guard) => {
                    if guard.is_some() {
                        resident += 1;
                        if key != keep {
                            candidates.push((entry.last_used, entry));
                        }
                    }
                }
                Err(_) => resident += 1,
            }
        }
        if resident <= cap {
            return;
        }
        candidates.sort_unstable_by_key(|(stamp, _)| *stamp);
        for (_, entry) in candidates.into_iter().take(resident - cap) {
            if entry
                .slot
                .lock()
                .expect("trace cache slot lock")
                .take()
                .is_some()
            {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (i.e. materializations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of traces dropped by the capacity bound (explicit
    /// [`TraceCache::evict`]/[`TraceCache::clear`] calls do not count).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct specs requested so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("trace cache map lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of traces currently resident in memory (slots that hold a
    /// materialized trace). Unlike [`TraceCache::len`], evicted and
    /// never-materialized slots do not count.
    pub fn resident(&self) -> usize {
        let slots = self.slots.lock().expect("trace cache map lock");
        slots
            .values()
            .filter(|entry| entry.slot.lock().expect("trace cache slot lock").is_some())
            .count()
    }

    /// Drops the cached trace for `spec`, returning whether one was
    /// resident. Single-use cells (e.g. raw-scale presets, where each spec
    /// is requested exactly once) call this after their run so a large
    /// sweep's memory footprint is one trace, not the whole grid's.
    ///
    /// Outstanding `Arc<Trace>` handles keep their trace alive; eviction
    /// only releases the cache's reference. A later `get` of the same spec
    /// re-materializes (deterministically, so byte-identical).
    pub fn evict(&self, spec: &TraceSpec) -> bool {
        let mut slots = self.slots.lock().expect("trace cache map lock");
        match slots.remove(&spec.fingerprint()) {
            Some(entry) => entry
                .slot
                .lock()
                .expect("trace cache slot lock")
                .take()
                .is_some(),
            None => false,
        }
    }

    /// Drops every cached trace (hit/miss counters are preserved).
    pub fn clear(&self) {
        self.slots.lock().expect("trace cache map lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64, jobs: usize) -> TraceSpec {
        TraceSpec::new(WorkloadConfig::google_like(seed, 50_000.0), jobs)
    }

    #[test]
    fn cache_returns_shared_trace() {
        let cache = TraceCache::new();
        let a = cache.get(&spec(1, 100)).unwrap();
        let b = cache.get(&spec(1, 100)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_specs_materialize_separately() {
        let cache = TraceCache::new();
        let a = cache.get(&spec(1, 100)).unwrap();
        let b = cache.get(&spec(2, 100)).unwrap();
        let c = cache.get(&spec(1, 150)).unwrap();
        assert_ne!(a.jobs(), b.jobs());
        assert_eq!(c.len(), 150);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn cached_trace_matches_direct_materialization() {
        let cache = TraceCache::new();
        let via_cache = cache.get(&spec(42, 200)).unwrap();
        let direct = spec(42, 200).materialize().unwrap();
        assert_eq!(*via_cache, direct);
    }

    #[test]
    fn invalid_spec_surfaces_error_and_is_not_cached() {
        let cache = TraceCache::new();
        let mut bad = spec(1, 10);
        bad.workload.mem_cpu_correlation = 5.0;
        assert!(cache.get(&bad).is_err());
        // The slot exists but holds no trace; a valid retry would regenerate.
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn evict_releases_occupancy_and_regenerates_identically() {
        let cache = TraceCache::new();
        let s1 = spec(1, 100);
        let s2 = spec(2, 100);
        let first = cache.get(&s1).unwrap();
        let _second = cache.get(&s2).unwrap();
        assert_eq!(cache.resident(), 2);

        assert!(cache.evict(&s1), "resident trace reports eviction");
        assert_eq!(cache.resident(), 1);
        assert!(!cache.evict(&s1), "double eviction is a no-op");
        // Outstanding handles survive eviction.
        assert_eq!(first.len(), 100);

        // Re-requesting re-materializes byte-identically (a fresh miss).
        let again = cache.get(&s1).unwrap();
        assert!(!Arc::ptr_eq(&first, &again));
        assert_eq!(*first, *again);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn clear_empties_the_cache_but_keeps_counters() {
        let cache = TraceCache::new();
        let _ = cache.get(&spec(1, 50)).unwrap();
        let _ = cache.get(&spec(2, 50)).unwrap();
        assert_eq!(cache.resident(), 2);
        cache.clear();
        assert_eq!(cache.resident(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 2, "counters survive clear");
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used_segment() {
        // A segmented sweep touches per-segment traces in interleaved
        // bursts: segment 0 and 1 alternate while both cells run, then
        // segment 2 starts. With room for two resident traces the third
        // materialization must push out the *least recently used* one —
        // segment 1 here, because segment 0 was re-touched after it.
        let cache = TraceCache::with_capacity(2);
        let segments = [spec(10, 60), spec(11, 60), spec(12, 60)];

        let s0_first = cache.get(&segments[0]).unwrap(); // miss
        let _s1 = cache.get(&segments[1]).unwrap(); // miss
        let _ = cache.get(&segments[1]).unwrap(); // hit
        let _ = cache.get(&segments[0]).unwrap(); // hit: s0 now most recent
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 2, 0));
        assert_eq!(cache.resident(), 2);

        let _s2 = cache.get(&segments[2]).unwrap(); // miss: evicts segment 1
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.evictions(), 1);

        // Segment 0 survived (still a hit, same allocation)...
        let s0_again = cache.get(&segments[0]).unwrap();
        assert!(Arc::ptr_eq(&s0_first, &s0_again));
        // ...while segment 1 was evicted: re-touching it is a fresh miss
        // that regenerates byte-identically and in turn evicts segment 2
        // (now the least recently used).
        let s1_again = cache.get(&segments[1]).unwrap();
        assert_eq!(*s1_again, segments[1].materialize().unwrap());
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (3, 4, 2));
        assert_eq!(cache.resident(), 2);
    }

    #[test]
    fn bounded_cache_never_evicts_below_its_capacity() {
        // Repeated access to a working set that fits the cap must be pure
        // hits: no eviction churn.
        let cache = TraceCache::with_capacity(2);
        for _ in 0..3 {
            let _ = cache.get(&spec(21, 40)).unwrap();
            let _ = cache.get(&spec(22, 40)).unwrap();
        }
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (4, 2, 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceCache::with_capacity(0);
    }

    #[test]
    fn concurrent_gets_share_one_materialization() {
        let cache = Arc::new(TraceCache::new());
        let s = spec(9, 300);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let s = s.clone();
                    scope.spawn(move || cache.get(&s).unwrap().len())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 300);
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
