//! Cached trace materialization for experiment grids.
//!
//! Experiment suites are *grids*: many cells share one (workload config,
//! job count) pair and differ only in policy. Regenerating a 95,000-job
//! synthetic trace for every one of those cells dominates sweep wall-clock,
//! so a [`TraceCache`] materializes each distinct [`TraceSpec`] exactly
//! once and hands out shared `Arc<Trace>` handles — safe to use from a
//! parallel sweep runner, and deterministic because a spec fully determines
//! its trace (the generator is seeded from the config).
//!
//! # Examples
//!
//! ```
//! use hierdrl_trace::materialize::{TraceCache, TraceSpec};
//! use hierdrl_trace::generator::WorkloadConfig;
//!
//! let cache = TraceCache::new();
//! let spec = TraceSpec::new(WorkloadConfig::google_like(7, 95_000.0), 200);
//!
//! let a = cache.get(&spec)?;
//! let b = cache.get(&spec)?; // cache hit: same allocation
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(cache.misses(), 1);
//! assert_eq!(cache.hits(), 1);
//! # Ok::<(), String>(())
//! ```

use crate::generator::{TraceGenerator, WorkloadConfig};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fully-deterministic trace recipe: workload configuration plus exact
/// job count. Two equal specs always materialize byte-identical traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// The synthetic workload configuration (includes the RNG seed).
    pub workload: WorkloadConfig,
    /// Exact number of jobs to generate.
    pub jobs: usize,
}

impl TraceSpec {
    /// A spec for `jobs` jobs of the given workload.
    pub fn new(workload: WorkloadConfig, jobs: usize) -> Self {
        Self { workload, jobs }
    }

    /// A stable string fingerprint (the spec's canonical JSON), usable as a
    /// cache key.
    pub fn fingerprint(&self) -> String {
        serde_json::to_string(self).expect("trace spec serializes")
    }

    /// Generates the trace, bypassing any cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload configuration is invalid.
    pub fn materialize(&self) -> Result<Trace, String> {
        Ok(TraceGenerator::new(self.workload.clone())?.generate_n(self.jobs))
    }
}

type Slot = Arc<Mutex<Option<Arc<Trace>>>>;

/// A thread-safe, per-spec memoization of trace materialization.
///
/// Locking is two-level: a brief map lock to find/create the spec's slot,
/// then a per-slot lock while generating — so concurrent requests for
/// *different* specs generate in parallel, while concurrent requests for
/// the *same* spec generate once and share the result.
///
/// Key-ordered (`BTreeMap`) so any walk over the slots — [`resident`]
/// today, diagnostics tomorrow — observes a deterministic order.
///
/// [`resident`]: TraceCache::resident
#[derive(Debug, Default)]
pub struct TraceCache {
    slots: Mutex<BTreeMap<String, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trace for `spec`, generating it on first request.
    ///
    /// # Errors
    ///
    /// Returns an error if the workload configuration is invalid.
    pub fn get(&self, spec: &TraceSpec) -> Result<Arc<Trace>, String> {
        let slot = {
            let mut slots = self.slots.lock().expect("trace cache map lock");
            slots
                .entry(spec.fingerprint())
                .or_insert_with(|| Arc::new(Mutex::new(None)))
                .clone()
        };
        let mut entry = slot.lock().expect("trace cache slot lock");
        if let Some(trace) = entry.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(trace));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let trace = Arc::new(spec.materialize()?);
        *entry = Some(Arc::clone(&trace));
        Ok(trace)
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (i.e. materializations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct specs requested so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("trace cache map lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of traces currently resident in memory (slots that hold a
    /// materialized trace). Unlike [`TraceCache::len`], evicted and
    /// never-materialized slots do not count.
    pub fn resident(&self) -> usize {
        let slots = self.slots.lock().expect("trace cache map lock");
        slots
            .values()
            .filter(|slot| slot.lock().expect("trace cache slot lock").is_some())
            .count()
    }

    /// Drops the cached trace for `spec`, returning whether one was
    /// resident. Single-use cells (e.g. raw-scale presets, where each spec
    /// is requested exactly once) call this after their run so a large
    /// sweep's memory footprint is one trace, not the whole grid's.
    ///
    /// Outstanding `Arc<Trace>` handles keep their trace alive; eviction
    /// only releases the cache's reference. A later `get` of the same spec
    /// re-materializes (deterministically, so byte-identical).
    pub fn evict(&self, spec: &TraceSpec) -> bool {
        let mut slots = self.slots.lock().expect("trace cache map lock");
        match slots.remove(&spec.fingerprint()) {
            Some(slot) => slot.lock().expect("trace cache slot lock").take().is_some(),
            None => false,
        }
    }

    /// Drops every cached trace (hit/miss counters are preserved).
    pub fn clear(&self) {
        self.slots.lock().expect("trace cache map lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64, jobs: usize) -> TraceSpec {
        TraceSpec::new(WorkloadConfig::google_like(seed, 50_000.0), jobs)
    }

    #[test]
    fn cache_returns_shared_trace() {
        let cache = TraceCache::new();
        let a = cache.get(&spec(1, 100)).unwrap();
        let b = cache.get(&spec(1, 100)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_specs_materialize_separately() {
        let cache = TraceCache::new();
        let a = cache.get(&spec(1, 100)).unwrap();
        let b = cache.get(&spec(2, 100)).unwrap();
        let c = cache.get(&spec(1, 150)).unwrap();
        assert_ne!(a.jobs(), b.jobs());
        assert_eq!(c.len(), 150);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn cached_trace_matches_direct_materialization() {
        let cache = TraceCache::new();
        let via_cache = cache.get(&spec(42, 200)).unwrap();
        let direct = spec(42, 200).materialize().unwrap();
        assert_eq!(*via_cache, direct);
    }

    #[test]
    fn invalid_spec_surfaces_error_and_is_not_cached() {
        let cache = TraceCache::new();
        let mut bad = spec(1, 10);
        bad.workload.mem_cpu_correlation = 5.0;
        assert!(cache.get(&bad).is_err());
        // The slot exists but holds no trace; a valid retry would regenerate.
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn evict_releases_occupancy_and_regenerates_identically() {
        let cache = TraceCache::new();
        let s1 = spec(1, 100);
        let s2 = spec(2, 100);
        let first = cache.get(&s1).unwrap();
        let _second = cache.get(&s2).unwrap();
        assert_eq!(cache.resident(), 2);

        assert!(cache.evict(&s1), "resident trace reports eviction");
        assert_eq!(cache.resident(), 1);
        assert!(!cache.evict(&s1), "double eviction is a no-op");
        // Outstanding handles survive eviction.
        assert_eq!(first.len(), 100);

        // Re-requesting re-materializes byte-identically (a fresh miss).
        let again = cache.get(&s1).unwrap();
        assert!(!Arc::ptr_eq(&first, &again));
        assert_eq!(*first, *again);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn clear_empties_the_cache_but_keeps_counters() {
        let cache = TraceCache::new();
        let _ = cache.get(&spec(1, 50)).unwrap();
        let _ = cache.get(&spec(2, 50)).unwrap();
        assert_eq!(cache.resident(), 2);
        cache.clear();
        assert_eq!(cache.resident(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 2, "counters survive clear");
    }

    #[test]
    fn concurrent_gets_share_one_materialization() {
        let cache = Arc::new(TraceCache::new());
        let s = spec(9, 300);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let s = s.clone();
                    scope.spawn(move || cache.get(&s).unwrap().len())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 300);
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
