//! Parser for the real Google cluster-usage trace format (ClusterData 2011,
//! version 2 `task_events` tables).
//!
//! The synthetic generator is the default workload source in this
//! reproduction (the real month-long trace is ~40 GB and not redistributable
//! here), but users who have downloaded it can extract the same
//! `(arrival, duration, demand)` tuples the paper uses:
//! [`parse_task_events_with_stats`] reconstructs each task from its event
//! rows — SUBMIT gives the arrival and resource request, FINISH − SCHEDULE
//! gives the duration — and reports [`ParseStats`] provenance (how many
//! tasks were dropped at each filter and how many kept jobs had missing
//! demand columns defaulted). Jobs are filtered to the paper's duration
//! window of [1 minute, 2 hours] ([`PAPER_MIN_DURATION_S`],
//! [`PAPER_MAX_DURATION_S`]).
//!
//! This parser usually sits behind [`crate::source::RealTraceSource`] with
//! [`crate::source::TraceFormat::GoogleTaskEvents`], which is how the
//! experiment layer consumes it; the sibling
//! [`crate::alibaba`] module reads the Alibaba v2017 `batch_task` table
//! behind the same interface. Column layouts, counter semantics, and the
//! committed-fixture recipe are documented in `crates/trace/README.md`.
//!
//! `task_events` CSV columns (see the trace format document):
//! `0` timestamp (µs), `1` missing info, `2` job ID, `3` task index,
//! `4` machine ID, `5` event type, `6` user, `7` scheduling class,
//! `8` priority, `9` CPU request, `10` memory request, `11` disk request,
//! `12` different-machine constraint.

use hierdrl_sim::job::{Job, JobId};
use hierdrl_sim::resources::ResourceVec;
use hierdrl_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;

use crate::trace::Trace;

/// Event-type codes used by the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEventType {
    /// Task submitted (arrival).
    Submit,
    /// Task scheduled onto a machine.
    Schedule,
    /// Task finished normally.
    Finish,
    /// Any other event (evict, fail, kill, lost, update).
    Other(u8),
}

impl From<u8> for TaskEventType {
    fn from(code: u8) -> Self {
        match code {
            0 => TaskEventType::Submit,
            1 => TaskEventType::Schedule,
            4 => TaskEventType::Finish,
            other => TaskEventType::Other(other),
        }
    }
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task_events line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Duration filter matching the paper's extraction: [1 minute, 2 hours].
pub const PAPER_MIN_DURATION_S: f64 = 60.0;
/// Upper bound of the paper's duration filter.
pub const PAPER_MAX_DURATION_S: f64 = 7200.0;

/// What the parser did to the rows it read: how many tasks survived, how
/// many were dropped at each filter, and — crucially — how many kept jobs
/// had *missing* resource columns silently defaulted. Callers deciding
/// whether a trace file is usable should look at
/// [`ParseStats::demand_defaulted`] before trusting demand-sensitive
/// results: a file with no resource columns parses "successfully" into
/// uniform near-zero demands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ParseStats {
    /// Non-empty CSV rows consumed.
    pub rows: usize,
    /// Distinct `(job, task)` keys seen.
    pub tasks_seen: usize,
    /// Tasks dropped for an incomplete lifecycle (missing SUBMIT,
    /// SCHEDULE, or FINISH).
    pub incomplete_dropped: usize,
    /// Tasks dropped because FINISH was not after SCHEDULE.
    pub nonpositive_duration_dropped: usize,
    /// Tasks dropped by the duration window filter.
    pub duration_filtered: usize,
    /// Kept jobs whose SUBMIT row was missing at least one resource
    /// column, so that component was defaulted to the floor demand.
    pub demand_defaulted: usize,
    /// Jobs that made it into the returned trace.
    pub jobs_kept: usize,
}

#[derive(Debug, Default, Clone)]
struct TaskRecord {
    submit_us: Option<u64>,
    schedule_us: Option<u64>,
    finish_us: Option<u64>,
    cpu: Option<f64>,
    mem: Option<f64>,
    disk: Option<f64>,
}

fn parse_field_f64(s: &str) -> Option<f64> {
    if s.is_empty() {
        None
    } else {
        s.parse::<f64>().ok()
    }
}

/// Parses `task_events` CSV rows into a [`Trace`], reconstructing each
/// task's arrival (SUBMIT), duration (FINISH − SCHEDULE) and normalized
/// resource request, and keeping only tasks whose duration falls within
/// `[min_duration_s, max_duration_s]`.
///
/// Malformed rows produce an error rather than being skipped silently;
/// rows that parse but carry incomplete *data* (missing lifecycle events,
/// missing resource columns) are counted in the returned [`ParseStats`]
/// rather than vanishing — a SUBMIT row without resource columns defaults
/// those components to the floor demand, which is only acceptable if the
/// caller knows how often it happened.
///
/// # Errors
///
/// Returns [`ParseError`] for rows with too few columns or unparsable
/// numeric fields.
pub fn parse_task_events_with_stats<R: BufRead>(
    reader: R,
    min_duration_s: f64,
    max_duration_s: f64,
) -> Result<(Trace, ParseStats), ParseError> {
    // Keyed by `(job_id, task_index)` in a BTreeMap so the emission loop
    // below walks tasks in key order. The final sort is by arrival only, and
    // `sort_by_key` is stable — with a hash map, equal-arrival tasks would
    // keep whatever order the per-process RandomState produced, making job
    // numbering (and thus every downstream report) nondeterministic.
    let mut tasks: BTreeMap<(u64, u64), TaskRecord> = BTreeMap::new();
    let mut stats = ParseStats::default();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseError {
            line: line_no,
            reason: format!("io error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        stats.rows += 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 6 {
            return Err(ParseError {
                line: line_no,
                reason: format!("expected >= 6 columns, got {}", fields.len()),
            });
        }
        let ts: u64 = fields[0].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("bad timestamp {:?}", fields[0]),
        })?;
        let job_id: u64 = fields[2].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("bad job id {:?}", fields[2]),
        })?;
        let task_index: u64 = fields[3].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("bad task index {:?}", fields[3]),
        })?;
        let event_code: u8 = fields[5].parse().map_err(|_| ParseError {
            line: line_no,
            reason: format!("bad event type {:?}", fields[5]),
        })?;

        let record = tasks.entry((job_id, task_index)).or_default();
        match TaskEventType::from(event_code) {
            TaskEventType::Submit => {
                record.submit_us.get_or_insert(ts);
                record.cpu = fields
                    .get(9)
                    .and_then(|s| parse_field_f64(s))
                    .or(record.cpu);
                record.mem = fields
                    .get(10)
                    .and_then(|s| parse_field_f64(s))
                    .or(record.mem);
                record.disk = fields
                    .get(11)
                    .and_then(|s| parse_field_f64(s))
                    .or(record.disk);
            }
            TaskEventType::Schedule => {
                record.schedule_us.get_or_insert(ts);
            }
            TaskEventType::Finish => {
                record.finish_us = Some(ts);
            }
            TaskEventType::Other(_) => {}
        }
    }

    stats.tasks_seen = tasks.len();
    let mut jobs: Vec<Job> = Vec::new();
    for record in tasks.values() {
        let (Some(submit), Some(schedule), Some(finish)) =
            (record.submit_us, record.schedule_us, record.finish_us)
        else {
            stats.incomplete_dropped += 1;
            continue; // incomplete lifecycle: not a usable job
        };
        if finish <= schedule {
            stats.nonpositive_duration_dropped += 1;
            continue;
        }
        let duration_s = (finish - schedule) as f64 / 1e6;
        if !(min_duration_s..=max_duration_s).contains(&duration_s) {
            stats.duration_filtered += 1;
            continue;
        }
        if record.cpu.is_none() || record.mem.is_none() || record.disk.is_none() {
            stats.demand_defaulted += 1;
        }
        let clamp = |v: Option<f64>| v.unwrap_or(0.0).clamp(0.0, 1.0).max(1e-4);
        let demand =
            ResourceVec::cpu_mem_disk(clamp(record.cpu), clamp(record.mem), clamp(record.disk));
        let arrival_s = submit as f64 / 1e6;
        jobs.push(Job::new(
            JobId(0), // re-numbered after sorting
            SimTime::from_secs(arrival_s),
            duration_s,
            demand,
        ));
    }
    stats.jobs_kept = jobs.len();

    jobs.sort_by_key(|a| a.arrival);
    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(i, j)| Job::new(JobId(i as u64), j.arrival, j.duration, j.demand))
        .collect();
    Ok((Trace::new(jobs).expect("sorted, validated jobs"), stats))
}

/// [`parse_task_events_with_stats`] without the bookkeeping — kept for
/// callers that only need the trace.
///
/// # Errors
///
/// See [`parse_task_events_with_stats`].
pub fn parse_task_events<R: BufRead>(
    reader: R,
    min_duration_s: f64,
    max_duration_s: f64,
) -> Result<Trace, ParseError> {
    parse_task_events_with_stats(reader, min_duration_s, max_duration_s).map(|(trace, _)| trace)
}

/// Parses with the paper's duration filter of [1 minute, 2 hours].
///
/// # Errors
///
/// See [`parse_task_events`].
pub fn parse_task_events_paper<R: BufRead>(reader: R) -> Result<Trace, ParseError> {
    parse_task_events(reader, PAPER_MIN_DURATION_S, PAPER_MAX_DURATION_S)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Builds a task_events row.
    fn row(ts_us: u64, job: u64, task: u64, event: u8, cpu: &str, mem: &str, disk: &str) -> String {
        format!("{ts_us},,{job},{task},42,{event},user,2,5,{cpu},{mem},{disk},0")
    }

    #[test]
    fn parses_complete_task_lifecycle() {
        let csv = [
            row(1_000_000, 10, 0, 0, "0.25", "0.125", "0.01"), // submit at 1 s
            row(2_000_000, 10, 0, 1, "", "", ""),              // schedule at 2 s
            row(302_000_000, 10, 0, 4, "", "", ""),            // finish at 302 s
        ]
        .join("\n");
        let trace = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.len(), 1);
        let j = &trace.jobs()[0];
        assert_eq!(j.arrival, SimTime::from_secs(1.0));
        assert!((j.duration - 300.0).abs() < 1e-9);
        assert!((j.demand.get(0) - 0.25).abs() < 1e-9);
        assert!((j.demand.get(1) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn filters_durations_outside_paper_window() {
        let csv = [
            // 30 s task: too short.
            row(0, 1, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 1, 0, 1, "", "", ""),
            row(31_000_000, 1, 0, 4, "", "", ""),
            // 3 h task: too long.
            row(0, 2, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 2, 0, 1, "", "", ""),
            row(10_801_000_000, 2, 0, 4, "", "", ""),
            // 10 min task: kept.
            row(0, 3, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 3, 0, 1, "", "", ""),
            row(601_000_000, 3, 0, 4, "", "", ""),
        ]
        .join("\n");
        let trace = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.len(), 1);
        assert!((trace.jobs()[0].duration - 600.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_lifecycles_are_dropped() {
        let csv = [
            row(0, 1, 0, 0, "0.1", "0.1", "0.1"), // submit only
            row(0, 2, 0, 1, "", "", ""),          // schedule only
        ]
        .join("\n");
        let trace = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn jobs_are_sorted_and_renumbered() {
        let csv = [
            // Later job submitted first in the file.
            row(50_000_000, 7, 0, 0, "0.2", "0.2", "0.2"),
            row(51_000_000, 7, 0, 1, "", "", ""),
            row(200_000_000, 7, 0, 4, "", "", ""),
            row(1_000_000, 8, 0, 0, "0.3", "0.3", "0.3"),
            row(2_000_000, 8, 0, 1, "", "", ""),
            row(150_000_000, 8, 0, 4, "", "", ""),
        ]
        .join("\n");
        let trace = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.jobs()[0].id, JobId(0));
        assert!(trace.jobs()[0].arrival < trace.jobs()[1].arrival);
        assert!((trace.jobs()[0].demand.get(0) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn malformed_rows_error_with_line_number() {
        let csv = "not,enough";
        let err = parse_task_events_paper(Cursor::new(csv)).unwrap_err();
        assert_eq!(err.line, 1);

        let csv = "abc,,1,0,42,0,u,2,5,0.1,0.1,0.1,0";
        let err = parse_task_events_paper(Cursor::new(csv)).unwrap_err();
        assert!(err.reason.contains("bad timestamp"));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let csv = format!(
            "\n{}\n\n{}\n{}\n",
            row(0, 1, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 1, 0, 1, "", "", ""),
            row(301_000_000, 1, 0, 4, "", "", "")
        );
        let trace = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn missing_resource_columns_are_counted_not_silently_defaulted() {
        // Task 1: SUBMIT row truncated before the resource columns (only 6
        // fields) — every component missing. Task 2: empty CPU field on a
        // full-width row. Task 3: all columns present.
        let csv = [
            "0,,1,0,42,0".to_string(), // submit, no resource columns at all
            row(1_000_000, 1, 0, 1, "", "", ""),
            row(301_000_000, 1, 0, 4, "", "", ""),
            row(0, 2, 0, 0, "", "0.2", "0.2"), // cpu column empty
            row(1_000_000, 2, 0, 1, "", "", ""),
            row(301_000_000, 2, 0, 4, "", "", ""),
            row(0, 3, 0, 0, "0.3", "0.3", "0.3"),
            row(1_000_000, 3, 0, 1, "", "", ""),
            row(301_000_000, 3, 0, 4, "", "", ""),
        ]
        .join("\n");
        let (trace, stats) = parse_task_events_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(stats.jobs_kept, 3);
        assert_eq!(stats.tasks_seen, 3);
        assert_eq!(stats.rows, 9);
        assert_eq!(
            stats.demand_defaulted, 2,
            "both the truncated row and the empty-CPU row must be counted"
        );
        // Defaulted components sit at the floor demand.
        let all_missing = trace
            .jobs()
            .iter()
            .find(|j| j.demand.get(1) < 1e-3)
            .unwrap();
        assert!((all_missing.demand.get(0) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn drop_reasons_are_counted() {
        let csv = [
            // Incomplete lifecycle (submit only).
            row(0, 1, 0, 0, "0.1", "0.1", "0.1"),
            // Finish before schedule.
            row(0, 2, 0, 0, "0.1", "0.1", "0.1"),
            row(5_000_000, 2, 0, 1, "", "", ""),
            row(4_000_000, 2, 0, 4, "", "", ""),
            // Too short for the paper window.
            row(0, 3, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 3, 0, 1, "", "", ""),
            row(31_000_000, 3, 0, 4, "", "", ""),
            // Kept.
            row(0, 4, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 4, 0, 1, "", "", ""),
            row(301_000_000, 4, 0, 4, "", "", ""),
        ]
        .join("\n");
        let (trace, stats) = parse_task_events_with_stats(
            Cursor::new(csv),
            PAPER_MIN_DURATION_S,
            PAPER_MAX_DURATION_S,
        )
        .unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(stats.tasks_seen, 4);
        assert_eq!(stats.incomplete_dropped, 1);
        assert_eq!(stats.nonpositive_duration_dropped, 1);
        assert_eq!(stats.duration_filtered, 1);
        assert_eq!(stats.demand_defaulted, 0);
        assert_eq!(stats.jobs_kept, 1);
    }

    #[test]
    fn equal_arrival_jobs_order_deterministically() {
        // Many tasks submitted at the same microsecond: the arrival sort
        // cannot distinguish them, so their relative order (and therefore
        // their assigned JobIds and demands-by-position) must come from the
        // ordered (job, task) map walk, not from hash iteration order.
        let mut rows = Vec::new();
        for job in (1..=16u64).rev() {
            rows.push(row(0, job, 0, 0, &format!("0.{job:02}"), "0.1", "0.1"));
            rows.push(row(1_000_000, job, 0, 1, "", "", ""));
            rows.push(row(301_000_000, job, 0, 4, "", "", ""));
        }
        let csv = rows.join("\n");
        let trace = parse_task_events_paper(Cursor::new(csv.clone())).unwrap();
        assert_eq!(trace.len(), 16);
        for (i, j) in trace.jobs().iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
            // Job `i + 1` (lowest key first) lands at position `i`.
            let expected_cpu = f64::from(i as u32 + 1) / 100.0;
            assert!(
                (j.demand.get(0) - expected_cpu).abs() < 1e-9,
                "position {i} got cpu {}, want {expected_cpu}",
                j.demand.get(0)
            );
        }
        // And a reparse of the same bytes is identical, job for job.
        let again = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.jobs(), again.jobs());
    }

    #[test]
    fn multiple_tasks_of_same_job_are_distinct() {
        let csv = [
            row(0, 1, 0, 0, "0.1", "0.1", "0.1"),
            row(1_000_000, 1, 0, 1, "", "", ""),
            row(301_000_000, 1, 0, 4, "", "", ""),
            row(0, 1, 1, 0, "0.2", "0.2", "0.2"),
            row(1_000_000, 1, 1, 1, "", "", ""),
            row(601_000_000, 1, 1, 4, "", "", ""),
        ]
        .join("\n");
        let trace = parse_task_events_paper(Cursor::new(csv)).unwrap();
        assert_eq!(trace.len(), 2);
    }
}
