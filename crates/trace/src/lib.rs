//! # hierdrl-trace
//!
//! Workload substrate for the hierarchical DRL framework: synthetic
//! Google-cluster-style trace generation, trace statistics/slicing, parsers
//! for two real cluster-trace formats, and a common [`source::TraceSource`]
//! interface over all of them.
//!
//! The paper evaluates on the May-2011 Google cluster-usage traces, split
//! into ~week-long segments of ~100,000 jobs for a 30–40 machine cluster,
//! with job durations clipped to [1 minute, 2 hours]. Since the real trace
//! is not redistributable, [`generator::WorkloadConfig::google_like`]
//! produces synthetic traces with the same marginals (arrival rate, duration
//! law, demand law) and realistic non-stationarity (diurnal + weekend
//! cycles) — and stays the default workload source. Users who have real
//! trace files feed them in through [`source::RealTraceSource`]:
//! [`google::parse_task_events_with_stats`] reads the Google ClusterData
//! `task_events` tables and [`alibaba::parse_batch_tasks_with_stats`] reads
//! the Alibaba cluster-trace-v2017 `batch_task` table, both reporting
//! [`google::ParseStats`] provenance so consumers can gate on data quality.
//!
//! # Examples
//!
//! Synthetic generation:
//!
//! ```
//! use hierdrl_trace::prelude::*;
//!
//! // One day of a ~95k-jobs/week workload.
//! let config = WorkloadConfig::google_like(42, 95_000.0);
//! let trace = TraceGenerator::new(config)?.generate(86_400.0);
//! let stats = trace.stats().unwrap();
//! assert!(stats.count > 10_000);
//! assert!(stats.mean_duration_s >= 60.0 && stats.mean_duration_s <= 7200.0);
//! # Ok::<(), String>(())
//! ```
//!
//! Any source — synthetic recipe or real trace file — behind the common
//! interface, with load/stream equivalence:
//!
//! ```
//! use hierdrl_trace::prelude::*;
//!
//! let sources: Vec<Box<dyn TraceSource>> = vec![
//!     Box::new(SyntheticSource::new(TraceSpec::new(
//!         WorkloadConfig::google_like(42, 60_000.0),
//!         500,
//!     ))),
//!     Box::new(RealTraceSource::from_csv(
//!         "0,300,1,1,1,Terminated,50,0.25",
//!         TraceFormat::AlibabaBatchTask,
//!     )),
//! ];
//! for source in &sources {
//!     let (trace, stats) = source.load()?;
//!     assert_eq!(stats.jobs_kept, trace.len());
//!     let streamed: Vec<_> = source.stream()?.collect();
//!     assert_eq!(trace.jobs(), streamed.as_slice());
//! }
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alibaba;
pub mod distributions;
pub mod drift;
pub mod generator;
pub mod google;
pub mod materialize;
pub mod pattern;
pub mod source;
pub mod stats;
pub mod stream;
pub mod trace;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::alibaba::{
        parse_batch_tasks, parse_batch_tasks_paper, parse_batch_tasks_with_stats,
    };
    pub use crate::distributions::Dist;
    pub use crate::drift::{mix_seed, SegmentShift, SegmentedTraceSpec};
    pub use crate::generator::{TraceGenerator, WorkloadConfig};
    pub use crate::google::{
        parse_task_events, parse_task_events_paper, parse_task_events_with_stats, ParseError,
        ParseStats,
    };
    pub use crate::materialize::{TraceCache, TraceSpec};
    pub use crate::pattern::{ArrivalPattern, SECS_PER_DAY, SECS_PER_WEEK};
    pub use crate::source::{
        with_synthetic_demands, RealTraceSource, SyntheticSource, TraceFormat, TraceSource,
    };
    pub use crate::stats::{Histogram, WorkloadProfile};
    pub use crate::stream::{GeneratorStream, JobStream, TraceStream};
    pub use crate::trace::{Trace, TraceError, TraceStats};
}
