//! # hierdrl-trace
//!
//! Workload substrate for the hierarchical DRL framework: synthetic
//! Google-cluster-style trace generation, trace statistics/slicing, and a
//! parser for the real Google ClusterData-2011 `task_events` format.
//!
//! The paper evaluates on the May-2011 Google cluster-usage traces, split
//! into ~week-long segments of ~100,000 jobs for a 30–40 machine cluster,
//! with job durations clipped to [1 minute, 2 hours]. Since the real trace
//! is not redistributable, [`generator::WorkloadConfig::google_like`]
//! produces synthetic traces with the same marginals (arrival rate, duration
//! law, demand law) and realistic non-stationarity (diurnal + weekend
//! cycles); [`google::parse_task_events`] ingests the real thing for users
//! who have it.
//!
//! # Examples
//!
//! ```
//! use hierdrl_trace::prelude::*;
//!
//! // One day of a ~95k-jobs/week workload.
//! let config = WorkloadConfig::google_like(42, 95_000.0);
//! let trace = TraceGenerator::new(config)?.generate(86_400.0);
//! let stats = trace.stats().unwrap();
//! assert!(stats.count > 10_000);
//! assert!(stats.mean_duration_s >= 60.0 && stats.mean_duration_s <= 7200.0);
//! # Ok::<(), String>(())
//! ```

pub mod distributions;
pub mod drift;
pub mod generator;
pub mod google;
pub mod materialize;
pub mod pattern;
pub mod stats;
pub mod stream;
pub mod trace;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::distributions::Dist;
    pub use crate::drift::{mix_seed, SegmentShift, SegmentedTraceSpec};
    pub use crate::generator::{TraceGenerator, WorkloadConfig};
    pub use crate::google::{
        parse_task_events, parse_task_events_paper, parse_task_events_with_stats, ParseError,
        ParseStats,
    };
    pub use crate::materialize::{TraceCache, TraceSpec};
    pub use crate::pattern::{ArrivalPattern, SECS_PER_DAY, SECS_PER_WEEK};
    pub use crate::stats::{Histogram, WorkloadProfile};
    pub use crate::stream::{GeneratorStream, JobStream, TraceStream};
    pub use crate::trace::{Trace, TraceError, TraceStats};
}
