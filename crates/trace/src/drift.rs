//! Concept-drift workload segmentation: piecewise [`WorkloadConfig`]s.
//!
//! Real cloud workloads drift — arrival rates step when a tenant launches,
//! ramp with organic growth, and change *shape* when usage patterns move
//! across time zones. The paper trains its agents online precisely so they
//! track such non-stationarity; this module gives the experiment layer the
//! workload side of that story: an ordered list of trace segments, each a
//! full [`WorkloadConfig`] derived from a shared base by a
//! [`SegmentShift`], with per-segment seeds derived through the same
//! SplitMix64 scheme the suite layer uses everywhere else.
//!
//! Each segment materializes as its own re-based trace (arrivals start at
//! zero), mirroring how the paper splits the month-long Google trace into
//! week-scale segments. Segment boundaries are exactly where learners are
//! carried across runs — see `hierdrl_core::runner::SegmentedExperiment`.

use crate::generator::WorkloadConfig;
use crate::materialize::{TraceCache, TraceSpec};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// SplitMix64 finalizer: decorrelates derived seeds so that per-segment
/// (and, in the suite layer, per-cell and per-shard) seed streams are
/// independent — perturbing one stream's inputs never perturbs another's.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How one segment's workload departs from the base configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SegmentShift {
    /// Same distribution as the base (a fresh seed is still derived, so
    /// stationary segments carry fresh data from the same law).
    Stationary,
    /// Arrival rate scaled by this factor (rate step/ramp drifts).
    RateScale(f64),
    /// The arrival pattern's *shape* replaced (a regime change: different
    /// peak hour, diurnal swing, and weekend behaviour at the same mean
    /// volume).
    Pattern {
        /// Diurnal amplitude in `[0, 1)`.
        diurnal_amplitude: f64,
        /// Hour of day (0–24) at which arrivals peak.
        peak_hour: f64,
        /// Weekend rate multiplier.
        weekend_factor: f64,
    },
    /// Task batching changed to this mean batch size at the *same* mean
    /// task rate (a burstiness change: fewer, larger submissions).
    BatchMean(f64),
}

impl SegmentShift {
    /// The base config transformed by this shift. The seed is untouched —
    /// [`SegmentedTraceSpec::from_shifts`] derives it per segment.
    pub fn apply(&self, base: &WorkloadConfig) -> WorkloadConfig {
        let mut config = base.clone();
        match *self {
            SegmentShift::Stationary => {}
            SegmentShift::RateScale(factor) => {
                config.arrivals.base_rate *= factor;
            }
            SegmentShift::Pattern {
                diurnal_amplitude,
                peak_hour,
                weekend_factor,
            } => {
                // Hold the weekly task volume constant across the shape
                // change: the diurnal cosine is mean-zero, so only the
                // weekend factor moves the mean rate.
                let old_mean = config.arrivals.mean_rate_factor();
                config.arrivals.diurnal_amplitude = diurnal_amplitude;
                config.arrivals.peak_hour = peak_hour;
                config.arrivals.weekend_factor = weekend_factor;
                config.arrivals.base_rate *= old_mean / config.arrivals.mean_rate_factor();
            }
            SegmentShift::BatchMean(mean) => {
                // Tasks-per-second stays fixed: submissions thin out as
                // batches grow.
                config.arrivals.base_rate *= config.batch_mean / mean;
                config.batch_mean = mean;
            }
        }
        config
    }

    /// Short label used in per-segment report rows.
    pub fn label(&self) -> String {
        match *self {
            SegmentShift::Stationary => "stationary".into(),
            SegmentShift::RateScale(f) => format!("rate-x{f}"),
            SegmentShift::Pattern {
                diurnal_amplitude,
                peak_hour,
                weekend_factor,
            } => {
                format!("pattern(amp={diurnal_amplitude},peak={peak_hour}h,wknd={weekend_factor})")
            }
            SegmentShift::BatchMean(m) => format!("batch-mean-{m}"),
        }
    }

    /// Validates the shift's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SegmentShift::Stationary => Ok(()),
            SegmentShift::RateScale(f) => {
                if f.is_finite() && f > 0.0 {
                    Ok(())
                } else {
                    Err(format!("rate factor must be positive, got {f}"))
                }
            }
            // Pattern fields are fully checked by ArrivalPattern::validate
            // once applied; check the one field that could silently divide
            // by zero here.
            SegmentShift::Pattern { weekend_factor, .. } => {
                if weekend_factor.is_finite() && weekend_factor > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "weekend_factor must be positive, got {weekend_factor}"
                    ))
                }
            }
            SegmentShift::BatchMean(m) => {
                if m.is_finite() && m >= 1.0 {
                    Ok(())
                } else {
                    Err(format!("batch mean must be >= 1, got {m}"))
                }
            }
        }
    }
}

/// An ordered list of fully-determined trace segments — the workload side
/// of a concept-drift sweep. Two equal specs always materialize
/// byte-identical segment lists, and each segment's spec depends only on
/// the base config, *its own* shift, and its own derived seed — so
/// perturbing one segment never perturbs another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedTraceSpec {
    /// Per-segment trace recipes, in drift order.
    pub segments: Vec<TraceSpec>,
}

impl SegmentedTraceSpec {
    /// Builds the per-segment specs: segment `i` runs `shifts[i]` applied
    /// to `base` under seed `mix_seed(seed, i)`, and `total_jobs` splits
    /// as evenly as possible across segments (earlier segments take the
    /// remainder), so a drifting cell evaluates the same job count as its
    /// stationary counterpart.
    ///
    /// # Panics
    ///
    /// Panics if `shifts` is empty or any shift is invalid.
    pub fn from_shifts(
        base: &WorkloadConfig,
        shifts: &[SegmentShift],
        total_jobs: usize,
        seed: u64,
    ) -> Self {
        assert!(!shifts.is_empty(), "need at least one segment");
        let k = shifts.len();
        let segments = shifts
            .iter()
            .enumerate()
            .map(|(i, shift)| {
                shift
                    .validate()
                    .unwrap_or_else(|e| panic!("segment {i}: {e}"));
                let mut config = shift.apply(base);
                config.seed = mix_seed(seed, i as u64);
                TraceSpec::new(config, total_jobs / k + usize::from(i < total_jobs % k))
            })
            .collect();
        Self { segments }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the spec has no segments (never true for
    /// [`SegmentedTraceSpec::from_shifts`] output).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Materializes every segment through `cache`, in order.
    ///
    /// # Errors
    ///
    /// Returns the first segment's materialization error.
    pub fn materialize(&self, cache: &TraceCache) -> Result<Vec<Arc<Trace>>, String> {
        self.segments.iter().map(|spec| cache.get(spec)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadConfig {
        WorkloadConfig::google_like(7, 50_000.0)
    }

    #[test]
    fn jobs_split_evenly_with_remainder_up_front() {
        let shifts = vec![SegmentShift::Stationary; 3];
        let spec = SegmentedTraceSpec::from_shifts(&base(), &shifts, 1001, 42);
        let counts: Vec<usize> = spec.segments.iter().map(|s| s.jobs).collect();
        assert_eq!(counts, vec![334, 334, 333]);
        assert_eq!(counts.iter().sum::<usize>(), 1001);
    }

    #[test]
    fn segment_seeds_are_pairwise_distinct_and_derived() {
        let shifts = vec![SegmentShift::Stationary; 4];
        let spec = SegmentedTraceSpec::from_shifts(&base(), &shifts, 400, 42);
        let mut seeds: Vec<u64> = spec.segments.iter().map(|s| s.workload.seed).collect();
        assert_eq!(seeds[0], mix_seed(42, 0));
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "segment seeds must not collide");
    }

    #[test]
    fn rate_scale_moves_the_base_rate_only() {
        let shifted = SegmentShift::RateScale(2.0).apply(&base());
        assert!((shifted.arrivals.base_rate - 2.0 * base().arrivals.base_rate).abs() < 1e-12);
        assert_eq!(shifted.duration, base().duration);
    }

    #[test]
    fn pattern_shift_preserves_mean_volume() {
        let shifted = SegmentShift::Pattern {
            diurnal_amplitude: 0.8,
            peak_hour: 3.0,
            weekend_factor: 1.25,
        }
        .apply(&base());
        assert!(
            (shifted.arrivals.mean_rate() - base().arrivals.mean_rate()).abs() < 1e-12,
            "regime change must hold the mean task rate"
        );
        assert_eq!(shifted.arrivals.peak_hour, 3.0);
    }

    #[test]
    fn batch_mean_shift_preserves_task_rate() {
        let b = base();
        let shifted = SegmentShift::BatchMean(8.0).apply(&b);
        assert_eq!(shifted.batch_mean, 8.0);
        let tasks_before = b.arrivals.base_rate * b.batch_mean;
        let tasks_after = shifted.arrivals.base_rate * shifted.batch_mean;
        assert!((tasks_before - tasks_after).abs() < 1e-12);
    }

    #[test]
    fn materializes_valid_segments_through_the_cache() {
        let shifts = [SegmentShift::Stationary, SegmentShift::RateScale(2.0)];
        let spec = SegmentedTraceSpec::from_shifts(&base(), &shifts, 200, 9);
        let cache = TraceCache::new();
        let traces = spec.materialize(&cache).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].len() + traces[1].len(), 200);
        // Stationary and rate-shifted segments draw from different seeds
        // and laws: the traces must differ.
        assert_ne!(traces[0].jobs(), traces[1].jobs());
        // The 2x segment should arrive roughly twice as fast.
        let (a, b) = (traces[0].stats().unwrap(), traces[1].stats().unwrap());
        assert!(
            b.arrival_rate > a.arrival_rate * 1.4,
            "rate step must show in realized arrival rates ({} vs {})",
            a.arrival_rate,
            b.arrival_rate
        );
    }

    #[test]
    #[should_panic(expected = "rate factor must be positive")]
    fn invalid_shift_rejected() {
        let _ = SegmentedTraceSpec::from_shifts(&base(), &[SegmentShift::RateScale(0.0)], 100, 1);
    }
}
